#!/usr/bin/env python3
"""Scenario: a production distribution the training set under-covers (ITD).

This mirrors the paper's motivating situation for *insufficient training
data*: some classes are badly under-represented at training time, the model
looks fine on its own training set, but production inputs from those classes
are misclassified.  The script shows how DeepMorph attributes the faulty
cases to ITD, and how the diagnosis changes once the developer fixes the
training set.

    python examples/diagnose_insufficient_data.py
"""


from repro import DeepMorph, find_faulty_cases
from repro.api import LocalDiagnoser
from repro.data import SyntheticMNIST, class_counts
from repro.defects import InsufficientTrainingData
from repro.models import LeNet
from repro.optim import Adam
from repro.training import Trainer, evaluate


def train_and_diagnose(train_data, production_data, tag: str):
    """Train a fresh LeNet on ``train_data`` and diagnose its production errors."""
    model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=7)
    Trainer(model, Adam(model.parameters(), lr=0.01), rng=2).fit(
        train_data, epochs=14, batch_size=32
    )
    _, accuracy = evaluate(model, production_data)
    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production_data)

    print(f"[{tag}] production accuracy {accuracy:.3f}, faulty cases {len(faulty_labels)}")
    if len(faulty_labels) == 0:
        print(f"[{tag}] nothing to diagnose")
        return None

    morph = DeepMorph(rng=3)
    morph.fit(model, train_data)
    diagnoser = LocalDiagnoser(morph, name="lenet")
    report = diagnoser.diagnose_arrays(faulty_inputs, faulty_labels)
    print(f"[{tag}] {report.format_row()}  ->  dominant: {report.dominant_defect.upper()}")
    return report


def main() -> None:
    generator = SyntheticMNIST()
    full_train, production = generator.splits(n_train_per_class=80, n_test_per_class=40, rng=0)

    # The defective training set: three classes keep only 8 % of their data.
    injector = InsufficientTrainingData(affected_classes=[1, 4, 7], keep_fraction=0.08)
    starved_train, injection = injector.apply(full_train, rng=1)

    print(f"injected defect : {injection.description}")
    print(f"per-class training counts after injection: {class_counts(starved_train).tolist()}")
    print()

    report = train_and_diagnose(starved_train, production, tag="starved training set")

    if report is not None and report.dominant_defect == "itd":
        print("\nDeepMorph attributes the bad performance to insufficient training data.")
        print("Following that advice, the developer collects the missing data and retrains:")
        print()
        train_and_diagnose(full_train, production, tag="repaired training set")


if __name__ == "__main__":
    main()
