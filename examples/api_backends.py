#!/usr/bin/env python3
"""One pipeline, three interchangeable backends (the repro.api tour).

Fits a small DeepMorph artifact, registers it, and then diagnoses the same
production batch through all three ``Diagnoser`` backends:

* ``LocalDiagnoser``   — embedded, no serving machinery;
* ``ServiceDiagnoser`` — in-process batched/cached service;
* ``RemoteDiagnoser``  — HTTP client against an asyncio gateway.

The three reports are bitwise-identical, which is the point: code written
against the API moves from a notebook to a service to a fleet without its
numbers changing.  The remote backend is then repeated over the binary wire
codec (``DiagnoserConfig(wire_codec="binary")``) — same report again, raw
array bytes instead of JSON text on the wire, and a response-cache hit
shared with the JSON client.  The script ends with the streaming
``diagnose_iter``, which bounds memory on production sets too large to hold.

    python examples/api_backends.py
"""

import tempfile

from repro import DeepMorph
from repro.api import DiagnoserConfig, LocalDiagnoser, RemoteDiagnoser, ServiceDiagnoser
from repro.data import SyntheticMNIST
from repro.defects import UnreliableTrainingData
from repro.models import LeNet
from repro.optim import Adam
from repro.serve import ArtifactRegistry, DiagnosisGateway, ReplicaPool
from repro.training import Trainer


def main() -> None:
    # ---------------------------------------------------------------- artifact
    generator = SyntheticMNIST()
    train_data, production = generator.splits(n_train_per_class=60, n_test_per_class=30, rng=0)
    injector = UnreliableTrainingData(source_class=3, target_class=5, fraction=0.45)
    corrupted, injection = injector.apply(train_data, rng=1)
    print(f"injected defect : {injection.description}")

    model = LeNet(input_shape=generator.input_shape, num_classes=10, rng=7)
    Trainer(model, Adam(model.parameters(), lr=0.01), rng=2).fit(
        corrupted, epochs=12, batch_size=32
    )
    morph = DeepMorph(rng=3).fit(model, corrupted)

    inputs, labels = production.arrays()
    config = DiagnoserConfig(batch_wait_seconds=0.001, num_workers=1)

    with tempfile.TemporaryDirectory() as root:
        registry = ArtifactRegistry(root)
        registry.register("demo", morph)

        # ------------------------------------------------------------ backends
        local = LocalDiagnoser.from_registry(registry, "demo", config=config)
        reports = {"local": local.diagnose_arrays(inputs, labels)}

        with ServiceDiagnoser.from_registry(registry, config=config) as service:
            reports["service"] = service.diagnose_arrays(inputs, labels, model="demo")

        pool = ReplicaPool.from_registry(registry, num_replicas=2, **config.service_kwargs())
        gateway = DiagnosisGateway(pool, port=0).start()
        try:
            with RemoteDiagnoser(gateway.url, config=config, default_model="demo") as remote:
                reports["remote"] = remote.diagnose_arrays(inputs.tolist(), labels.tolist())
                print(f"remote cache    : {reports['remote'].cache_state}")

            # Binary wire codec: same request, same report, but the arrays
            # cross the wire as raw bytes instead of JSON text — the fast
            # choice for clients that already hold numpy batches.  The server
            # needs no flag: codecs are negotiated per request, and both
            # codecs share one response-cache entry, so this request hits the
            # entry the JSON client just warmed.
            binary_config = config.with_overrides(wire_codec="binary")
            with RemoteDiagnoser(gateway.url, config=binary_config, default_model="demo") as remote:
                reports["binary"] = remote.diagnose_arrays(inputs, labels)
                print(f"binary cache    : {reports['binary'].cache_state} "
                      f"(shared with the JSON client's entry)")
        finally:
            gateway.shutdown()
            pool.close()

        for backend, report in reports.items():
            print(f"[{backend:7s}] {report.format_row()}  "
                  f"->  dominant: {report.dominant_defect.upper()}")
        documents = [report.to_dict() for report in reports.values()]
        identical = all(document == documents[0] for document in documents)
        print(f"bitwise-identical across backends and codecs: {identical}")

        # ----------------------------------------------------------- streaming
        print("\nstreaming diagnose_iter (batches of 64 production cases):")
        for i, report in enumerate(local.diagnose_iter(production, batch_size=64)):
            print(f"  batch {i}: {report.num_cases:3d} faulty -> {report.format_row()}")


if __name__ == "__main__":
    main()
