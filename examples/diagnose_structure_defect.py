#!/usr/bin/env python3
"""Scenario: an architecture too weak for the task (SD).

The paper's third defect type is the *structure defect*: the network design
itself cannot extract the features the task needs (here, convolution stages
were removed and the surviving layers narrowed).  The script diagnoses a
degraded ResNet on the synthetic CIFAR stand-in, shows the layer-wise probe
accuracy profile that betrays the weak features, and then compares against
the intact architecture.

    python examples/diagnose_structure_defect.py
"""


from repro import DeepMorph, find_faulty_cases
from repro.api import LocalDiagnoser
from repro.data import SyntheticCIFAR
from repro.defects import StructureDefect
from repro.models import ResNet
from repro.optim import Adam
from repro.training import Trainer, evaluate


def diagnose(model, train_data, production_data, tag: str):
    """Train ``model`` and run the DeepMorph diagnosis on its production errors."""
    Trainer(model, Adam(model.parameters(), lr=0.01), rng=2).fit(
        train_data, epochs=12, batch_size=32
    )
    _, accuracy = evaluate(model, production_data)
    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production_data)
    print(f"[{tag}] production accuracy {accuracy:.3f}, faulty cases {len(faulty_labels)}")
    if len(faulty_labels) == 0:
        return

    morph = DeepMorph(rng=3)
    morph.fit(model, train_data)
    diagnoser = LocalDiagnoser(morph, name="resnet")
    report = diagnoser.diagnose_arrays(faulty_inputs, faulty_labels)
    print(f"[{tag}] {report.format_row()}  ->  dominant: {report.dominant_defect.upper()}")
    print(f"[{tag}] layer-wise probe validation accuracy:")
    for layer, acc in morph.instrumented.probe_validation_accuracies().items():
        print(f"    {layer:14s} {acc:.3f}")
    print()


def main() -> None:
    generator = SyntheticCIFAR()
    train_data, production = generator.splits(n_train_per_class=60, n_test_per_class=30, rng=0)

    healthy = ResNet(input_shape=generator.input_shape, num_classes=10,
                     base_channels=12, block_counts=(2, 2, 2), rng=7)

    injector = StructureDefect(keep_fraction=0.3, narrow_factor=0.4)
    degraded, injection = injector.apply(healthy, rng=7)
    print(f"injected defect : {injection.description}")
    print("removed units   :")
    for item in injection.removed_units:
        print(f"  - {item}")
    print()

    diagnose(degraded, train_data, production, tag="degraded architecture")
    diagnose(
        ResNet(input_shape=generator.input_shape, num_classes=10,
               base_channels=12, block_counts=(2, 2, 2), rng=7),
        train_data, production, tag="intact architecture",
    )


if __name__ == "__main__":
    main()
