#!/usr/bin/env python3
"""Quickstart: the full DeepMorph pipeline in one script (paper Figure 1).

The scenario: a LeNet classifier is trained on a dataset whose labels are
partly wrong (an *unreliable training data* defect).  In production the model
misbehaves, and the developer wants to know why.  DeepMorph instruments the
model with auxiliary softmax probes, learns each class's execution pattern
from the training data, extracts the data-flow footprints of the faulty
production cases, and reports which defect type the evidence points at.

Run time: well under a minute on a laptop CPU.

    python examples/quickstart.py
"""


from repro import DeepMorph, find_faulty_cases
from repro.api import LocalDiagnoser
from repro.data import SyntheticMNIST
from repro.defects import UnreliableTrainingData
from repro.models import LeNet
from repro.optim import Adam
from repro.training import Trainer, evaluate


def main() -> None:
    # ------------------------------------------------------------------ data
    # Synthetic stand-in for MNIST: 10 classes of small grayscale images.
    generator = SyntheticMNIST()
    train_data, production_data = generator.splits(
        n_train_per_class=60, n_test_per_class=30, rng=0
    )

    # Inject the defect: 45 % of one class's training labels are wrong.
    injector = UnreliableTrainingData(source_class=3, target_class=5, fraction=0.45)
    corrupted_train, injection = injector.apply(train_data, rng=1)
    print(f"injected defect : {injection.description}")

    # ----------------------------------------------------------------- model
    model = LeNet(input_shape=generator.input_shape, num_classes=10, rng=7)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01), rng=2)
    trainer.fit(corrupted_train, epochs=12, batch_size=32)

    _, accuracy = evaluate(model, production_data)
    print(f"production accuracy: {accuracy:.3f} (the developer is unhappy)")

    # ------------------------------------------------------------- diagnosis
    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production_data)
    print(f"faulty cases    : {len(faulty_labels)}")

    morph = DeepMorph(rng=3)
    morph.fit(model, corrupted_train)

    # The public API: wrap the fitted pipeline in a Diagnoser backend.  The
    # same call works unchanged against an in-process service
    # (ServiceDiagnoser) or a repro-serve gateway (RemoteDiagnoser).
    diagnoser = LocalDiagnoser(morph, name="lenet")
    report = diagnoser.diagnose_arrays(faulty_inputs, faulty_labels)

    print()
    print(report.summary())
    print()
    verdict = report.dominant_defect.upper()
    print(f"DeepMorph points at {verdict} — "
          f"{'the injected defect' if verdict == 'UTD' else 'see the ratio breakdown above'}.")

    # Layer-wise probe quality is a useful drill-down for the developer.
    print("\nper-layer probe accuracy (feature quality profile):")
    for layer, acc in morph.probe_accuracies().items():
        print(f"  {layer:12s} {acc:.3f}")


if __name__ == "__main__":
    main()
