#!/usr/bin/env python3
"""Reproduce (a scaled version of) the paper's Table I from the public API.

Runs the full defect-injection grid — LeNet and AlexNet on the synthetic
MNIST stand-in, ResNet and DenseNet on the synthetic CIFAR stand-in, each with
ITD, UTD, and SD injected — and prints the ratios next to the values the paper
reports.  With the ``quick`` preset this takes several minutes on a laptop
CPU; pass ``--models lenet`` to run a single model family.

    python examples/reproduce_table1.py --models lenet alexnet
"""

import argparse

from repro.experiments import format_table1, preset, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--models",
        nargs="+",
        default=["lenet", "alexnet", "resnet", "densenet"],
        help="model families to include",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=["default", "quick", "smoke", "paper"],
        help="experiment preset (quick keeps the runtime reasonable)",
    )
    args = parser.parse_args()

    settings = preset(args.preset)
    result = run_table1(models=args.models, settings=settings, progress=print)
    print()
    print(format_table1(result))


if __name__ == "__main__":
    main()
