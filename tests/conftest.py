"""Shared fixtures for the test suite.

Everything here is deliberately tiny (8×8 images, a handful of examples per
class, single-digit epochs) so the whole suite stays fast while still
exercising real training, probing, and diagnosis code paths.  Expensive
fixtures are session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DeepMorph
from repro.data import ArrayDataset, SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.optim import Adam
from repro.training import Trainer


TINY_IMAGE_SIZE = 10
TINY_CLASSES = 4


def make_tiny_generator(seed: int = 5) -> SyntheticImageClassification:
    """A small synthetic task: 4 classes of 10×10 grayscale images."""
    return SyntheticImageClassification(SyntheticConfig(
        num_classes=TINY_CLASSES,
        image_size=TINY_IMAGE_SIZE,
        channels=1,
        templates_per_class=2,
        blobs_per_template=2,
        bars_per_template=1,
        noise_std=0.05,
        max_shift=1,
        distractor_bars=0,
        seed=seed,
    ))


def make_tiny_model(seed: int = 3) -> LeNet:
    """A very small LeNet matched to the tiny generator."""
    return LeNet(
        input_shape=(1, TINY_IMAGE_SIZE, TINY_IMAGE_SIZE),
        num_classes=TINY_CLASSES,
        conv_channels=(4,),
        dense_units=(16,),
        kernel_size=3,
        rng=seed,
    )


@pytest.fixture(scope="session")
def tiny_generator() -> SyntheticImageClassification:
    return make_tiny_generator()


@pytest.fixture(scope="session")
def tiny_splits(tiny_generator):
    """(train, test) ArrayDatasets for the tiny task."""
    return tiny_generator.splits(n_train_per_class=20, n_test_per_class=10, rng=0)


@pytest.fixture(scope="session")
def trained_tiny_model(tiny_splits):
    """A tiny LeNet trained on the tiny task (shared across tests, never mutated)."""
    train, _ = tiny_splits
    model = make_tiny_model()
    trainer = Trainer(model, Adam(model.parameters(), lr=0.02), rng=1)
    trainer.fit(train, epochs=6, batch_size=16)
    model.eval()
    return model


@pytest.fixture(scope="session")
def fitted_deepmorph(trained_tiny_model, tiny_splits):
    """A DeepMorph instance fitted on the tiny trained model."""
    train, _ = tiny_splits
    morph = DeepMorph(probe_epochs=4, rng=2)
    morph.fit(trained_tiny_model, train)
    return morph


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def small_labeled_arrays(rng):
    """A small random (inputs, labels) pair with 3 classes for dataset tests."""
    inputs = rng.random((30, 1, 6, 6))
    labels = np.repeat(np.arange(3), 10)
    return inputs, labels


@pytest.fixture()
def small_dataset(small_labeled_arrays) -> ArrayDataset:
    inputs, labels = small_labeled_arrays
    return ArrayDataset(inputs, labels, num_classes=3, name="small")
