"""Three-way backend parity and behavior tests for the repro.api facade.

The acceptance bar of the API redesign: :class:`LocalDiagnoser`,
:class:`ServiceDiagnoser`, and :class:`RemoteDiagnoser` must return
**bitwise-identical** ``v1`` reports for the same artifact and inputs, while
the pre-facade entry points (``DeepMorph.diagnose``,
``DiagnosisService.diagnose_dict``) stay green as shims.
"""

from __future__ import annotations

import pytest

from repro.api import (
    DiagnoserConfig,
    DiagnosisRequest,
    LocalDiagnoser,
    RemoteDiagnoser,
    ServiceDiagnoser,
)
from repro.exceptions import (
    ArtifactNotFoundError,
    ConfigurationError,
    NoFaultyCasesError,
    RemoteTransportError,
    SchemaVersionError,
    ServiceSaturatedError,
)
from repro.serve import ArtifactRegistry, DiagnosisGateway, DiagnosisService, ReplicaPool


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, fitted_deepmorph):
    root = tmp_path_factory.mktemp("api_registry")
    registry = ArtifactRegistry(root)
    registry.register("tiny", fitted_deepmorph, metadata={"suite": "api"})
    return root


@pytest.fixture(scope="module")
def local_diagnoser(registry_dir):
    return LocalDiagnoser.from_registry(registry_dir, "tiny")


@pytest.fixture(scope="module")
def service_diagnoser(registry_dir):
    config = DiagnoserConfig(batch_wait_seconds=0.001, num_workers=1)
    diagnoser = ServiceDiagnoser.from_registry(registry_dir, config=config)
    yield diagnoser
    diagnoser.close()


@pytest.fixture(scope="module")
def pool(registry_dir):
    pool = ReplicaPool.from_registry(
        registry_dir, num_replicas=1, batch_wait_seconds=0.001, num_workers=1
    )
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def gateway(pool):
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
    yield gateway
    gateway.shutdown()


@pytest.fixture(scope="module")
def remote_diagnoser(gateway):
    diagnoser = RemoteDiagnoser(gateway.url, default_model="tiny")
    yield diagnoser
    diagnoser.close()


class TestThreeWayParity:
    def test_bitwise_identical_reports_across_backends(
        self, local_diagnoser, service_diagnoser, remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()

        local = local_diagnoser.diagnose_arrays(inputs, labels)
        service = service_diagnoser.diagnose_arrays(inputs, labels, model="tiny")
        remote = remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist())

        # Bitwise equality of the full v1 documents: ratios, counts, context,
        # metadata — no tolerance.
        assert local.to_dict() == service.to_dict()
        assert service.to_dict() == remote.to_dict()
        assert local.num_cases >= 1
        assert local.metadata["model"] == "tiny"
        assert local.metadata["version"] == "v1"
        assert local.metadata["num_production_cases"] == len(test)
        assert abs(sum(local.ratios.values()) - 1.0) < 1e-12

    def test_parity_with_pinned_version_and_metadata(
        self, local_diagnoser, service_diagnoser, remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        kwargs = dict(version="v1", metadata={"run": "parity"})

        local = local_diagnoser.diagnose_arrays(inputs, labels, **kwargs)
        service = service_diagnoser.diagnose_arrays(inputs, labels, model="tiny", **kwargs)
        remote = remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist(), **kwargs)

        assert local.to_dict() == service.to_dict() == remote.to_dict()
        assert local.metadata["run"] == "parity"

    def test_old_entry_points_agree_with_facade(
        self, fitted_deepmorph, local_diagnoser, registry_dir, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()

        facade = local_diagnoser.diagnose_arrays(inputs, labels)

        # Shim 1: DeepMorph.diagnose (the engine) — same evidence, same ratios.
        direct = fitted_deepmorph.diagnose(inputs, labels)
        assert direct.num_cases == facade.num_cases
        for defect, ratio in direct.ratios.items():
            assert facade.ratios[defect.value] == pytest.approx(ratio, abs=1e-9)

        # Shim 2: DiagnosisService.diagnose_dict — the wire document IS the
        # library document.
        service = DiagnosisService(registry_dir, batch_wait_seconds=0.001, num_workers=1)
        try:
            wire = service.diagnose_dict("tiny", inputs, labels)
        finally:
            service.close()
        assert wire == facade.to_dict()

    def test_diagnose_request_object_round_trip(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = DiagnosisRequest(model="tiny", inputs=inputs, labels=labels)
        report = local_diagnoser.diagnose(request)
        rebuilt = DiagnosisRequest.from_dict(request.to_dict())
        assert local_diagnoser.diagnose(rebuilt).to_dict() == report.to_dict()


class TestStreamingDiagnosis:
    def test_diagnose_iter_yields_per_batch_reports(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        batch = 10
        reports = list(local_diagnoser.diagnose_iter(inputs, labels, batch_size=batch))
        assert reports, "expected at least one faulty batch"
        assert sum(r.metadata["num_production_cases"] for r in reports) <= len(test)
        assert all(r.metadata["num_production_cases"] <= batch for r in reports)
        # Streaming covers the same faulty population as one big diagnosis.
        total_cases = sum(r.num_cases for r in reports)
        whole = local_diagnoser.diagnose_arrays(inputs, labels)
        assert total_cases == whole.num_cases

    def test_diagnose_iter_accepts_a_dataset(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        reports = list(local_diagnoser.diagnose_iter(test, batch_size=16))
        assert reports
        assert sum(r.num_cases for r in reports) >= 1

    def test_diagnose_iter_over_remote_backend(self, remote_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        reports = list(
            remote_diagnoser.diagnose_iter(inputs.tolist(), labels.tolist(), batch_size=16)
        )
        assert reports
        assert all(r.cache_state in ("hit", "miss", "off") for r in reports)

    def test_diagnose_iter_argument_validation(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ConfigurationError):
            list(local_diagnoser.diagnose_iter(test, labels, batch_size=8))
        with pytest.raises(ConfigurationError):
            list(local_diagnoser.diagnose_iter(inputs, None, batch_size=8))
        with pytest.raises(ConfigurationError):
            list(local_diagnoser.diagnose_iter(inputs, labels, batch_size=0))


class TestBackendBehavior:
    def test_unknown_schema_version_rejected_everywhere(
        self, local_diagnoser, service_diagnoser, remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = DiagnosisRequest(model="tiny", inputs=inputs, labels=labels, schema="v99")
        for backend in (local_diagnoser, service_diagnoser, remote_diagnoser):
            with pytest.raises(SchemaVersionError):
                backend.diagnose(request)

    def test_local_identity_checks(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ArtifactNotFoundError):
            local_diagnoser.diagnose_arrays(inputs, labels, model="ghost")
        with pytest.raises(ArtifactNotFoundError):
            local_diagnoser.diagnose_arrays(inputs, labels, version="v99")

    def test_remote_maps_errors_onto_typed_exceptions(self, remote_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ArtifactNotFoundError):
            remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist(), model="ghost")
        with pytest.raises(ConfigurationError):
            # Labels/inputs length mismatch -> the shared validation's
            # ConfigurationError, rebuilt client-side from the wire document.
            remote_diagnoser.diagnose_arrays(inputs[:2].tolist(), labels[:1].tolist())
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError):
            remote_diagnoser.diagnose_arrays([[0.0] * 4], [0], model="tiny")

    def test_remote_maps_no_faulty_cases(self, remote_diagnoser, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        # Label every case with the model's own predictions: nothing is faulty.
        predictions = local_diagnoser.morph.model.predict(inputs)
        with pytest.raises(NoFaultyCasesError):
            remote_diagnoser.diagnose_arrays(inputs.tolist(), predictions.tolist())

    def test_remote_surfaces_response_cache_state(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        client = RemoteDiagnoser(gateway.url, default_model="tiny")
        try:
            payload = (inputs.tolist(), labels.tolist())
            first = client.diagnose_arrays(*payload, metadata={"probe": "cache-state"})
            second = client.diagnose_arrays(*payload, metadata={"probe": "cache-state"})
        finally:
            client.close()
        assert first.cache_state == "miss"
        assert second.cache_state == "hit"
        assert first.to_dict() == second.to_dict()

    def test_remote_saturation_raises_typed_error_when_retries_exhausted(
        self, gateway, pool, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        client = RemoteDiagnoser(
            gateway.url,
            config=DiagnoserConfig(max_retries=0),
            default_model="tiny",
        )
        leases = [pool.acquire() for _ in range(pool.max_inflight)]
        try:
            with pytest.raises(ServiceSaturatedError) as excinfo:
                client.diagnose_arrays(
                    inputs.tolist(), labels.tolist(), metadata={"probe": "saturation"}
                )
            assert excinfo.value.retry_after >= 1.0
        finally:
            for lease in leases:
                lease.release()
            client.close()

    def test_remote_retries_after_saturation_clears(self, gateway, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        client = RemoteDiagnoser(
            gateway.url,
            config=DiagnoserConfig(
                max_retries=3, retry_backoff_seconds=0.05, retry_after_cap_seconds=0.1
            ),
            default_model="tiny",
        )
        lease = pool.acquire()
        release_timer = __import__("threading").Timer(0.15, lease.release)
        # Saturate a 1-replica pool view only partially: hold capacity down to
        # the last slot, then free it while the client is backing off.
        extra = [pool.acquire() for _ in range(pool.max_inflight - 1)]
        release_timer.start()
        try:
            report = client.diagnose_arrays(
                inputs.tolist(), labels.tolist(), metadata={"probe": "retry-clears"}
            )
            assert report.num_cases >= 1
        finally:
            release_timer.cancel()
            lease.release()
            for item in extra:
                item.release()
            client.close()

    def test_remote_rejects_non_bare_base_urls(self):
        with pytest.raises(ConfigurationError):
            RemoteDiagnoser("https://host:1")  # https not spoken
        with pytest.raises(ConfigurationError):
            RemoteDiagnoser("http://host:1/prefix")  # path would be dropped
        with pytest.raises(ConfigurationError):
            RemoteDiagnoser("http://host:1/?q=1")

    def test_local_config_dtype_applies_on_both_construction_paths(
        self, registry_dir, fitted_deepmorph
    ):
        import numpy as np

        from repro.api import LocalDiagnoser

        config = DiagnoserConfig(inference_dtype="float64")
        loaded = LocalDiagnoser.from_registry(registry_dir, "tiny", config=config)
        assert np.dtype(loaded.morph.instrumented.inference_dtype) == np.float64
        registry = __import__("repro.serve", fromlist=["ArtifactRegistry"])
        wrapped = LocalDiagnoser(
            registry.ArtifactRegistry(registry_dir).load("tiny"), config=config
        )
        assert np.dtype(wrapped.morph.instrumented.inference_dtype) == np.float64

    def test_remote_transport_error_on_dead_server(self):
        client = RemoteDiagnoser(
            "http://127.0.0.1:9",  # discard port: nothing listens
            config=DiagnoserConfig(max_retries=1, retry_backoff_seconds=0.01),
        )
        with pytest.raises(RemoteTransportError):
            client.diagnose_arrays([[0.0]], [0], model="tiny")

    def test_remote_introspection_endpoints(self, remote_diagnoser):
        assert remote_diagnoser.health()["status"] == "ok"
        assert "tiny" in remote_diagnoser.health()["models"]
        assert any(m["name"] == "tiny" for m in remote_diagnoser.models()["models"])
        assert "pool" in remote_diagnoser.stats()
        assert "gateway" in remote_diagnoser.metrics()

    def test_service_diagnoser_over_replica_pool(self, pool, tiny_splits, local_diagnoser):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        diagnoser = ServiceDiagnoser(pool, default_model="tiny")
        report = diagnoser.diagnose_arrays(inputs, labels)
        assert report.to_dict() == local_diagnoser.diagnose_arrays(inputs, labels).to_dict()
        diagnoser.close()  # does not own the pool
        assert pool.acquire().release() is None  # pool still alive

    def test_context_managers_close_backends(self, registry_dir, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        config = DiagnoserConfig(batch_wait_seconds=0.001, num_workers=1)
        with ServiceDiagnoser.from_registry(registry_dir, config=config) as diagnoser:
            report = diagnoser.diagnose_arrays(inputs, labels, model="tiny")
            assert report.num_cases >= 1
            inner = diagnoser.service
        assert inner._closed  # owned service closed on exit
