"""Three-way backend parity and behavior tests for the repro.api facade.

The acceptance bar of the API redesign: :class:`LocalDiagnoser`,
:class:`ServiceDiagnoser`, and :class:`RemoteDiagnoser` must return
**bitwise-identical** ``v1`` reports for the same artifact and inputs, while
the pre-facade entry points (``DeepMorph.diagnose``,
``DiagnosisService.diagnose_dict``) stay green as shims.
"""

from __future__ import annotations

import pytest

from repro.api import (
    DiagnoserConfig,
    DiagnosisRequest,
    LocalDiagnoser,
    RemoteDiagnoser,
    ServiceDiagnoser,
)
from repro.exceptions import (
    ArtifactNotFoundError,
    ConfigurationError,
    NoFaultyCasesError,
    RemoteTransportError,
    SchemaVersionError,
    ServiceSaturatedError,
)
from repro.serve import ArtifactRegistry, DiagnosisGateway, DiagnosisService, ReplicaPool


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, fitted_deepmorph):
    root = tmp_path_factory.mktemp("api_registry")
    registry = ArtifactRegistry(root)
    registry.register("tiny", fitted_deepmorph, metadata={"suite": "api"})
    return root


@pytest.fixture(scope="module")
def local_diagnoser(registry_dir):
    return LocalDiagnoser.from_registry(registry_dir, "tiny")


@pytest.fixture(scope="module")
def service_diagnoser(registry_dir):
    config = DiagnoserConfig(batch_wait_seconds=0.001, num_workers=1)
    diagnoser = ServiceDiagnoser.from_registry(registry_dir, config=config)
    yield diagnoser
    diagnoser.close()


@pytest.fixture(scope="module")
def pool(registry_dir):
    pool = ReplicaPool.from_registry(
        registry_dir, num_replicas=1, batch_wait_seconds=0.001, num_workers=1
    )
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def gateway(pool):
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
    yield gateway
    gateway.shutdown()


@pytest.fixture(scope="module")
def remote_diagnoser(gateway):
    diagnoser = RemoteDiagnoser(gateway.url, default_model="tiny")
    yield diagnoser
    diagnoser.close()


@pytest.fixture(scope="module")
def binary_remote_diagnoser(gateway):
    diagnoser = RemoteDiagnoser(
        gateway.url,
        config=DiagnoserConfig(wire_codec="binary"),
        default_model="tiny",
    )
    yield diagnoser
    diagnoser.close()


class TestThreeWayParity:
    def test_bitwise_identical_reports_across_backends(
        self, local_diagnoser, service_diagnoser, remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()

        local = local_diagnoser.diagnose_arrays(inputs, labels)
        service = service_diagnoser.diagnose_arrays(inputs, labels, model="tiny")
        remote = remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist())

        # Bitwise equality of the full v1 documents: ratios, counts, context,
        # metadata — no tolerance.
        assert local.to_dict() == service.to_dict()
        assert service.to_dict() == remote.to_dict()
        assert local.num_cases >= 1
        assert local.metadata["model"] == "tiny"
        assert local.metadata["version"] == "v1"
        assert local.metadata["num_production_cases"] == len(test)
        assert abs(sum(local.ratios.values()) - 1.0) < 1e-12

    def test_parity_with_pinned_version_and_metadata(
        self, local_diagnoser, service_diagnoser, remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        kwargs = dict(version="v1", metadata={"run": "parity"})

        local = local_diagnoser.diagnose_arrays(inputs, labels, **kwargs)
        service = service_diagnoser.diagnose_arrays(inputs, labels, model="tiny", **kwargs)
        remote = remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist(), **kwargs)

        assert local.to_dict() == service.to_dict() == remote.to_dict()
        assert local.metadata["run"] == "parity"

    def test_old_entry_points_agree_with_facade(
        self, fitted_deepmorph, local_diagnoser, registry_dir, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()

        facade = local_diagnoser.diagnose_arrays(inputs, labels)

        # Shim 1: DeepMorph.diagnose (the engine) — same evidence, same ratios.
        direct = fitted_deepmorph.diagnose(inputs, labels)
        assert direct.num_cases == facade.num_cases
        for defect, ratio in direct.ratios.items():
            assert facade.ratios[defect.value] == pytest.approx(ratio, abs=1e-9)

        # Shim 2: DiagnosisService.diagnose_dict — the wire document IS the
        # library document.
        service = DiagnosisService(registry_dir, batch_wait_seconds=0.001, num_workers=1)
        try:
            wire = service.diagnose_dict("tiny", inputs, labels)
        finally:
            service.close()
        assert wire == facade.to_dict()

    def test_diagnose_request_object_round_trip(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = DiagnosisRequest(model="tiny", inputs=inputs, labels=labels)
        report = local_diagnoser.diagnose(request)
        rebuilt = DiagnosisRequest.from_dict(request.to_dict())
        assert local_diagnoser.diagnose(rebuilt).to_dict() == report.to_dict()


class TestWireCodecParity:
    """The parity bar extends across wire codecs: JSON and binary clients
    must receive bitwise-identical ``v1`` reports from the same gateway."""

    def test_binary_remote_is_bitwise_identical(
        self, local_diagnoser, remote_diagnoser, binary_remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()

        local = local_diagnoser.diagnose_arrays(inputs, labels)
        via_json = remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist())
        via_binary = binary_remote_diagnoser.diagnose_arrays(inputs, labels)

        assert local.to_dict() == via_json.to_dict() == via_binary.to_dict()
        assert binary_remote_diagnoser.codec.name == "binary"

    def test_binary_remote_maps_typed_errors(self, binary_remote_diagnoser, tiny_splits):
        # Errors are always JSON on the wire; a binary client still rebuilds
        # the typed exception.
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ArtifactNotFoundError):
            binary_remote_diagnoser.diagnose_arrays(inputs, labels, model="ghost")
        with pytest.raises(ConfigurationError):
            binary_remote_diagnoser.diagnose_arrays(inputs[:2], labels[:1])

    def test_request_id_metadata_rides_both_codecs(
        self, remote_diagnoser, binary_remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        for client in (remote_diagnoser, binary_remote_diagnoser):
            report = client.diagnose_arrays(
                inputs, labels, metadata={"request_id": f"rid-{client.codec.name}"}
            )
            assert report.request_id == f"rid-{client.codec.name}"

    def test_trace_headers_propagate_under_both_codecs(self, gateway, tiny_splits, tmp_path):
        from repro import obs

        _, test = tiny_splits
        inputs, labels = test.arrays()
        obs.configure(enabled=True, jsonl_path=str(tmp_path / "spans.jsonl"), reset=True)
        try:
            for codec in ("json", "binary"):
                client = RemoteDiagnoser(
                    gateway.url,
                    config=DiagnoserConfig(wire_codec=codec),
                    default_model="tiny",
                )
                try:
                    report = client.diagnose_arrays(
                        inputs, labels, metadata={"probe": f"trace-{codec}"}
                    )
                finally:
                    client.close()
                # With tracing on, the client stamps a request id that rides
                # X-Request-ID to the server and returns in the report.
                assert report.request_id is not None
        finally:
            obs.configure(enabled=False, reset=True)

    def test_cross_codec_response_cache_sharing(self, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
        json_client = RemoteDiagnoser(gateway.url, default_model="tiny")
        binary_client = RemoteDiagnoser(
            gateway.url, config=DiagnoserConfig(wire_codec="binary"), default_model="tiny"
        )
        try:
            metadata = {"probe": "cross-codec-cache"}
            # JSON warms the cache; the binary request decodes to the same
            # canonical digest and must hit the same entry.
            warm = json_client.diagnose_arrays(
                inputs.tolist(), labels.tolist(), metadata=metadata
            )
            shared = binary_client.diagnose_arrays(inputs, labels, metadata=metadata)
            assert warm.cache_state == "miss"
            assert shared.cache_state == "hit"
            assert warm.to_dict() == shared.to_dict()
            # The linked body alias now serves the binary repeat pre-decode.
            again = binary_client.diagnose_arrays(inputs, labels, metadata=metadata)
            assert again.cache_state == "hit"
            assert again.to_dict() == warm.to_dict()
        finally:
            json_client.close()
            binary_client.close()
            gateway.shutdown()


class TestDiagnoseMany:
    def _requests(self, tiny_splits, count):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        return [
            DiagnosisRequest(
                model="tiny", inputs=inputs, labels=labels, metadata={"batch": str(i)}
            )
            for i in range(count)
        ]

    def test_pipelined_reports_match_sequential(
        self, remote_diagnoser, local_diagnoser, tiny_splits
    ):
        requests = self._requests(tiny_splits, 3)
        pipelined = remote_diagnoser.diagnose_many(requests)
        sequential = [local_diagnoser.diagnose(request) for request in requests]
        assert len(pipelined) == 3
        for got, expected, request in zip(pipelined, sequential, requests):
            assert got.to_dict() == expected.to_dict()
            assert got.metadata["batch"] == request.metadata["batch"]  # order kept

    def test_pipelining_under_binary_codec(self, binary_remote_diagnoser, tiny_splits):
        requests = self._requests(tiny_splits, 3)
        reports = binary_remote_diagnoser.diagnose_many(requests)
        assert [r.metadata["batch"] for r in reports] == ["0", "1", "2"]

    def test_single_request_falls_back_to_diagnose(self, remote_diagnoser, tiny_splits):
        requests = self._requests(tiny_splits, 1)
        reports = remote_diagnoser.diagnose_many(requests)
        assert len(reports) == 1
        assert reports[0].to_dict() == remote_diagnoser.diagnose(requests[0]).to_dict()
        assert remote_diagnoser.diagnose_many([]) == []

    def test_mid_window_error_is_typed(self, remote_diagnoser, tiny_splits):
        requests = self._requests(tiny_splits, 3)
        requests[1] = DiagnosisRequest(
            model="ghost", inputs=requests[1].inputs, labels=requests[1].labels
        )
        with pytest.raises(ArtifactNotFoundError):
            remote_diagnoser.diagnose_many(requests)

    def test_base_backends_share_the_api(self, local_diagnoser, service_diagnoser, tiny_splits):
        requests = self._requests(tiny_splits, 2)
        local = local_diagnoser.diagnose_many(requests)
        service = service_diagnoser.diagnose_many(requests)
        assert [r.to_dict() for r in local] == [r.to_dict() for r in service]


class TestStreamingDiagnosis:
    def test_diagnose_iter_yields_per_batch_reports(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        batch = 10
        reports = list(local_diagnoser.diagnose_iter(inputs, labels, batch_size=batch))
        assert reports, "expected at least one faulty batch"
        assert sum(r.metadata["num_production_cases"] for r in reports) <= len(test)
        assert all(r.metadata["num_production_cases"] <= batch for r in reports)
        # Streaming covers the same faulty population as one big diagnosis.
        total_cases = sum(r.num_cases for r in reports)
        whole = local_diagnoser.diagnose_arrays(inputs, labels)
        assert total_cases == whole.num_cases

    def test_diagnose_iter_accepts_a_dataset(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        reports = list(local_diagnoser.diagnose_iter(test, batch_size=16))
        assert reports
        assert sum(r.num_cases for r in reports) >= 1

    def test_diagnose_iter_over_remote_backend(self, remote_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        reports = list(
            remote_diagnoser.diagnose_iter(inputs.tolist(), labels.tolist(), batch_size=16)
        )
        assert reports
        assert all(r.cache_state in ("hit", "miss", "off") for r in reports)

    def test_diagnose_iter_argument_validation(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ConfigurationError):
            list(local_diagnoser.diagnose_iter(test, labels, batch_size=8))
        with pytest.raises(ConfigurationError):
            list(local_diagnoser.diagnose_iter(inputs, None, batch_size=8))
        with pytest.raises(ConfigurationError):
            list(local_diagnoser.diagnose_iter(inputs, labels, batch_size=0))


class TestBackendBehavior:
    def test_unknown_schema_version_rejected_everywhere(
        self, local_diagnoser, service_diagnoser, remote_diagnoser, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = DiagnosisRequest(model="tiny", inputs=inputs, labels=labels, schema="v99")
        for backend in (local_diagnoser, service_diagnoser, remote_diagnoser):
            with pytest.raises(SchemaVersionError):
                backend.diagnose(request)

    def test_local_identity_checks(self, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ArtifactNotFoundError):
            local_diagnoser.diagnose_arrays(inputs, labels, model="ghost")
        with pytest.raises(ArtifactNotFoundError):
            local_diagnoser.diagnose_arrays(inputs, labels, version="v99")

    def test_remote_maps_errors_onto_typed_exceptions(self, remote_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(ArtifactNotFoundError):
            remote_diagnoser.diagnose_arrays(inputs.tolist(), labels.tolist(), model="ghost")
        with pytest.raises(ConfigurationError):
            # Labels/inputs length mismatch -> the shared validation's
            # ConfigurationError, rebuilt client-side from the wire document.
            remote_diagnoser.diagnose_arrays(inputs[:2].tolist(), labels[:1].tolist())
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError):
            remote_diagnoser.diagnose_arrays([[0.0] * 4], [0], model="tiny")

    def test_remote_maps_no_faulty_cases(self, remote_diagnoser, local_diagnoser, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        # Label every case with the model's own predictions: nothing is faulty.
        predictions = local_diagnoser.morph.model.predict(inputs)
        with pytest.raises(NoFaultyCasesError):
            remote_diagnoser.diagnose_arrays(inputs.tolist(), predictions.tolist())

    def test_remote_surfaces_response_cache_state(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        client = RemoteDiagnoser(gateway.url, default_model="tiny")
        try:
            payload = (inputs.tolist(), labels.tolist())
            first = client.diagnose_arrays(*payload, metadata={"probe": "cache-state"})
            second = client.diagnose_arrays(*payload, metadata={"probe": "cache-state"})
        finally:
            client.close()
        assert first.cache_state == "miss"
        assert second.cache_state == "hit"
        assert first.to_dict() == second.to_dict()

    def test_remote_saturation_raises_typed_error_when_retries_exhausted(
        self, gateway, pool, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        client = RemoteDiagnoser(
            gateway.url,
            config=DiagnoserConfig(max_retries=0),
            default_model="tiny",
        )
        leases = [pool.acquire() for _ in range(pool.max_inflight)]
        try:
            with pytest.raises(ServiceSaturatedError) as excinfo:
                client.diagnose_arrays(
                    inputs.tolist(), labels.tolist(), metadata={"probe": "saturation"}
                )
            assert excinfo.value.retry_after >= 1.0
        finally:
            for lease in leases:
                lease.release()
            client.close()

    def test_remote_retries_after_saturation_clears(self, gateway, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        client = RemoteDiagnoser(
            gateway.url,
            config=DiagnoserConfig(
                max_retries=3, retry_backoff_seconds=0.05, retry_after_cap_seconds=0.1
            ),
            default_model="tiny",
        )
        lease = pool.acquire()
        release_timer = __import__("threading").Timer(0.15, lease.release)
        # Saturate a 1-replica pool view only partially: hold capacity down to
        # the last slot, then free it while the client is backing off.
        extra = [pool.acquire() for _ in range(pool.max_inflight - 1)]
        release_timer.start()
        try:
            report = client.diagnose_arrays(
                inputs.tolist(), labels.tolist(), metadata={"probe": "retry-clears"}
            )
            assert report.num_cases >= 1
        finally:
            release_timer.cancel()
            lease.release()
            for item in extra:
                item.release()
            client.close()

    def test_remote_rejects_non_bare_base_urls(self):
        with pytest.raises(ConfigurationError):
            RemoteDiagnoser("https://host:1")  # https not spoken
        with pytest.raises(ConfigurationError):
            RemoteDiagnoser("http://host:1/prefix")  # path would be dropped
        with pytest.raises(ConfigurationError):
            RemoteDiagnoser("http://host:1/?q=1")

    def test_local_config_dtype_applies_on_both_construction_paths(
        self, registry_dir, fitted_deepmorph
    ):
        import numpy as np

        from repro.api import LocalDiagnoser

        config = DiagnoserConfig(inference_dtype="float64")
        loaded = LocalDiagnoser.from_registry(registry_dir, "tiny", config=config)
        assert np.dtype(loaded.morph.instrumented.inference_dtype) == np.float64
        registry = __import__("repro.serve", fromlist=["ArtifactRegistry"])
        wrapped = LocalDiagnoser(
            registry.ArtifactRegistry(registry_dir).load("tiny"), config=config
        )
        assert np.dtype(wrapped.morph.instrumented.inference_dtype) == np.float64

    def test_remote_transport_error_on_dead_server(self):
        client = RemoteDiagnoser(
            "http://127.0.0.1:9",  # discard port: nothing listens
            config=DiagnoserConfig(max_retries=1, retry_backoff_seconds=0.01),
        )
        with pytest.raises(RemoteTransportError):
            client.diagnose_arrays([[0.0]], [0], model="tiny")

    def test_remote_introspection_endpoints(self, remote_diagnoser):
        assert remote_diagnoser.health()["status"] == "ok"
        assert "tiny" in remote_diagnoser.health()["models"]
        assert any(m["name"] == "tiny" for m in remote_diagnoser.models()["models"])
        assert "pool" in remote_diagnoser.stats()
        assert "gateway" in remote_diagnoser.metrics()

    def test_service_diagnoser_over_replica_pool(self, pool, tiny_splits, local_diagnoser):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        diagnoser = ServiceDiagnoser(pool, default_model="tiny")
        report = diagnoser.diagnose_arrays(inputs, labels)
        assert report.to_dict() == local_diagnoser.diagnose_arrays(inputs, labels).to_dict()
        diagnoser.close()  # does not own the pool
        assert pool.acquire().release() is None  # pool still alive

    def test_context_managers_close_backends(self, registry_dir, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        config = DiagnoserConfig(batch_wait_seconds=0.001, num_workers=1)
        with ServiceDiagnoser.from_registry(registry_dir, config=config) as diagnoser:
            report = diagnoser.diagnose_arrays(inputs, labels, model="tiny")
            assert report.num_cases >= 1
            inner = diagnoser.service
        assert inner._closed  # owned service closed on exit
