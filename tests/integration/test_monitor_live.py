"""Live drift monitoring end to end: alert fires, snapshot registers, rollback.

The PR-10 acceptance scenario: a monitored service under defect-skewed
traffic escalates its drift alert, the incremental updater snapshots a
``partial_fit`` library as a **new** registry version, and rolling back —
pinning the pre-drift version in the request — replays the pre-drift
diagnosis bit for bit, because registry artifacts are immutable and the
update never touched ``v1``'s bytes.

Also covered here: the ``GET /monitor`` route on both front ends (the
threading server and the asyncio gateway, including ``?refresh=1`` and the
disabled payload), monitor gauges on ``GET /metrics``, and the
``repro-monitor`` CLI replaying a JSONL trace offline.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.cli import monitor as monitor_cli
from repro.serve import (
    ArtifactRegistry,
    DiagnosisGateway,
    DiagnosisHTTPServer,
    DiagnosisService,
    ReplicaPool,
)

MONITOR_KWARGS = dict(
    batch_wait_seconds=0.001,
    num_workers=1,
    # The drift window is fed by the engine drain with *freshly extracted*
    # rows; disable the footprint cache so every request exercises that tap.
    cache_size=0,
)


def _post(url: str, payload: dict) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def monitored_registry(tmp_path_factory, fitted_deepmorph):
    """Registry directory holding the fitted tiny model as ``tiny@v1``."""
    root = tmp_path_factory.mktemp("monitor_registry")
    registry = ArtifactRegistry(root)
    registry.register("tiny", fitted_deepmorph, metadata={"suite": "monitor"})
    return root


class TestDriftAlertAndRollback:
    def test_skewed_traffic_escalates_snapshots_and_rolls_back(
        self, tmp_path, fitted_deepmorph, tiny_splits
    ):
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("tiny", fitted_deepmorph, metadata={"suite": "monitor"})
        _, test = tiny_splits
        inputs, labels = test.arrays()

        service = DiagnosisService(
            registry,
            monitor=True,
            monitor_window=256,
            drift_threshold=2.0,
            monitor_update_cases=32,
            **MONITOR_KWARGS,
        )
        try:
            # Pre-drift reference, pinned to the version we will roll back to.
            baseline = service.diagnose_dict("tiny", inputs, labels, version="v1")
            assert baseline["metadata"]["version"] == "v1"

            healthy = service.monitor_payload(refresh=True)
            assert healthy["enabled"] is True
            assert "tiny@v1" in healthy["models"]

            # Defect-skewed traffic: off-manifold inputs with shifted labels.
            rng = np.random.default_rng(7)
            for _ in range(6):
                skewed = rng.standard_normal(inputs.shape)
                service.diagnose_dict("tiny", skewed, np.roll(labels, 1), version="v1")

            drifted = service.monitor_payload(refresh=True)
            assert drifted["level"] in ("warn", "critical")
            alert = drifted["alerts"]["tiny@v1:drift"]
            assert alert["level"] in ("warn", "critical")
            assert alert["events_total"] >= 1

            # The labeled traffic crossed the update threshold, so the
            # updater snapshots a partial_fit library as a NEW version
            # (applied asynchronously on the jobs pool — poll for it).
            deadline = time.time() + 30.0
            while len(registry.versions("tiny")) < 2 and time.time() < deadline:
                time.sleep(0.05)
            assert len(registry.versions("tiny")) >= 2, (
                "incremental update never registered a snapshot version"
            )
            latest = registry.record("tiny")
            assert latest.metadata["monitor"]["kind"] == "partial_fit"

            # Rollback: v1's artifact bytes were never touched, so pinning it
            # replays the pre-drift diagnosis bit for bit.
            rollback = service.diagnose_dict("tiny", inputs, labels, version="v1")
            assert rollback == baseline
        finally:
            service.close()


class TestMonitorEndpoints:
    def test_http_server_monitor_route_and_metrics(
        self, monitored_registry, tiny_splits
    ):
        service = DiagnosisService(
            ArtifactRegistry(monitored_registry),
            monitor=True,
            monitor_window=128,
            **MONITOR_KWARGS,
        )
        server = DiagnosisHTTPServer(service, port=0).start()
        try:
            _, test = tiny_splits
            inputs, labels = test.arrays()
            _post(server.url + "/diagnose", {
                "model": "tiny",
                "inputs": inputs.tolist(),
                "labels": labels.tolist(),
            })
            payload = _get(server.url + "/monitor?refresh=1")
            assert payload["enabled"] is True
            assert payload["level"] in ("ok", "warn", "critical")
            model = payload["models"]["tiny@v1"]
            assert model["window"]["cases"] > 0
            assert model["drift"] is not None

            metrics = _get(server.url + "/metrics")["service"]
            assert metrics["monitor.observed_cases"]["value"] >= len(test)
            assert "monitor.alert_level" in metrics
        finally:
            server.shutdown()
            service.close()

    def test_http_server_monitor_disabled_payload(self, monitored_registry):
        service = DiagnosisService(
            ArtifactRegistry(monitored_registry), **MONITOR_KWARGS
        )
        server = DiagnosisHTTPServer(service, port=0).start()
        try:
            payload = _get(server.url + "/monitor")
            assert payload == {
                "enabled": False, "level": "ok", "models": {}, "alerts": {},
            }
        finally:
            server.shutdown()
            service.close()

    def test_gateway_monitor_route_aggregates_replicas(
        self, monitored_registry, tiny_splits
    ):
        pool = ReplicaPool.from_registry(
            monitored_registry,
            num_replicas=2,
            max_queue_per_replica=8,
            monitor=True,
            monitor_window=128,
            **MONITOR_KWARGS,
        )
        gateway = DiagnosisGateway(pool, port=0, response_cache_size=0).start()
        try:
            _, test = tiny_splits
            inputs, labels = test.arrays()
            _post(gateway.url + "/diagnose", {
                "model": "tiny",
                "inputs": inputs.tolist(),
                "labels": labels.tolist(),
            })
            payload = _get(gateway.url + "/monitor?refresh=1")
            assert payload["enabled"] is True
            assert payload["level"] in ("ok", "warn", "critical")
            assert set(payload["replicas"]) == {"0", "1"}
            # The request landed on one replica; its window holds the cases.
            windows = [
                replica["models"]["tiny@v1"]["window"]["cases"]
                for replica in payload["replicas"].values()
                if replica["models"]
            ]
            assert sum(windows) >= len(test)
        finally:
            gateway.shutdown()
            pool.close()


class TestMonitorCLI:
    def _write_trace(self, path, inputs, labels, batch: int = 8) -> int:
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            for start in range(0, labels.shape[0], batch):
                doc = {
                    "model": "tiny",
                    "inputs": inputs[start:start + batch].tolist(),
                    "labels": labels[start:start + batch].tolist(),
                }
                handle.write(json.dumps(doc) + "\n")
                lines += 1
        return lines

    def test_replaying_healthy_trace_exits_ok(
        self, tmp_path, monitored_registry, tiny_splits, capsys
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        trace = tmp_path / "trace.jsonl"
        self._write_trace(trace, inputs, labels)

        # Early windows hold a handful of cases, so per-class scores are
        # noisy (the tiny task peaks near 2.9 on an 8-case window); 3.0
        # clears that while staying far under the ~17 real drift scores.
        code = monitor_cli.main([
            str(trace),
            "--registry", str(monitored_registry),
            "--model", "tiny",
            "--min-cases", "4",
            "--drift-threshold", "3.0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "tiny@v1" in out
        assert f"replayed {labels.shape[0]} case(s)" in out

    def test_replaying_drifting_trace_exits_nonzero(
        self, tmp_path, monitored_registry, tiny_splits, capsys
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        rng = np.random.default_rng(11)
        noise = rng.standard_normal(inputs.shape)
        trace = tmp_path / "drifting.jsonl"
        lines = self._write_trace(trace, noise, labels)

        code = monitor_cli.main([
            str(trace),
            "--registry", str(monitored_registry),
            "--model", "tiny",
            "--min-cases", "4",
            "--json",
        ])
        reports = [
            json.loads(line) for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(reports) == lines
        assert all("level" in report and "line" in report for report in reports)
        assert code in (1, 2)
