"""End-to-end serving test: fit → register → HTTP diagnose → report parity.

The acceptance claim: a fitted model registered in the artifact registry
serves a batched diagnosis request over HTTP and returns exactly the same
``DefectReport`` ratios as a direct ``DeepMorph.diagnose_dataset`` call.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ArtifactRegistry, DiagnosisHTTPServer, DiagnosisService


@pytest.fixture(scope="module")
def served(tmp_path_factory, fitted_deepmorph):
    """A running HTTP server over a registry holding the fitted tiny model."""
    registry = ArtifactRegistry(tmp_path_factory.mktemp("registry"))
    registry.register("tiny", fitted_deepmorph, metadata={"suite": "integration"})
    service = DiagnosisService(registry, batch_wait_seconds=0.001, num_workers=1)
    server = DiagnosisHTTPServer(service, port=0).start()
    yield server
    server.shutdown()
    service.close()


def _post(url: str, payload: dict) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read())


class TestServeEndToEnd:
    def test_http_diagnosis_matches_direct_diagnose_dataset(
        self, served, fitted_deepmorph, tiny_splits
    ):
        _, test = tiny_splits
        direct = fitted_deepmorph.diagnose_dataset(test)

        inputs, labels = test.arrays()
        response = _post(served.url + "/diagnose", {
            "model": "tiny",
            "inputs": inputs.tolist(),
            "labels": labels.tolist(),
        })
        assert response["num_cases"] == direct.num_cases
        for defect, ratio in direct.ratios.items():
            assert response["ratios"][defect.value] == pytest.approx(ratio, abs=1e-9)
        assert response["dominant_defect"] == direct.dominant_defect.value
        assert response["metadata"]["num_production_cases"] == len(test)
        assert response["metadata"]["model"] == "tiny"
        assert response["metadata"]["version"] == "v1"

    def test_repeat_request_is_served_from_cache(self, served, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        payload = {"model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist()}
        first = _post(served.url + "/diagnose", payload)
        before = _get(served.url + "/stats")["engine"]
        second = _post(served.url + "/diagnose", payload)
        after = _get(served.url + "/stats")["engine"]
        assert second["ratios"] == first["ratios"]
        assert after["cases_from_cache"] >= before["cases_from_cache"] + len(test)
        assert after["cases_extracted"] == before["cases_extracted"]

    def test_async_job_roundtrip(self, served, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        submitted = _post(served.url + "/jobs", {
            "model": "tiny",
            "inputs": inputs.tolist(),
            "labels": labels.tolist(),
        })
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            job = _get(f"{served.url}/jobs/{job_id}")
            if job["status"] in ("succeeded", "failed"):
                break
            time.sleep(0.02)
        assert job["status"] == "succeeded", job.get("error")
        direct = fitted_deepmorph.diagnose_dataset(test)
        for defect, ratio in direct.ratios.items():
            assert job["result"]["ratios"][defect.value] == pytest.approx(ratio, abs=1e-9)

    def test_health_and_models_endpoints(self, served):
        health = _get(served.url + "/health")
        assert health["status"] == "ok"
        assert "tiny" in health["models"]
        models = _get(served.url + "/models")["models"]
        tiny = [m for m in models if m["name"] == "tiny"]
        assert tiny and tiny[0]["version"] == "v1"
        assert tiny[0]["metadata"] == {"suite": "integration"}

    def test_unknown_model_is_404(self, served, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served.url + "/diagnose", {
                "model": "ghost",
                "inputs": inputs.tolist(),
                "labels": labels.tolist(),
            })
        assert excinfo.value.code == 404

    def test_malformed_request_is_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served.url + "/diagnose", {"model": "tiny"})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served.url + "/diagnose", {
                "model": "tiny", "inputs": [], "labels": [],
            })
        assert excinfo.value.code == 400

    def test_unknown_paths_are_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served.url + "/nope")
        assert excinfo.value.code == 404


class TestThreadingServerWireNegotiation:
    """The legacy front end speaks the same codec layer as the gateway."""

    @pytest.fixture(scope="class")
    def payload(self, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        return {"model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist()}

    @staticmethod
    def _exchange(url, body, headers):
        request = urllib.request.Request(url, data=body, headers=headers)
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.read(), dict(response.headers)

    def test_binary_round_trip_matches_json(self, served, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        binary = BinaryCodec()
        frame = binary.encode_request(DiagnosisRequest.from_dict(dict(payload)))
        body, headers = self._exchange(
            served.url + "/diagnose",
            frame,
            {"Content-Type": binary.content_type, "Accept": binary.content_type},
        )
        assert headers["Content-Type"] == binary.content_type
        assert binary.decode_report(body).to_dict() == _post(
            served.url + "/diagnose", payload
        )

    def test_missing_accept_answers_json(self, served, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        frame = BinaryCodec().encode_request(DiagnosisRequest.from_dict(dict(payload)))
        body, headers = self._exchange(
            served.url + "/diagnose", frame,
            {"Content-Type": "application/x-repro-binary"},
        )
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body)["num_cases"] >= 1

    def test_unknown_content_type_is_415(self, served, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._exchange(
                served.url + "/diagnose",
                json.dumps(payload).encode(),
                {"Content-Type": "application/xml"},
            )
        assert excinfo.value.code == 415
        document = json.loads(excinfo.value.read())
        assert document["error_type"] == "UnsupportedMediaTypeError"

    def test_unsatisfiable_accept_is_415(self, served, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._exchange(
                served.url + "/diagnose",
                json.dumps(payload).encode(),
                {"Content-Type": "application/json", "Accept": "text/html, image/png"},
            )
        assert excinfo.value.code == 415

    def test_malformed_binary_frame_is_400_with_json_error(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._exchange(
                served.url + "/diagnose",
                b"\x00\x01 not a frame",
                {"Content-Type": "application/x-repro-binary"},
            )
        assert excinfo.value.code == 400
        assert excinfo.value.headers["Content-Type"] == "application/json"
        assert json.loads(excinfo.value.read())["error_type"] == "CodecError"

    def test_server_default_codec_answers_wildcard_accept(
        self, tmp_path_factory, fitted_deepmorph, payload
    ):
        from repro.wire import BinaryCodec

        registry = ArtifactRegistry(tmp_path_factory.mktemp("binary_default"))
        registry.register("tiny", fitted_deepmorph)
        service = DiagnosisService(registry, batch_wait_seconds=0.001, num_workers=1)
        server = DiagnosisHTTPServer(service, port=0, default_codec="binary").start()
        try:
            body, headers = self._exchange(
                served_url := server.url + "/diagnose",
                json.dumps(payload).encode(),
                {"Content-Type": "application/json", "Accept": "*/*"},
            )
            assert headers["Content-Type"] == "application/x-repro-binary"
            assert BinaryCodec().decode_report(body).num_cases >= 1
            # An explicit Accept still overrides the server default.
            body, headers = self._exchange(
                served_url,
                json.dumps(payload).encode(),
                {"Content-Type": "application/json", "Accept": "application/json"},
            )
            assert headers["Content-Type"] == "application/json"
        finally:
            server.shutdown()
            service.close()
