"""Chaos-driven integration tests: the resilience layer under injected faults.

Each scenario arms the process-global fault injector with a deterministic
plan (seeded draws, bounded budgets), drives real HTTP traffic at a live
front end, and asserts the *recovery*, not just the failure: quarantined
replicas are probed back in, an open breaker half-opens and closes, and an
expired deadline is refused before any diagnosis work happens (asserted via
metrics deltas, not timing).
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

import pytest

from repro.api import DiagnoserConfig, DiagnosisRequest, RemoteDiagnoser
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    RemoteTransportError,
)
from repro.resilience import DEADLINE_HEADER, HealthPolicy, configure_chaos, get_injector
from repro.serve import ArtifactRegistry, DiagnosisGateway, ReplicaPool


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, fitted_deepmorph):
    root = tmp_path_factory.mktemp("resilience_registry")
    registry = ArtifactRegistry(root)
    registry.register("tiny", fitted_deepmorph, metadata={"suite": "resilience"})
    return root


@pytest.fixture(autouse=True)
def _disarm_chaos():
    """Every test leaves the process-global injector clean."""
    yield
    configure_chaos(None)


@pytest.fixture
def payload(tiny_splits):
    # The whole test split: a slice this small a model might classify
    # perfectly, and a diagnosis with zero faulty cases is a 400, not a 200.
    _, test = tiny_splits
    inputs, labels = test.arrays()
    return {
        "model": "tiny",
        "inputs": inputs.tolist(),
        "labels": labels.tolist(),
    }


def _post(url: str, document, headers=None, timeout: float = 60):
    """POST JSON; returns (status, decoded body) without raising on 4xx/5xx."""
    body = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url: str, timeout: float = 60):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _make_stack(registry_dir, num_replicas: int):
    """A pool with fast supervision knobs plus a gateway on an ephemeral port."""
    pool = ReplicaPool.from_registry(
        registry_dir,
        num_replicas=num_replicas,
        max_queue_per_replica=8,
        batch_wait_seconds=0.001,
        num_workers=1,
        health_policy=HealthPolicy(
            failure_threshold=2,
            probe_interval_seconds=0.05,
            quarantine_seconds=0.1,
            quarantine_backoff=2.0,
            max_quarantine_seconds=1.0,
        ),
    )
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=0).start()
    return pool, gateway


class TestQuarantineAndReadmission:
    def test_faulting_replica_is_ejected_probed_and_readmitted(
        self, registry_dir, payload
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        try:
            # Two infrastructure faults (the policy's threshold) and not one
            # more: the budget makes the scenario a script, not a dice roll.
            configure_chaos({
                "plans": [{
                    "site": "replica.dispatch",
                    "mode": "error",
                    "error_type": "ServeError",
                    "message": "chaos: replica wedged",
                    "max_injections": 2,
                }],
            })

            # ServeError maps to 400 on the wire, but health classification
            # counts it against the replica (is_infrastructure_fault).
            for _ in range(2):
                status, body = _post(gateway.url + "/diagnose", payload)
                assert status == 400
                assert body["error_type"] == "ServeError"

            # The only replica is now quarantined: the pool is unavailable
            # and new work is shed, not queued behind a dead shard.
            status, health = _get(gateway.url + "/healthz")
            assert status == 503
            assert health["status"] == "unavailable"
            assert health["quarantined"] == 1
            status, body = _post(gateway.url + "/diagnose", payload)
            assert status == 503

            # The chaos budget is spent, so the supervisor's probe succeeds
            # and re-admits the replica; traffic then flows again.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status, health = _get(gateway.url + "/healthz")
                if health["status"] == "ok":
                    break
                time.sleep(0.05)
            assert health["status"] == "ok", f"never re-admitted: {health}"

            status, body = _post(gateway.url + "/diagnose", payload)
            assert status == 200 and body["num_cases"] > 0

            counters = pool.metrics_snapshot()["pool"]
            assert counters["pool.ejections_total"]["value"] >= 1
            assert counters["pool.readmissions_total"]["value"] >= 1
        finally:
            gateway.shutdown()
            pool.shutdown()

    def test_degraded_pool_keeps_serving_around_the_quarantined_replica(
        self, registry_dir, payload
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=2)
        try:
            pool.eject_replica(0)
            status, health = _get(gateway.url + "/healthz")
            assert status == 200  # degraded is alive: load balancers keep it
            assert health["status"] == "degraded"
            assert health["quarantined"] == 1
            # Routing skips the quarantined shard; traffic flows regardless.
            for _ in range(3):
                status, body = _post(gateway.url + "/diagnose", payload)
                assert status == 200
        finally:
            gateway.shutdown()
            pool.shutdown()


class TestCircuitBreaker:
    def test_drops_trip_the_breaker_and_half_open_recovers(
        self, registry_dir, tiny_splits
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = DiagnosisRequest(
            model="tiny", inputs=inputs, labels=labels
        )
        client = RemoteDiagnoser(
            gateway.url,
            config=DiagnoserConfig(
                max_retries=1,
                retry_backoff_seconds=0.01,
                breaker_failure_threshold=2,
                breaker_reset_seconds=0.3,
            ),
            rng=random.Random(7),
        )
        try:
            # Four drops cover both attempts of two calls: each call retries
            # once (with full-jitter backoff), exhausts its budget, and counts
            # one breaker failure.
            configure_chaos({
                "plans": [{
                    "site": "remote.send",
                    "mode": "drop",
                    "max_injections": 4,
                }],
            })
            for _ in range(2):
                with pytest.raises(RemoteTransportError):
                    client.diagnose(request)
            assert client.breaker_snapshot()["/diagnose"]["state"] == "open"

            # Open breaker fails locally: the injector sees no new attempt.
            fired_before = get_injector().stats()["plans"][0]["fired"]
            with pytest.raises(CircuitOpenError) as excinfo:
                client.diagnose(request)
            assert excinfo.value.retry_after is not None
            assert get_injector().stats()["plans"][0]["fired"] == fired_before

            # After the reset window the half-open probe rides a healthy wire
            # (the drop budget is spent) and closes the breaker again.
            time.sleep(0.35)
            report = client.diagnose(request)
            assert report.num_cases > 0
            assert client.breaker_snapshot()["/diagnose"]["state"] == "closed"
        finally:
            client.close()
            gateway.shutdown()
            pool.shutdown()


class TestDeadlines:
    def test_expired_deadline_is_refused_before_any_diagnosis_work(
        self, registry_dir, payload
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        try:
            # The injected read delay (150 ms) outlives the client's 20 ms
            # budget, so by admission time the deadline has lapsed.
            configure_chaos({
                "plans": [{
                    "site": "gateway.read_body",
                    "mode": "delay",
                    "delay_seconds": 0.15,
                }],
            })
            before = pool.metrics_snapshot()["aggregate_counters"]

            status, body = _post(
                gateway.url + "/diagnose", payload, headers={DEADLINE_HEADER: "20"}
            )
            assert status == 504
            assert body["error_type"] == "DeadlineExceededError"

            # Zero diagnosis work happened: the refusal is pre-admission, so
            # no engine request, no extraction, no service diagnosis moved.
            after = pool.metrics_snapshot()["aggregate_counters"]
            for name in (
                "engine.requests_total",
                "engine.cases_extracted_total",
                "service.diagnoses_total",
            ):
                assert after.get(name, 0) == before.get(name, 0), name
            gateway_counters = gateway.metrics.as_dict()
            assert gateway_counters["gateway.deadline_rejected_total"]["value"] >= 1
        finally:
            gateway.shutdown()
            pool.shutdown()

    def test_remote_client_deadline_maps_to_typed_exception(
        self, registry_dir, tiny_splits
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = DiagnosisRequest(model="tiny", inputs=inputs, labels=labels)
        client = RemoteDiagnoser(
            gateway.url, config=DiagnoserConfig(deadline_seconds=0.02)
        )
        try:
            configure_chaos({
                "plans": [{
                    "site": "gateway.read_body",
                    "mode": "delay",
                    "delay_seconds": 0.15,
                }],
            })
            with pytest.raises(DeadlineExceededError):
                client.diagnose(request)
        finally:
            client.close()
            gateway.shutdown()
            pool.shutdown()

    def test_generous_deadline_passes_through_untouched(self, registry_dir, payload):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        try:
            status, body = _post(
                gateway.url + "/diagnose", payload, headers={DEADLINE_HEADER: "60000"}
            )
            assert status == 200 and body["num_cases"] > 0
        finally:
            gateway.shutdown()
            pool.shutdown()


class TestChaosControlEndpoint:
    def test_runtime_arm_observe_and_disarm_over_loopback(
        self, registry_dir, payload
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        try:
            spec = {
                "seed": 3,
                "plans": [{
                    "site": "replica.dispatch",
                    "mode": "error",
                    "max_injections": 1,
                }],
            }
            status, stats = _post(gateway.url + "/debug/chaos", spec)
            assert status == 200
            assert stats["enabled"] is True and stats["seed"] == 3
            assert stats["plans"][0]["site"] == "replica.dispatch"

            status, body = _post(gateway.url + "/diagnose", payload)
            assert status == 400

            status, stats = _get(gateway.url + "/debug/chaos")
            assert stats["plans"][0]["fired"] == 1

            status, stats = _post(gateway.url + "/debug/chaos", {"enabled": False})
            assert status == 200 and stats["enabled"] is False
            status, body = _post(gateway.url + "/diagnose", payload)
            assert status == 200
        finally:
            gateway.shutdown()
            pool.shutdown()

    def test_bad_spec_is_rejected_not_armed(self, registry_dir):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        try:
            status, body = _post(
                gateway.url + "/debug/chaos",
                {"plans": [{"site": "no.such.site", "mode": "delay"}]},
            )
            assert status == 400
            assert not get_injector().enabled
        finally:
            gateway.shutdown()
            pool.shutdown()


class TestPoolShutdownDrain:
    def test_shutdown_waits_for_inflight_work_then_refuses_new(
        self, registry_dir, payload
    ):
        pool, gateway = _make_stack(registry_dir, num_replicas=1)
        try:
            status, _body = _post(gateway.url + "/diagnose", payload)
            assert status == 200
        finally:
            gateway.shutdown()
            remaining = pool.shutdown()
            assert remaining == 0  # nothing was in flight: a clean drain
        # After shutdown the pool refuses instead of queuing into closed engines.
        from repro.exceptions import ServeError

        with pytest.raises(ServeError, match="closed"):
            with pool.acquire():
                pass  # pragma: no cover - acquire must refuse
