"""Integration test of the Table I harness on a reduced-but-real workload.

The statistical headline claim (diagonal dominance in every row) is asserted
by the benchmark harness on the full `default` preset; this test keeps CI fast
by running a single LeNet row with the `quick` preset and checking that the
harness produces well-formed rows and that LeNet's diagnosis identifies the
injected UTD defect — the cheapest cell that still demonstrates the claim.
"""

import pytest

from repro.defects import DefectType
from repro.experiments import format_table1, preset, run_table1


@pytest.mark.slow
def test_lenet_utd_row_is_well_formed_on_quick_preset():
    result = run_table1(models=["lenet"], defects=["utd"], settings=preset("quick"))
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.model == "lenet"
    assert row.injected_defect is DefectType.UTD
    assert sum(row.ratios.values()) == pytest.approx(1.0)
    assert row.num_faulty_cases > 0
    rendered = format_table1(result)
    assert "lenet" in rendered
    # The headline diagonal-dominance claim is evaluated at benchmark scale
    # (benchmarks/ + EXPERIMENTS.md); at the reduced quick/CI scale we assert
    # the weaker, stable part of the shape: injecting label noise must produce
    # more UTD evidence than ITD evidence.
    assert row.ratios[DefectType.UTD] > row.ratios[DefectType.ITD]


@pytest.mark.slow
def test_table1_result_serializes():
    result = run_table1(models=["lenet"], defects=["sd"], settings=preset("smoke"))
    payload = result.as_dict()
    assert "rows" in payload and len(payload["rows"]) == 1
    assert 0.0 <= payload["diagonal_accuracy"] <= 1.0
