"""Integration tests: the full DeepMorph pipeline on miniature defect scenarios.

These tests exercise the same code path as the Table I benchmarks (train →
inject → diagnose) on the ``smoke`` preset, asserting structural invariants
(ratios sum to one, reports carry metadata, every defect can be processed end
to end) rather than the statistical headline claim, which needs the larger
benchmark workloads to be stable.
"""

import numpy as np
import pytest

from repro.core import DeepMorph, find_faulty_cases
from repro.defects import DefectType, InsufficientTrainingData, UnreliableTrainingData
from repro.experiments import preset, run_cell
from repro.optim import Adam
from repro.training import Trainer, evaluate
from tests.conftest import make_tiny_generator, make_tiny_model


SMOKE = preset("smoke")


class TestRunCellSmoke:
    @pytest.mark.parametrize("defect", ["itd", "utd", "sd"])
    def test_run_cell_produces_complete_result(self, defect):
        cell = run_cell(defect, SMOKE)
        assert cell.injected_defect is DefectType.from_string(defect)
        assert 0.0 <= cell.test_accuracy <= 1.0
        assert cell.num_faulty_cases >= 0
        if cell.report is not None:
            ratios = cell.ratios()
            assert set(ratios) == {"itd", "utd", "sd"}
            assert sum(ratios.values()) == pytest.approx(1.0)
            assert cell.report.metadata["injected_defect"] == defect
        payload = cell.as_dict()
        assert payload["model"] == SMOKE.model
        assert payload["injected_defect"] == defect

    def test_clean_cell_runs_without_injection(self):
        cell = run_cell(DefectType.NONE, SMOKE)
        assert cell.injected_defect is DefectType.NONE
        assert cell.injection_description == "no injected defect"

    def test_run_cell_is_reproducible(self):
        a = run_cell("utd", SMOKE)
        b = run_cell("utd", SMOKE)
        assert a.test_accuracy == pytest.approx(b.test_accuracy)
        assert a.num_faulty_cases == b.num_faulty_cases
        if a.report is not None and b.report is not None:
            for defect in a.report.ratios:
                assert a.report.ratios[defect] == pytest.approx(b.report.ratios[defect])

    def test_collect_specifics_attaches_per_case_features(self):
        cell = run_cell("utd", SMOKE, collect_specifics=True)
        if cell.report is not None:
            assert len(cell.extras["specifics"]) == cell.report.num_cases
            assert cell.extras["context"] is not None


class TestManualPipeline:
    """The pipeline assembled by hand from its pieces (as a user would)."""

    def test_utd_scenario_diagnosis_contains_all_steps(self):
        generator = make_tiny_generator(seed=9)
        train, production = generator.splits(25, 12, rng=3)
        corrupted, injection = UnreliableTrainingData(
            source_class=0, target_class=2, fraction=0.5
        ).apply(train, rng=4)
        assert injection.relabeled_count > 0

        model = make_tiny_model(seed=11)
        Trainer(model, Adam(model.parameters(), lr=0.02), rng=5).fit(
            corrupted, epochs=6, batch_size=16
        )
        _, accuracy = evaluate(model, production)
        assert accuracy > 0.3  # the model must have learned something

        morph = DeepMorph(probe_epochs=4, rng=6)
        morph.fit(model, corrupted)
        report = morph.diagnose_dataset(production, metadata={"scenario": "utd"})
        assert report.num_cases > 0
        assert sum(report.ratios.values()) == pytest.approx(1.0)
        assert report.context.error_concentration >= 0.0
        # Per-case verdicts cover exactly the diagnosed cases.
        assert len(report.verdicts) == report.num_cases

    def test_itd_scenario_flags_affected_class_errors(self):
        generator = make_tiny_generator(seed=13)
        train, production = generator.splits(25, 12, rng=1)
        starved, injection = InsufficientTrainingData(
            affected_classes=[1], keep_fraction=0.08
        ).apply(train, rng=2)
        assert injection.removed_per_class[1] > 0

        model = make_tiny_model(seed=17)
        Trainer(model, Adam(model.parameters(), lr=0.02), rng=3).fit(
            starved, epochs=6, batch_size=16
        )
        faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production)
        if faulty_labels.size == 0:
            pytest.skip("tiny model made no production errors")

        morph = DeepMorph(probe_epochs=4, rng=4)
        morph.fit(model, starved)
        report = morph.diagnose(faulty_inputs, faulty_labels)
        assert report.num_cases == int(np.sum(model.predict(faulty_inputs) != faulty_labels))
        assert report.dominant_defect in (DefectType.ITD, DefectType.UTD, DefectType.SD)
