"""End-to-end observability tests: one request, one connected span tree.

The acceptance bar of the tracing PR: a diagnosis request through any
``repro.api`` backend must produce a single connected trace — client facade
spans down through gateway dispatch, replica routing, batching, extraction,
and the diagnosis kernels — carrying one request id from the client's
context to the server's response header.  And with tracing disabled (the
default), the stack must behave bitwise-identically to the untraced seed.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro import obs
from repro.api import DiagnoserConfig, LocalDiagnoser, RemoteDiagnoser, ServiceDiagnoser
from repro.serve import ArtifactRegistry, DiagnosisGateway, ReplicaPool


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, fitted_deepmorph):
    root = tmp_path_factory.mktemp("obs_registry")
    ArtifactRegistry(root).register("tiny", fitted_deepmorph, metadata={"suite": "obs"})
    return root


@pytest.fixture(scope="module")
def pool(registry_dir):
    pool = ReplicaPool.from_registry(
        registry_dir, num_replicas=1, batch_wait_seconds=0.001, num_workers=1
    )
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def gateway(pool):
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
    yield gateway
    gateway.shutdown()


@pytest.fixture
def traced(tmp_path, gateway):
    """Tracing on with memory + JSONL + the gateway's metrics registry."""
    path = str(tmp_path / "spans.jsonl")
    tracer = obs.configure(
        enabled=True, jsonl_path=path, metrics=gateway.metrics, reset=True
    )
    yield tracer, path
    obs.configure(enabled=False, reset=True)


@pytest.fixture(scope="module")
def tiny_payload(tiny_splits):
    _, test = tiny_splits
    inputs, labels = test.arrays()
    return inputs, labels


def _spans_from(path, timeout=5.0):
    """Read the JSONL trace, waiting for the tree to close.

    The server root span finishes *after* the response bytes reach the
    client, so the export can trail the client's return by a scheduling
    beat; poll until every parent resolves (or the timeout trips and the
    caller's assertions report what is missing).
    """
    deadline = time.monotonic() + timeout
    while True:
        obs.get_tracer().flush()
        spans = obs.load_jsonl(path)
        span_ids = {span["span_id"] for span in spans}
        complete = spans and all(
            span["parent_id"] is None or span["parent_id"] in span_ids for span in spans
        )
        if complete or time.monotonic() > deadline:
            return spans
        time.sleep(0.01)


def _assert_connected(spans):
    """Every span links to the one trace; parents resolve within the file."""
    trace_ids = {span["trace_id"] for span in spans}
    assert len(trace_ids) == 1, f"expected one trace, got {trace_ids}"
    span_ids = {span["span_id"] for span in spans}
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1, f"expected one root, got {[s['name'] for s in roots]}"
    for span in spans:
        if span["parent_id"] is not None:
            assert span["parent_id"] in span_ids, f"dangling parent on {span['name']}"
    return roots[0]


class TestRemoteBackendTrace:
    def test_client_and_server_stitch_into_one_trace(self, gateway, traced, tiny_payload):
        _, path = traced
        inputs, labels = tiny_payload
        client = RemoteDiagnoser(gateway.url, default_model="tiny")
        try:
            report = client.diagnose_arrays(inputs.tolist(), labels.tolist())
        finally:
            client.close()

        spans = _spans_from(path)
        root = _assert_connected(spans)
        names = {span["name"] for span in spans}

        # Client side: facade root and the HTTP round trip.
        assert root["name"] == "diagnoser.request"
        assert root["attributes"]["backend"] == "RemoteDiagnoser"
        assert "remote.roundtrip" in names

        # Server side, same trace: gateway stages through to the kernels.
        for stage in (
            "gateway.request",
            "gateway.dispatch",
            "replicas.route",
            "batching.batch",
            "extract.coalesced",
            "service.diagnose",
            "service.footprints",
            "service.classify",
        ):
            assert stage in names, f"missing stage {stage} in {sorted(names)}"

        # The server root is parented under the client's round-trip span.
        roundtrip = next(s for s in spans if s["name"] == "remote.roundtrip")
        server_root = next(s for s in spans if s["name"] == "gateway.request")
        assert server_root["parent_id"] == roundtrip["span_id"]
        assert server_root["kind"] == "request"

        # One request id, client to server to report.
        request_id = root["attributes"]["request_id"]
        assert report.request_id == request_id
        stamped = [s for s in spans if s["attributes"].get("request_id")]
        assert {s["attributes"]["request_id"] for s in stamped} == {request_id}
        assert server_root["attributes"]["request_id"] == request_id


class TestServiceBackendTrace:
    def test_in_process_backend_traces_the_kernels(self, registry_dir, traced, tiny_payload):
        _, path = traced
        inputs, labels = tiny_payload
        config = DiagnoserConfig(batch_wait_seconds=0.001, num_workers=1)
        with ServiceDiagnoser.from_registry(registry_dir, config=config) as diagnoser:
            report = diagnoser.diagnose_arrays(inputs, labels, model="tiny")

        spans = _spans_from(path)
        root = _assert_connected(spans)
        names = {span["name"] for span in spans}
        assert root["name"] == "diagnoser.request"
        assert root["attributes"]["backend"] == "ServiceDiagnoser"
        for stage in ("service.diagnose", "batching.batch", "extract.coalesced",
                      "service.footprints", "service.specifics", "service.classify"):
            assert stage in names
        # The batching engine's drain thread re-parents into the request's
        # trace via the captured SpanContext.
        batch = next(s for s in spans if s["name"] == "batching.batch")
        assert batch["trace_id"] == root["trace_id"]
        assert report.request_id == root["attributes"]["request_id"]


class TestLocalBackendTrace:
    def test_local_backend_traces_under_the_facade_root(
        self, registry_dir, traced, tiny_payload
    ):
        _, path = traced
        inputs, labels = tiny_payload
        diagnoser = LocalDiagnoser.from_registry(registry_dir, "tiny")
        report = diagnoser.diagnose_arrays(inputs, labels)

        spans = _spans_from(path)
        root = _assert_connected(spans)
        assert root["name"] == "diagnoser.request"
        assert root["attributes"]["backend"] == "LocalDiagnoser"
        assert report.request_id == root["attributes"]["request_id"]


class TestDisabledTracingParity:
    def test_reports_identical_before_and_after_a_traced_run(
        self, registry_dir, tmp_path, tiny_payload
    ):
        inputs, labels = tiny_payload
        diagnoser = LocalDiagnoser.from_registry(registry_dir, "tiny")

        untraced_before = diagnoser.diagnose_arrays(inputs, labels).to_dict()

        obs.configure(enabled=True, jsonl_path=str(tmp_path / "t.jsonl"), reset=True)
        try:
            traced_report = diagnoser.diagnose_arrays(inputs, labels).to_dict()
        finally:
            obs.configure(enabled=False, reset=True)

        untraced_after = diagnoser.diagnose_arrays(inputs, labels).to_dict()

        # Disabled tracing is the seed behavior, bit for bit.
        assert untraced_before == untraced_after
        assert "request_id" not in untraced_before["metadata"]

        # A traced run differs only by the request id it carries.
        traced_metadata = dict(traced_report["metadata"])
        assert traced_metadata.pop("request_id")
        traced_report["metadata"] = traced_metadata
        assert traced_report == untraced_before


class TestGatewayOperationalSurface:
    def _request(self, url, payload=None, headers=None):
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(url, data=body, headers=dict(headers or {}))
        if body is not None:
            request.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()

    def test_client_request_id_echoed_and_visible_in_debug_traces(
        self, gateway, traced, tiny_payload
    ):
        inputs, labels = tiny_payload
        payload = {"model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist()}
        status, headers, _ = self._request(
            gateway.url + "/diagnose", payload, {"X-Request-ID": "itest-123"}
        )
        assert status == 200
        assert headers["X-Request-ID"] == "itest-123"

        _, _, body = self._request(gateway.url + "/debug/traces")
        debug = json.loads(body)
        assert debug["enabled"] is True
        assert any(t["request_id"] == "itest-123" for t in debug["recent"])

    def test_healthz(self, gateway, traced):
        status, _, body = self._request(gateway.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["tracing"] is True
        assert payload["replicas"] >= 1

    def test_metrics_text_exposition_includes_span_histograms(
        self, gateway, traced, tiny_payload
    ):
        inputs, labels = tiny_payload
        payload = {"model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist()}
        self._request(gateway.url + "/diagnose", payload)

        status, headers, body = self._request(gateway.url + "/metrics?format=text")
        text = body.decode("utf-8")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE" in text
        assert 'component="gateway"' in text
        assert 'component="pool"' in text
        # Span-derived per-stage histograms land in the same scrape document.
        assert "trace_gateway_request_seconds_bucket" in text

        # JSON stays the default for existing dashboards.
        _, json_headers, json_body = self._request(gateway.url + "/metrics")
        assert json_headers["Content-Type"].startswith("application/json")
        assert "gateway" in json.loads(json_body)
