"""End-to-end gateway test: fit → register → async HTTP diagnose → parity.

Mirrors ``test_serve_http.py`` for the asyncio gateway, then goes further:
the gateway must agree with the legacy threading server *and* the direct
``DeepMorph.diagnose_dataset`` call, survive the documented error paths
(malformed JSON, oversized body, unknown model/version, saturation), and
publish a well-formed ``/metrics`` document.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    ArtifactRegistry,
    DiagnosisGateway,
    DiagnosisHTTPServer,
    DiagnosisService,
    ReplicaPool,
)


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory, fitted_deepmorph):
    root = tmp_path_factory.mktemp("gateway_registry")
    registry = ArtifactRegistry(root)
    registry.register("tiny", fitted_deepmorph, metadata={"suite": "gateway"})
    return root


@pytest.fixture(scope="module")
def pool(registry_dir):
    pool = ReplicaPool.from_registry(
        registry_dir,
        num_replicas=2,
        max_queue_per_replica=8,
        batch_wait_seconds=0.001,
        num_workers=1,
    )
    yield pool
    pool.close()


@pytest.fixture(scope="module")
def gateway(pool):
    # The response cache is disabled so every request in these tests reaches
    # the replicas; TestGatewayResponseCache covers the cached path.
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=0).start()
    yield gateway
    gateway.shutdown()


def _post(url: str, payload, timeout: float = 60) -> dict:
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read())


class TestGatewayDiagnosis:
    def test_matches_direct_and_threading_server(
        self, gateway, registry_dir, fitted_deepmorph, tiny_splits
    ):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        payload = {"model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist()}

        via_gateway = _post(gateway.url + "/diagnose", payload)

        service = DiagnosisService(registry_dir, batch_wait_seconds=0.001, num_workers=1)
        server = DiagnosisHTTPServer(service, port=0).start()
        try:
            via_threads = _post(server.url + "/diagnose", payload)
        finally:
            server.shutdown()
            service.close()

        # Bitwise-identical payloads: same artifact, same batch composition,
        # same extraction pipeline — the front end must not change the answer.
        assert via_gateway == via_threads

        direct = fitted_deepmorph.diagnose_dataset(test)
        assert via_gateway["num_cases"] == direct.num_cases
        for defect, ratio in direct.ratios.items():
            assert via_gateway["ratios"][defect.value] == pytest.approx(ratio, abs=1e-9)
        assert via_gateway["dominant_defect"] == direct.dominant_defect.value

    def test_pinned_version_and_repeat_requests(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        payload = {
            "model": "tiny",
            "version": "v1",
            "inputs": inputs.tolist(),
            "labels": labels.tolist(),
        }
        first = _post(gateway.url + "/diagnose", payload)
        second = _post(gateway.url + "/diagnose", payload)
        assert first["ratios"] == second["ratios"]
        assert first["metadata"]["version"] == "v1"

    def test_async_job_roundtrip(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        submitted = _post(gateway.url + "/jobs", {
            "model": "tiny",
            "inputs": inputs.tolist(),
            "labels": labels.tolist(),
        })
        assert submitted["status"] == "pending"
        assert submitted["replica"] in (0, 1)
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 30
        job = {}
        while time.monotonic() < deadline:
            job = _get(f"{gateway.url}/jobs/{job_id}")
            if job["status"] in ("succeeded", "failed"):
                break
            time.sleep(0.02)
        assert job["status"] == "succeeded", job.get("error")
        assert job["result"]["num_cases"] >= 1
        listed = _get(gateway.url + "/jobs")["jobs"]
        assert any(record["job_id"] == job_id for record in listed)


class TestGatewayErrorPaths:
    def test_malformed_json_is_400(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(gateway.url + "/diagnose", b"{this is not json")
        assert excinfo.value.code == 400

    def test_missing_fields_and_empty_batch_are_400(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(gateway.url + "/diagnose", {"model": "tiny"})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(gateway.url + "/diagnose", {"model": "tiny", "inputs": [], "labels": []})
        assert excinfo.value.code == 400

    def test_unknown_model_and_version_are_404(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(gateway.url + "/diagnose", {
                "model": "ghost", "inputs": inputs.tolist(), "labels": labels.tolist(),
            })
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(gateway.url + "/diagnose", {
                "model": "tiny", "version": "v99",
                "inputs": inputs.tolist(), "labels": labels.tolist(),
            })
        assert excinfo.value.code == 404

    def test_unknown_path_and_method(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(gateway.url + "/nope")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(gateway.url + "/health", {"x": 1})
        assert excinfo.value.code == 404

    def test_oversized_body_is_413(self, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        small = DiagnosisGateway(pool, port=0, max_body_bytes=64).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(small.url + "/diagnose", {
                    "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
                })
            assert excinfo.value.code == 413
            # Unified error mapping: the payload names the typed error.
            document = json.loads(excinfo.value.read())
            assert document["error_type"] == "PayloadTooLargeError"
            assert "request_id" in document
        finally:
            small.shutdown()

    def test_saturated_pool_sheds_503_with_retry_after(self, gateway, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        leases = [pool.acquire() for _ in range(pool.max_inflight)]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(gateway.url + "/diagnose", {
                    "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
                })
            assert excinfo.value.code == 503
            assert int(excinfo.value.headers["Retry-After"]) >= 1
        finally:
            for lease in leases:
                lease.release()
        # Capacity released: the same request is admitted again.
        report = _post(gateway.url + "/diagnose", {
            "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
        })
        assert report["num_cases"] >= 1


class TestGatewayIntrospection:
    def test_health_models_stats(self, gateway):
        health = _get(gateway.url + "/health")
        assert health["status"] == "ok"
        assert "tiny" in health["models"]
        models = _get(gateway.url + "/models")["models"]
        assert any(m["name"] == "tiny" and m["version"] == "v1" for m in models)
        stats = _get(gateway.url + "/stats")
        assert stats["pool"]["num_replicas"] == 2
        assert len(stats["pool"]["inflight_per_replica"]) == 2
        assert stats["gateway"]["requests_total"] >= 1

    def test_metrics_schema(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        _post(gateway.url + "/diagnose", {
            "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
        })
        metrics = _get(gateway.url + "/metrics")
        assert set(metrics) == {"gateway", "pool", "replicas", "aggregate_counters"}
        assert len(metrics["replicas"]) == 2

        for snapshot in [metrics["gateway"], metrics["pool"], *metrics["replicas"]]:
            for name, record in snapshot.items():
                assert record["type"] in ("counter", "gauge", "histogram"), name
                if record["type"] == "histogram":
                    assert set(record) >= {"count", "sum", "buckets"}
                    counts = list(record["buckets"].values())
                    assert counts == sorted(counts)  # cumulative
                else:
                    assert "value" in record

        gw = metrics["gateway"]
        assert gw["gateway.requests_total"]["value"] >= 1
        assert gw["gateway.request_seconds"]["count"] >= 1
        aggregate = metrics["aggregate_counters"]
        assert aggregate["service.diagnoses_total"] >= 1
        assert aggregate["engine.requests_total"] >= 1

    def test_metrics_count_sheds(self, gateway, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        before = _get(gateway.url + "/metrics")
        leases = [pool.acquire() for _ in range(pool.max_inflight)]
        try:
            with pytest.raises(urllib.error.HTTPError):
                _post(gateway.url + "/diagnose", {
                    "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
                })
        finally:
            for lease in leases:
                lease.release()
        after = _get(gateway.url + "/metrics")
        assert (
            after["gateway"]["gateway.shed_total"]["value"]
            == before["gateway"]["gateway.shed_total"]["value"] + 1
        )
        assert (
            after["pool"]["pool.shed_total"]["value"]
            == before["pool"]["pool.shed_total"]["value"] + 1
        )


class TestGatewayResponseCache:
    def test_repeat_body_hits_and_is_bitwise_identical(self, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        payload = json.dumps({
            "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
        }).encode("utf-8")
        gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
        try:
            def post_raw(body):
                request = urllib.request.Request(
                    gateway.url + "/diagnose", data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    return response.read(), response.headers.get("X-Response-Cache")

            first, first_state = post_raw(payload)
            second, second_state = post_raw(payload)
            assert first_state == "miss"
            assert second_state == "hit"
            assert first == second  # bitwise-identical response bytes
            stats = _get(gateway.url + "/stats")["gateway"]["response_cache"]
            assert stats["hits"] == 1
            assert stats["misses"] == 1
        finally:
            gateway.shutdown()

    def test_cached_response_served_even_when_pool_is_saturated(self, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        payload = json.dumps({
            "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
            "metadata": {"probe": "saturation-cache"},
        }).encode("utf-8")
        gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
        try:
            request = urllib.request.Request(
                gateway.url + "/diagnose", data=payload,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                warm = response.read()
            leases = [pool.acquire() for _ in range(pool.max_inflight)]
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    assert response.read() == warm
                    assert response.headers.get("X-Response-Cache") == "hit"
            finally:
                for lease in leases:
                    lease.release()
        finally:
            gateway.shutdown()

    def test_disabled_cache_reports_off(self, gateway, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        request = urllib.request.Request(
            gateway.url + "/diagnose",
            data=json.dumps({
                "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
            }).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            response.read()
            assert response.headers.get("X-Response-Cache") == "off"

    def test_expired_entry_is_a_miss(self, pool, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        payload = json.dumps({
            "model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist(),
            "metadata": {"probe": "ttl"},
        }).encode("utf-8")
        gateway = DiagnosisGateway(
            pool, port=0, response_cache_size=64, response_cache_ttl=0.0
        ).start()
        try:
            def post_state(body):
                request = urllib.request.Request(
                    gateway.url + "/diagnose", data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    response.read()
                    return response.headers.get("X-Response-Cache")

            assert post_state(payload) == "miss"
            assert post_state(payload) == "miss"  # ttl=0: instantly stale
        finally:
            gateway.shutdown()


class TestGatewayWireNegotiation:
    """Content-Type/Accept negotiation on the async front end."""

    @pytest.fixture(scope="class")
    def payload(self, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        return {"model": "tiny", "inputs": inputs.tolist(), "labels": labels.tolist()}

    @staticmethod
    def _exchange(url, body, headers, timeout=60):
        request = urllib.request.Request(url, data=body, headers=headers)
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.read(), dict(response.headers)

    def test_binary_round_trip_matches_json(self, gateway, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        binary = BinaryCodec()
        frame = binary.encode_request(DiagnosisRequest.from_dict(dict(payload)))
        body, headers = self._exchange(
            gateway.url + "/diagnose",
            frame,
            {"Content-Type": binary.content_type, "Accept": binary.content_type},
        )
        assert headers["Content-Type"] == binary.content_type
        via_binary = binary.decode_report(body)
        via_json = _post(gateway.url + "/diagnose", payload)
        assert via_binary.to_dict() == via_json

    def test_response_codec_follows_accept_not_request_codec(self, gateway, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        frame = BinaryCodec().encode_request(DiagnosisRequest.from_dict(dict(payload)))
        # Binary in, JSON out (explicit Accept).
        body, headers = self._exchange(
            gateway.url + "/diagnose",
            frame,
            {"Content-Type": "application/x-repro-binary", "Accept": "application/json"},
        )
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body)["num_cases"] >= 1
        # Binary in, no Accept: the server default (JSON) answers.
        body, headers = self._exchange(
            gateway.url + "/diagnose", frame,
            {"Content-Type": "application/x-repro-binary"},
        )
        assert headers["Content-Type"] == "application/json"

    def test_unknown_content_type_is_415(self, gateway, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._exchange(
                gateway.url + "/diagnose",
                json.dumps(payload).encode(),
                {"Content-Type": "text/csv"},
            )
        assert excinfo.value.code == 415
        document = json.loads(excinfo.value.read())
        assert document["error_type"] == "UnsupportedMediaTypeError"
        assert "request_id" in document

    def test_unsatisfiable_accept_is_415(self, gateway, payload):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._exchange(
                gateway.url + "/diagnose",
                json.dumps(payload).encode(),
                {"Content-Type": "application/json", "Accept": "text/html"},
            )
        assert excinfo.value.code == 415

    def test_malformed_binary_frame_is_400_and_errors_stay_json(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._exchange(
                gateway.url + "/diagnose",
                b"RPWB garbage that is not a frame",
                {
                    "Content-Type": "application/x-repro-binary",
                    "Accept": "application/x-repro-binary",
                },
            )
        assert excinfo.value.code == 400
        # Error responses are always JSON, even for binary-speaking clients.
        assert excinfo.value.headers["Content-Type"] == "application/json"
        document = json.loads(excinfo.value.read())
        assert document["error_type"] == "CodecError"

    def test_binary_jobs_submission(self, gateway, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        frame = BinaryCodec().encode_request(DiagnosisRequest.from_dict(dict(payload)))
        body, headers = self._exchange(
            gateway.url + "/jobs", frame,
            {"Content-Type": "application/x-repro-binary"},
        )
        ticket = json.loads(body)  # tickets are JSON documents
        assert ticket["status"] == "pending"

    def test_cache_hit_across_codecs_over_http(self, pool, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        binary = BinaryCodec()
        document = dict(payload, metadata={"probe": "http-cross-codec"})
        frame = binary.encode_request(DiagnosisRequest.from_dict(dict(document)))
        gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
        try:
            request = urllib.request.Request(
                gateway.url + "/diagnose",
                data=json.dumps(document).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                warm = response.read()
                assert response.headers["X-Response-Cache"] == "miss"

            # Same decoded request over the binary codec: canonical-level hit.
            first, headers = self._exchange(
                gateway.url + "/diagnose", frame,
                {"Content-Type": binary.content_type, "Accept": binary.content_type},
            )
            assert headers["X-Response-Cache"] == "hit"
            assert binary.decode_report(first).to_dict() == json.loads(warm)

            # Byte-identical binary repeat: fast path, bitwise-identical bytes.
            second, headers = self._exchange(
                gateway.url + "/diagnose", frame,
                {"Content-Type": binary.content_type, "Accept": binary.content_type},
            )
            assert headers["X-Response-Cache"] == "hit"
            assert second == first
        finally:
            gateway.shutdown()

    def test_request_id_header_echoed_for_binary_requests(self, gateway, payload):
        from repro.api import DiagnosisRequest
        from repro.wire import BinaryCodec

        frame = BinaryCodec().encode_request(DiagnosisRequest.from_dict(dict(payload)))
        _, headers = self._exchange(
            gateway.url + "/diagnose", frame,
            {
                "Content-Type": "application/x-repro-binary",
                "X-Request-ID": "wire-echo-1",
            },
        )
        assert headers["X-Request-ID"] == "wire-echo-1"


class TestThreadingServerHardening:
    """The legacy front end's new limits (the bugfix satellite)."""

    def test_oversized_body_is_413_and_next_request_succeeds(self, registry_dir):
        service = DiagnosisService(registry_dir, batch_wait_seconds=0.001, num_workers=1)
        server = DiagnosisHTTPServer(service, port=0, max_body_bytes=64).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(server.url + "/diagnose", {"model": "tiny", "inputs": [[0.0] * 64]})
            assert excinfo.value.code == 413
            assert _get(server.url + "/health")["status"] == "ok"
        finally:
            server.shutdown()
            service.close()

    def test_metrics_endpoint_on_threading_server(self, registry_dir):
        service = DiagnosisService(registry_dir, batch_wait_seconds=0.001, num_workers=1)
        server = DiagnosisHTTPServer(service, port=0).start()
        try:
            metrics = _get(server.url + "/metrics")["service"]
            assert "service.diagnoses_total" in metrics
            assert metrics["service.diagnoses_total"]["type"] == "counter"
        finally:
            server.shutdown()
            service.close()

    def test_handler_timeout_and_body_cap_configured(self, registry_dir):
        service = DiagnosisService(registry_dir, batch_wait_seconds=0.001, num_workers=1)
        server = DiagnosisHTTPServer(
            service, port=0, socket_timeout=7.5, max_body_bytes=123
        ).start()
        try:
            assert server._server.daemon_threads is True
            assert server._server.max_body_bytes == 123
            assert server._server.RequestHandlerClass.timeout == 7.5
        finally:
            server.shutdown()
            service.close()
