"""Property-based tests: ``partial_fit`` over shards == one ``fit`` (1e-12).

The incremental-update contract of PR 10: folding a dataset into a
:class:`~repro.core.patterns.PatternLibrary` shard by shard — any shard
boundaries, any shard count, empty shards included — produces the same
library as one ``fit`` over the concatenated data, to within 1e-12 on every
statistic.

The comparison runs at the arrays level (``partial_fit_arrays``), where the
pin holds for **both** inference-dtype policies: probe trajectories are
float64 at the extraction API boundary regardless of the backbone's compute
dtype, so sharding the *statistics* is exact.  Sharding the *extraction* is
only exact under a float64 policy (float32 forward passes are deterministic
per batch composition, not per row — see the ``partial_fit`` docstring); the
dataset-level test therefore pins a float64-policy library.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.footprint import FootprintExtractor
from repro.core.instrument import SoftmaxInstrumentedModel
from repro.core.patterns import PatternLibrary

TOLERANCE = 1e-12

#: Each example refits a library several times; keep the run bounded.
EXAMPLE_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------- fixtures


@pytest.fixture(scope="module")
def float32_setup(fitted_deepmorph, tiny_splits):
    """(instrumented, trajectories, final_probs, labels) — float32 policy."""
    train, _ = tiny_splits
    instrumented = fitted_deepmorph.instrumented
    inputs, labels = train.arrays()
    extractor = FootprintExtractor(instrumented)
    trajectories, final_probs = extractor.extract_arrays(inputs)
    return instrumented, trajectories, final_probs, np.asarray(labels)


@pytest.fixture(scope="module")
def float64_setup(trained_tiny_model, tiny_splits):
    """Same arrays under an explicit float64 inference policy."""
    train, _ = tiny_splits
    instrumented = SoftmaxInstrumentedModel(
        trained_tiny_model, probe_epochs=2, inference_dtype="float64", rng=7
    ).fit(train)
    inputs, labels = train.arrays()
    extractor = FootprintExtractor(instrumented)
    trajectories, final_probs = extractor.extract_arrays(inputs)
    return instrumented, trajectories, final_probs, np.asarray(labels)


# ---------------------------------------------------------------- helpers


def _sharded_library(instrumented, trajectories, final_probs, labels, boundaries):
    """A fresh library built through ``partial_fit_arrays`` over the shards."""
    library = PatternLibrary(instrumented)
    for chunk_traj, chunk_final, chunk_labels in zip(
        np.split(trajectories, boundaries),
        np.split(final_probs, boundaries),
        np.split(labels, boundaries),
    ):
        library.partial_fit_arrays(chunk_traj, chunk_final, chunk_labels)
    return library


def _one_shot_library(instrumented, trajectories, final_probs, labels):
    library = PatternLibrary(instrumented)
    library.partial_fit_arrays(trajectories, final_probs, labels)
    return library


def assert_libraries_match(actual: PatternLibrary, expected: PatternLibrary) -> None:
    """Every fitted statistic agrees to TOLERANCE (supports exactly)."""
    assert actual.is_fitted and expected.is_fitted
    assert sorted(actual.patterns) == sorted(expected.patterns)
    for class_id, reference in expected.patterns.items():
        pattern = actual.patterns[class_id]
        assert pattern.support == reference.support
        np.testing.assert_allclose(
            pattern.mean_trajectory, reference.mean_trajectory, rtol=0, atol=TOLERANCE
        )
        np.testing.assert_allclose(
            pattern.mean_confidence, reference.mean_confidence, rtol=0, atol=TOLERANCE
        )
        assert pattern.dispersion == pytest.approx(reference.dispersion, abs=TOLERANCE)
        assert pattern.mean_final_confidence == pytest.approx(
            reference.mean_final_confidence, abs=TOLERANCE
        )
        assert pattern.mean_entropy == pytest.approx(
            reference.mean_entropy, abs=TOLERANCE
        )
        assert pattern.member_nn_scale == pytest.approx(
            reference.member_nn_scale, abs=TOLERANCE
        )
    assert actual.global_mean_entropy == pytest.approx(
        expected.global_mean_entropy, abs=TOLERANCE
    )
    assert actual.global_mean_dispersion == pytest.approx(
        expected.global_mean_dispersion, abs=TOLERANCE
    )
    assert actual._training_inconsistency == pytest.approx(
        expected._training_inconsistency, abs=TOLERANCE
    )


def assert_batch_kernels_match(
    actual: PatternLibrary, expected: PatternLibrary, stack: np.ndarray
) -> None:
    """The PR-3 batched kernel sees the same library (drift scoring parity)."""
    ours, reference = actual.batch_pattern_matches(stack), expected.batch_pattern_matches(stack)
    assert ours.class_ids.tolist() == reference.class_ids.tolist()
    np.testing.assert_allclose(
        ours.similarities, reference.similarities, rtol=0, atol=TOLERANCE
    )
    np.testing.assert_allclose(
        ours.divergences, reference.divergences, rtol=0, atol=TOLERANCE
    )
    np.testing.assert_allclose(
        ours.dispersions, reference.dispersions, rtol=0, atol=TOLERANCE
    )


def boundaries_strategy(n: int):
    """Arbitrary shard boundaries over ``n`` rows — empty shards included."""
    return st.lists(st.integers(min_value=0, max_value=n), min_size=0, max_size=6).map(sorted)


# ---------------------------------------------------------------- properties


class TestShardEquivalenceFloat32Policy:
    @EXAMPLE_SETTINGS
    @given(data=st.data())
    def test_arbitrary_shard_splits_match_one_shot(self, float32_setup, data):
        instrumented, trajectories, final_probs, labels = float32_setup
        boundaries = data.draw(boundaries_strategy(labels.shape[0]))
        expected = _one_shot_library(instrumented, trajectories, final_probs, labels)
        actual = _sharded_library(
            instrumented, trajectories, final_probs, labels, boundaries
        )
        assert_libraries_match(actual, expected)
        assert_batch_kernels_match(actual, expected, trajectories[:8])

    def test_one_shot_arrays_match_full_fit(self, float32_setup, tiny_splits):
        """partial_fit_arrays over fit's own extraction == fit itself."""
        train, _ = tiny_splits
        instrumented, trajectories, final_probs, labels = float32_setup
        expected = PatternLibrary(instrumented).fit(train)
        actual = _one_shot_library(instrumented, trajectories, final_probs, labels)
        assert_libraries_match(actual, expected)


class TestShardEquivalenceFloat64Policy:
    @EXAMPLE_SETTINGS
    @given(data=st.data())
    def test_arbitrary_shard_splits_match_one_shot(self, float64_setup, data):
        instrumented, trajectories, final_probs, labels = float64_setup
        boundaries = data.draw(boundaries_strategy(labels.shape[0]))
        expected = _one_shot_library(instrumented, trajectories, final_probs, labels)
        actual = _sharded_library(
            instrumented, trajectories, final_probs, labels, boundaries
        )
        assert_libraries_match(actual, expected)

    def test_dataset_level_partial_fit_matches_fit(self, float64_setup, tiny_splits):
        """Under float64 inference, even sharding the *extraction* is exact."""
        train, _ = tiny_splits
        instrumented, _, _, _ = float64_setup
        expected = PatternLibrary(instrumented).fit(train)
        actual = PatternLibrary(instrumented)
        third = len(train) // 3
        import numpy as _np
        for shard in (train.select(_np.arange(0, third)),
                      train.select(_np.arange(third, third)),       # empty shard
                      train.select(_np.arange(third, 2 * third)),
                      train.select(_np.arange(2 * third, len(train)))):
            actual.partial_fit(shard)
        assert_libraries_match(actual, expected)


class TestEdgeCases:
    def test_single_class_shards(self, float32_setup):
        instrumented, trajectories, final_probs, labels = float32_setup
        mask = labels == labels[0]
        trajectories, final_probs, labels = (
            trajectories[mask], final_probs[mask], labels[mask]
        )
        expected = _one_shot_library(instrumented, trajectories, final_probs, labels)
        actual = _sharded_library(
            instrumented, trajectories, final_probs, labels,
            [labels.shape[0] // 3, labels.shape[0] // 2],
        )
        assert sorted(actual.patterns) == [int(labels[0])]
        assert_libraries_match(actual, expected)

    def test_empty_shard_is_a_noop(self, float32_setup):
        instrumented, trajectories, final_probs, labels = float32_setup
        library = _one_shot_library(instrumented, trajectories, final_probs, labels)
        before = {cid: p.support for cid, p in library.patterns.items()}
        library.partial_fit_arrays(
            trajectories[:0], final_probs[:0], labels[:0]
        )
        assert {cid: p.support for cid, p in library.patterns.items()} == before

    def test_out_of_range_labels_are_skipped_but_counted(self, float32_setup):
        instrumented, trajectories, final_probs, labels = float32_setup
        bad_labels = np.full_like(labels[:4], 99)
        library = _one_shot_library(instrumented, trajectories, final_probs, labels)
        library.partial_fit_arrays(trajectories[:4], final_probs[:4], bad_labels)
        assert 99 not in library.patterns

    def test_partial_fit_after_fit_extends_supports(self, float64_setup, tiny_splits):
        """Bootstrap path: a fit()-built library keeps absorbing shards."""
        train, test = tiny_splits
        instrumented, _, _, _ = float64_setup
        library = PatternLibrary(instrumented).fit(train)
        supports = {cid: p.support for cid, p in library.patterns.items()}
        library.partial_fit(test)
        assert library.is_fitted
        assert all(
            library.patterns[cid].support >= support
            for cid, support in supports.items()
        )
