"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import (
    js_divergence,
    js_similarity,
    kl_divergence,
    normalize_distribution,
    normalized_entropy,
    total_variation,
)
from repro.core.classifier import error_concentration
from repro.data import ArrayDataset
from repro.defects import InsufficientTrainingData, UnreliableTrainingData
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.rng import derive_seed, ensure_rng, spawn


finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


def logits_arrays(max_rows=6, max_cols=8):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.integers(2, max_cols)),
        elements=finite_floats,
    )


def distribution_pairs():
    """Two positive vectors of equal length (normalized inside the test)."""
    return st.integers(2, 10).flatmap(
        lambda k: st.tuples(
            hnp.arrays(np.float64, (k,), elements=st.floats(0.0, 10.0)),
            hnp.arrays(np.float64, (k,), elements=st.floats(0.0, 10.0)),
        )
    )


class TestSoftmaxProperties:
    @given(logits_arrays())
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_a_distribution(self, logits):
        probs = F.softmax(logits, axis=1)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @given(logits_arrays(), st.floats(-30, 30))
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance(self, logits, shift):
        np.testing.assert_allclose(
            F.softmax(logits, axis=1), F.softmax(logits + shift, axis=1), atol=1e-9
        )

    @given(st.integers(2, 12), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_one_hot_rows_sum_to_one(self, num_classes, n):
        labels = np.arange(n) % num_classes
        onehot = F.one_hot(labels, num_classes)
        np.testing.assert_allclose(onehot.sum(axis=1), 1.0)
        assert onehot.max() == 1.0 and onehot.min() == 0.0


class TestDivergenceProperties:
    @given(distribution_pairs())
    @settings(max_examples=80, deadline=None)
    def test_js_divergence_symmetric_bounded_nonnegative(self, pair):
        p, q = pair
        d_pq = float(js_divergence(p, q))
        d_qp = float(js_divergence(q, p))
        assert d_pq == pytest.approx(d_qp, abs=1e-9)
        assert -1e-12 <= d_pq <= np.log(2) + 1e-9
        assert 0.0 - 1e-9 <= float(js_similarity(p, q)) <= 1.0 + 1e-9

    @given(distribution_pairs())
    @settings(max_examples=60, deadline=None)
    def test_kl_divergence_nonnegative(self, pair):
        p, q = pair
        assert float(kl_divergence(p, q)) >= -1e-9

    @given(distribution_pairs())
    @settings(max_examples=60, deadline=None)
    def test_total_variation_bounds(self, pair):
        p, q = pair
        tv = float(total_variation(p, q))
        assert -1e-12 <= tv <= 1.0 + 1e-12

    @given(hnp.arrays(np.float64, (6,), elements=st.floats(0.0, 100.0)))
    @settings(max_examples=60, deadline=None)
    def test_normalize_distribution_output_is_valid(self, raw):
        p = normalize_distribution(raw)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(), 1.0, atol=1e-9)
        assert 0.0 - 1e-9 <= float(normalized_entropy(p)) <= 1.0 + 1e-9


class TestDenseLinearityProperty:
    @given(
        hnp.arrays(np.float64, (3, 5), elements=finite_floats),
        hnp.arrays(np.float64, (3, 5), elements=finite_floats),
    )
    @settings(max_examples=30, deadline=None)
    def test_dense_layer_is_linear(self, a, b):
        layer = Dense(5, 4, use_bias=False, rng=0)
        lhs = layer.forward(a + b)
        rhs = layer.forward(a) + layer.forward(b)
        np.testing.assert_allclose(lhs, rhs, atol=1e-8)


class TestRngProperties:
    @given(st.integers(0, 2**20), st.text(min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_derive_seed_is_deterministic_and_in_range(self, base, label):
        a = derive_seed(base, label)
        b = derive_seed(base, label)
        assert a == b
        assert 0 <= a < 2**32

    @given(st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_spawn_produces_independent_streams(self, seed, n):
        children = spawn(seed, n)
        assert len(children) == n
        first_draws = [child.integers(0, 2**31) for child in children]
        # Re-spawning reproduces the exact same streams.
        again = [child.integers(0, 2**31) for child in spawn(seed, n)]
        assert first_draws == again


class TestDefectInjectionProperties:
    @staticmethod
    def _dataset(num_classes, per_class, seed):
        rng = ensure_rng(seed)
        inputs = rng.random((num_classes * per_class, 1, 4, 4))
        labels = np.repeat(np.arange(num_classes), per_class)
        return ArrayDataset(inputs, labels, num_classes)

    @given(
        st.integers(3, 6),
        st.integers(4, 12),
        st.floats(0.05, 0.8),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_itd_never_touches_unaffected_classes(self, num_classes, per_class, keep, seed):
        dataset = self._dataset(num_classes, per_class, seed)
        injector = InsufficientTrainingData(affected_classes=[0], keep_fraction=keep)
        injected, report = injector.apply(dataset, rng=seed)
        labels = injected.labels
        for cls in range(1, num_classes):
            assert int(np.sum(labels == cls)) == per_class
        assert 1 <= int(np.sum(labels == 0)) <= per_class
        assert report.injected_size == len(injected) <= len(dataset)

    @given(
        st.integers(3, 6),
        st.integers(4, 12),
        st.floats(0.1, 1.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_utd_preserves_size_and_only_moves_labels_to_target(
        self, num_classes, per_class, fraction, seed
    ):
        dataset = self._dataset(num_classes, per_class, seed)
        injector = UnreliableTrainingData(source_class=0, target_class=1, fraction=fraction)
        injected, report = injector.apply(dataset, rng=seed)
        assert len(injected) == len(dataset)
        # Labels only flow from class 0 to class 1.
        moved = report.relabeled_count
        assert int(np.sum(injected.labels == 0)) == per_class - moved
        assert int(np.sum(injected.labels == 1)) == per_class + moved
        assert 1 <= moved <= per_class


class TestErrorConcentrationProperties:
    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_concentration_is_bounded(self, labels):
        value = error_concentration(labels, num_classes=10)
        assert 0.0 <= value <= 1.0
