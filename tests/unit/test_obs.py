"""Unit tests for repro.obs: tracer, spans, exporters, logs, and the
Prometheus/text metrics surface that rides along with the observability PR."""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro import obs
from repro.cli.trace import main as trace_main, render_aggregate, render_trace_tree
from repro.obs import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    JsonLogFormatter,
    MetricsSpanExporter,
    NOOP_SPAN,
    SpanContext,
    SpanStatus,
    Tracer,
    load_jsonl,
    sanitize_trace_id,
)
from repro.serve.jobs import JobStore
from repro.serve.metrics import MetricsRegistry, render_registries_text
from repro.serve.protocol import resolve_request_id, wants_text_metrics


@pytest.fixture
def tracer():
    """An enabled, isolated tracer with an in-memory exporter."""
    tracer = Tracer(enabled=True)
    memory = InMemorySpanExporter()
    tracer.add_exporter(memory)
    return tracer, memory


@pytest.fixture(autouse=True)
def _reset_global_tracer():
    yield
    obs.configure(enabled=False, reset=True)


class TestSpan:
    def test_nesting_parents_spans_automatically(self, tracer):
        tracer, memory = tracer
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        [trace] = memory.recent_traces()
        assert trace["root"] == "outer"
        assert trace["num_spans"] == 2

    def test_clocks_and_status(self, tracer):
        tracer, _ = tracer
        with tracer.span("work", {"k": 1}) as span:
            assert span.is_recording
        assert not span.is_recording
        assert span.status == SpanStatus.OK
        assert span.duration_seconds >= 0.0
        assert span.cpu_seconds >= 0.0
        assert span.attributes["k"] == 1

    def test_exception_marks_error_and_still_exports(self, tracer):
        tracer, memory = tracer
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        [trace] = memory.recent_traces()
        [record] = trace["spans"]
        assert record["status"] == "error"
        assert "ValueError: nope" in record["error"]

    def test_finish_is_idempotent(self, tracer):
        tracer, memory = tracer
        span = tracer.span("once")
        span.finish()
        first = span.duration_seconds
        span.finish()
        assert span.duration_seconds == first
        assert len(memory.recent_traces()) == 1

    def test_explicit_parent_wins_over_context(self, tracer):
        tracer, _ = tracer
        foreign = SpanContext("a" * 32, "b" * 16)
        with tracer.span("ambient"):
            with tracer.span("child", parent=foreign) as child:
                assert child.trace_id == foreign.trace_id
                assert child.parent_id == foreign.span_id

    def test_request_id_stamped_from_context(self, tracer):
        tracer, _ = tracer
        token = obs.bind_request_id("req-1")
        try:
            with tracer.span("stamped") as span:
                pass
        finally:
            obs.unbind_request_id(token)
        assert span.attributes["request_id"] == "req-1"

    def test_context_propagates_across_threads_via_copy_context(self, tracer):
        import contextvars

        tracer, _ = tracer
        seen = {}

        def worker():
            with tracer.span("threaded") as span:
                seen["trace_id"] = span.trace_id
                seen["parent_id"] = span.parent_id

        with tracer.span("root") as root:
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(worker,))
            thread.start()
            thread.join()
        assert seen["trace_id"] == root.trace_id
        assert seen["parent_id"] == root.span_id


class TestDisabledTracer:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", {"a": 1})
        assert span is NOOP_SPAN
        with span as inner:
            assert inner.set_attribute("x", 1) is inner
        assert span.context() is None
        assert tracer.current_context() is None

    def test_noop_does_not_become_current_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer"):
            assert obs.current_span() is None

    def test_global_tracer_disabled_by_default(self):
        assert obs.get_tracer().enabled is False
        assert obs.span("x") is NOOP_SPAN


class TestSpanContext:
    def test_header_round_trip(self):
        context = SpanContext("ab12" * 8, "cd34" * 4)
        assert SpanContext.from_header_value(context.header_value()) == context

    @pytest.mark.parametrize(
        "value",
        [None, "", "nodash", "UPPER-case", "g" * 33 + "-abc", "abc-", "abc-" + "f" * 33],
    )
    def test_malformed_headers_rejected(self, value):
        assert SpanContext.from_header_value(value) is None

    def test_sanitize_trace_id(self):
        assert sanitize_trace_id("ABCDEF") == "abcdef"
        assert sanitize_trace_id("x" * 33) is None
        assert sanitize_trace_id('abc"def') is None
        assert sanitize_trace_id("") is None


class TestInMemoryExporter:
    def test_children_buffer_until_root_completes(self, tracer):
        tracer, memory = tracer
        root = tracer.span("root")
        with root:
            with tracer.span("child"):
                pass
            assert memory.recent_traces() == []
            assert memory.pending_count() == 1
        assert memory.pending_count() == 0
        [trace] = memory.recent_traces()
        assert [s["name"] for s in trace["spans"]] == ["child", "root"]

    def test_request_kind_completes_stitched_traces(self, tracer):
        # A server-side root parented under a remote client span has a
        # parent_id that never resolves locally; kind="request" must still
        # complete the trace.
        tracer, memory = tracer
        client_side = SpanContext("f" * 32, "e" * 16)
        with tracer.span("http.request", parent=client_side, kind="request"):
            pass
        [trace] = memory.recent_traces()
        assert trace["root"] == "http.request"

    def test_slow_sample_survives_fast_burst(self):
        exporter = InMemorySpanExporter(max_traces=4, max_slow=2)
        for i, duration in enumerate([5.0, 0.001, 0.002, 0.003, 0.004, 0.005]):
            exporter.export({
                "trace_id": f"t{i}", "parent_id": None, "name": "r",
                "duration_seconds": duration, "status": "ok",
                "start_time": 0.0, "attributes": {},
            })
        recents = {t["trace_id"] for t in exporter.recent_traces()}
        assert "t0" not in recents  # evicted from the ring by the burst
        slow = exporter.slow_traces()
        assert slow[0]["trace_id"] == "t0"  # but retained as the slowest

    def test_orphaned_pending_traces_are_bounded(self):
        exporter = InMemorySpanExporter(max_pending_traces=3)
        for i in range(10):
            exporter.export({
                "trace_id": f"t{i}", "parent_id": "gone", "name": "leaf",
                "duration_seconds": 0.0, "attributes": {},
            })
        assert exporter.pending_count() <= 4


class TestJsonlExporter:
    def test_round_trip_through_file(self, tmp_path, tracer):
        tracer, _ = tracer
        path = str(tmp_path / "spans.jsonl")
        tracer.add_exporter(JsonlSpanExporter(path))
        with tracer.span("written", {"n": 2}):
            pass
        tracer.flush()
        [record] = load_jsonl(path)
        assert record["name"] == "written"
        assert record["attributes"]["n"] == 2
        assert record["duration_seconds"] >= 0.0

    def test_load_jsonl_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n[1,2]\n\n{"name": "ok2"}\n')
        assert [r["name"] for r in load_jsonl(str(path))] == ["ok", "ok2"]

    def test_dedupe_key_prevents_double_registration(self, tmp_path):
        tracer = Tracer(enabled=True)
        path = str(tmp_path / "spans.jsonl")
        first, second = JsonlSpanExporter(path), JsonlSpanExporter(path)
        assert tracer.add_exporter(first) is True
        assert tracer.add_exporter(second) is False
        assert len(tracer.exporters()) == 1
        second.close()
        tracer.clear_exporters()


class TestMetricsBridge:
    def test_spans_feed_per_stage_histograms(self, tracer):
        tracer, _ = tracer
        registry = MetricsRegistry()
        tracer.add_exporter(MetricsSpanExporter(registry))
        for _ in range(3):
            with tracer.span("gateway.dispatch"):
                pass
        snapshot = registry.as_dict()
        assert snapshot["trace.gateway.dispatch.seconds"]["count"] == 3

    def test_exporter_failure_never_breaks_the_span(self, tracer):
        tracer, memory = tracer

        class Exploding:
            def export(self, record):
                raise RuntimeError("exporter bug")

        tracer.add_exporter(Exploding())
        with tracer.span("resilient"):
            pass
        assert memory.recent_traces()[0]["root"] == "resilient"


class TestConfigure:
    def test_configure_mutates_global_in_place(self):
        before = obs.get_tracer()
        configured = obs.configure(enabled=True, reset=True)
        assert configured is before
        assert before.enabled
        obs.configure(enabled=False, reset=True)
        assert not before.enabled

    def test_configure_twice_does_not_stack_memory_exporters(self):
        obs.configure(enabled=True, reset=True)
        obs.configure(enabled=True)
        memories = [
            e for e in obs.get_tracer().exporters() if isinstance(e, InMemorySpanExporter)
        ]
        assert len(memories) == 1

    def test_debug_payload_shape(self):
        tracer = obs.configure(enabled=True, reset=True)
        with tracer.span("observed"):
            pass
        payload = tracer.debug_payload()
        assert payload["enabled"] is True
        assert payload["recent"][0]["root"] == "observed"
        assert isinstance(payload["slow"], list)


class TestStructuredLogs:
    def _logger_with_buffer(self):
        buffer = io.StringIO()
        handler = logging.StreamHandler(buffer)
        handler.setFormatter(JsonLogFormatter())
        logger = logging.getLogger("repro.test.obs")
        logger.handlers = [handler]
        logger.propagate = False
        logger.setLevel(logging.INFO)
        return logger, buffer

    def test_lines_are_json_with_trace_identity(self, tracer):
        tracer, _ = tracer
        logger, buffer = self._logger_with_buffer()
        token = obs.bind_request_id("req-42")
        try:
            with tracer.span("logging") as span:
                obs.log_event(logger, "hello", status=200)
        finally:
            obs.unbind_request_id(token)
        record = json.loads(buffer.getvalue())
        assert record["message"] == "hello"
        assert record["status"] == 200
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id
        assert record["request_id"] == "req-42"

    def test_lines_outside_any_span_omit_trace_identity(self):
        logger, buffer = self._logger_with_buffer()
        obs.log_event(logger, "plain")
        record = json.loads(buffer.getvalue())
        assert "trace_id" not in record
        assert "request_id" not in record

    def test_configure_logging_is_idempotent(self):
        root = obs.configure_logging(stream=io.StringIO())
        obs.configure_logging(stream=io.StringIO())
        ours = [h for h in root.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(ours) == 1
        for handler in ours:
            root.removeHandler(handler)


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests.total", "requests").inc(3)
        registry.gauge("queue.depth").set(2)
        registry.histogram("latency.seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        assert "# HELP requests_total requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "queue_depth 2" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_labels_disambiguate_duplicate_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("req.total").inc(1)
        b.counter("req.total").inc(2)
        text = render_registries_text([
            (a.as_dict(), {"replica": "0"}),
            (b.as_dict(), {"replica": "1"}),
        ])
        assert text.count("# TYPE req_total counter") == 1
        assert 'req_total{replica="0"} 1' in text
        assert 'req_total{replica="1"} 2' in text

    def test_histogram_labels_merge_with_le(self):
        registry = MetricsRegistry()
        registry.histogram("h.seconds", buckets=(1.0,)).observe(0.5)
        text = registry.render_text({"component": "gateway"})
        assert 'h_seconds_bucket{component="gateway",le="1.0"} 1' in text
        assert 'h_seconds_sum{component="gateway"}' in text

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("2weird-name.total").inc()
        assert "_2weird_name_total 1" in registry.render_text()


class TestRequestIdResolution:
    def test_well_formed_client_ids_kept(self):
        assert resolve_request_id("abc-DEF_1.2", lambda: "gen") == "abc-DEF_1.2"

    @pytest.mark.parametrize(
        "supplied", [None, "", "x" * 65, "has space", "new\nline", 'quo"te', "semi;colon"]
    )
    def test_hostile_or_missing_ids_regenerated(self, supplied):
        assert resolve_request_id(supplied, lambda: "generated") == "generated"

    def test_wants_text_metrics(self):
        assert wants_text_metrics("format=text", None)
        assert wants_text_metrics("a=1&format=prometheus", None)
        assert wants_text_metrics("", "text/plain; version=0.0.4")
        assert not wants_text_metrics("", "application/json")
        assert not wants_text_metrics("format=json", None)
        assert not wants_text_metrics("", None)


class TestJobMonotonicTiming:
    def test_durations_use_monotonic_clocks(self):
        store = JobStore()
        job = store.create("diagnosis")
        assert job.queue_seconds is None
        assert job.run_seconds is None
        store.mark_running(job.job_id)
        store.mark_succeeded(job.job_id, {"ok": True})
        assert job.queue_seconds >= 0.0
        assert job.run_seconds >= 0.0
        payload = job.as_dict()
        assert payload["queue_seconds"] == job.queue_seconds
        assert payload["run_seconds"] == job.run_seconds
        # Wall-clock fields remain for display.
        assert payload["submitted_at"] <= payload["finished_at"]

    def test_wall_clock_jump_cannot_produce_negative_durations(self):
        store = JobStore()
        job = store.create("diagnosis")
        store.mark_running(job.job_id)
        # Simulate a backwards wall-clock step after start: monotonic math
        # is unaffected, and the properties clamp defensively anyway.
        job.started_monotonic = job.submitted_monotonic + 0.5
        job.finished_monotonic = job.started_monotonic - 1.0
        assert job.run_seconds == 0.0


class TestTraceCli:
    def _write_trace(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = obs.configure(enabled=True, jsonl_path=path, reset=True)
        with tracer.span("gateway.request", kind="request"):
            with tracer.span("gateway.dispatch", {"body_bytes": 10}):
                with tracer.span("service.diagnose", {"model": "demo"}):
                    pass
        tracer.flush()
        obs.configure(enabled=False, reset=True)
        return path

    def test_aggregate_and_tree_rendering(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = load_jsonl(path)
        aggregate = render_aggregate(records)
        assert "gateway.request" in aggregate
        assert "service.diagnose" in aggregate
        tree = render_trace_tree(records[0]["trace_id"], records)
        # Children indent under their parents, attributes shown.
        assert tree.index("gateway.request") < tree.index("gateway.dispatch")
        assert "model=demo" in tree

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert trace_main([path, "--tree"]) == 0
        out = capsys.readouterr().out
        assert "3 span(s) across 1 trace(s)" in out
        assert "gateway.dispatch" in out

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trace_main([str(empty)]) == 1
        assert trace_main([path, "--trace-id", "doesnotexist"]) == 1

    def test_tree_renders_orphan_spans(self, tmp_path):
        path = tmp_path / "orphans.jsonl"
        spans = [
            {"trace_id": "t1", "span_id": "a", "parent_id": None, "name": "root",
             "duration_seconds": 0.2, "attributes": {}, "start_monotonic": 0.0},
            {"trace_id": "t1", "span_id": "b", "parent_id": "missing", "name": "lost",
             "duration_seconds": 0.1, "attributes": {}, "start_monotonic": 0.1},
        ]
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        tree = render_trace_tree("t1", load_jsonl(str(path)))
        assert "(orphan) lost" in tree
