"""Tests for the model zoo and registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.models import (
    AlexNet,
    DenseNet,
    LeNet,
    ResNet,
    available_models,
    build_from_config,
    build_model,
)


BATCH = 3


@pytest.fixture(scope="module")
def mnist_batch():
    return np.random.default_rng(0).random((BATCH, 1, 14, 14))


@pytest.fixture(scope="module")
def cifar_batch():
    return np.random.default_rng(1).random((BATCH, 3, 16, 16))


class TestLeNet:
    def test_forward_shape_and_stages(self, mnist_batch):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        logits = model.forward(mnist_batch)
        assert logits.shape == (BATCH, 10)
        assert model.stage_names()[-1] == "logits"
        assert len(model.hidden_layer_names()) == len(model.stage_names()) - 1

    def test_pure_mlp_variant(self, mnist_batch):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, conv_channels=(), rng=0)
        assert model.forward(mnist_batch).shape == (BATCH, 10)

    def test_rejects_empty_dense_units(self):
        with pytest.raises(ConfigurationError):
            LeNet(dense_units=())

    def test_input_shape_validation(self, cifar_batch):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        with pytest.raises(ShapeError):
            model.forward(cifar_batch)

    def test_predict_helpers(self, mnist_batch):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        probs = model.predict_proba(mnist_batch)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        preds = model.predict(mnist_batch)
        assert preds.shape == (BATCH,)
        assert np.all((preds >= 0) & (preds < 10))

    def test_forward_collect_returns_all_stages(self, mnist_batch):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        logits, acts = model.forward_collect(mnist_batch)
        assert list(acts) == model.stage_names()
        np.testing.assert_allclose(acts["logits"], logits)


class TestAlexNet:
    def test_forward_shape(self, mnist_batch):
        model = AlexNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        assert model.forward(mnist_batch).shape == (BATCH, 10)

    def test_has_five_conv_stages_by_default(self):
        model = AlexNet(rng=0)
        conv_stages = [name for name in model.stage_names() if name.startswith("conv")]
        assert len(conv_stages) == 5

    def test_dropout_validation(self):
        with pytest.raises(ConfigurationError):
            AlexNet(dropout=1.0)


class TestResNet:
    def test_forward_shape(self, cifar_batch):
        model = ResNet(input_shape=(3, 16, 16), num_classes=10, rng=0)
        assert model.forward(cifar_batch).shape == (BATCH, 10)

    def test_block_counts_control_depth(self):
        shallow = ResNet(block_counts=(1,), base_channels=8, rng=0)
        deep = ResNet(block_counts=(2, 2), base_channels=8, rng=0)
        assert len(deep.stage_names()) > len(shallow.stage_names())

    def test_rejects_empty_block_counts(self):
        with pytest.raises(ConfigurationError):
            ResNet(block_counts=())


class TestDenseNet:
    def test_forward_shape(self, cifar_batch):
        model = DenseNet(input_shape=(3, 16, 16), num_classes=10, rng=0)
        assert model.forward(cifar_batch).shape == (BATCH, 10)

    def test_has_transitions_between_blocks(self):
        model = DenseNet(units_per_block=(2, 2, 2), rng=0)
        names = model.stage_names()
        assert any(name.startswith("transition") for name in names)
        assert sum(name.startswith("dense") for name in names) == 3

    def test_compression_validation(self):
        with pytest.raises(ConfigurationError):
            DenseNet(compression=0.0)


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {"lenet", "alexnet", "resnet", "densenet"}

    def test_build_model_by_name(self, mnist_batch):
        model = build_model("lenet", (1, 14, 14), 10, rng=0)
        assert model.kind == "lenet"
        assert model.forward(mnist_batch).shape == (BATCH, 10)

    def test_build_model_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            build_model("vgg", (1, 14, 14), 10)

    def test_config_roundtrip_preserves_architecture(self):
        original = ResNet(input_shape=(3, 16, 16), num_classes=10,
                          base_channels=8, block_counts=(1, 2), rng=0)
        rebuilt = build_from_config(original.config(), rng=1)
        assert rebuilt.kind == original.kind
        assert rebuilt.stage_names() == original.stage_names()
        assert rebuilt.num_parameters() == original.num_parameters()

    def test_build_from_config_requires_keys(self):
        with pytest.raises(ConfigurationError):
            build_from_config({"kind": "lenet"})

    def test_backward_runs_through_whole_model(self, mnist_batch):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10,
                      conv_channels=(4,), dense_units=(16,), rng=0)
        logits = model.forward(mnist_batch)
        grad_in = model.backward(np.ones_like(logits))
        assert grad_in.shape == mnist_batch.shape
        assert all(p.grad is not None for p in model.parameters() if p.trainable)
