"""Tests for softmax instrumentation, footprints, patterns, and specifics."""

import numpy as np
import pytest

from repro.core import (
    Footprint,
    FootprintExtractor,
    PatternLibrary,
    SoftmaxInstrumentedModel,
    SoftmaxProbe,
    compute_specifics,
    pool_activation,
)
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from tests.conftest import make_tiny_model


class TestPoolActivation:
    def test_dense_activations_pass_through(self):
        x = np.random.default_rng(0).random((5, 7))
        np.testing.assert_allclose(pool_activation(x), x)

    def test_small_conv_activations_are_flattened(self):
        x = np.random.default_rng(0).random((5, 3, 4, 4))
        out = pool_activation(x, max_spatial=4)
        assert out.shape == (5, 3 * 16)

    def test_large_conv_activations_are_pooled(self):
        x = np.ones((2, 3, 12, 12))
        out = pool_activation(x, max_spatial=4)
        assert out.shape == (2, 3 * 16)
        np.testing.assert_allclose(out, 1.0)

    def test_rejects_3d_input(self):
        with pytest.raises(ShapeError):
            pool_activation(np.zeros((2, 3, 4)))


class TestSoftmaxProbe:
    def test_fit_and_predict_proba(self):
        rng = np.random.default_rng(0)
        # Two linearly separable blobs.
        features = np.vstack([rng.normal(-2, 0.3, size=(30, 5)), rng.normal(2, 0.3, size=(30, 5))])
        labels = np.repeat([0, 1], 30)
        probe = SoftmaxProbe("layer", num_classes=2, epochs=20, rng=0)
        probe.fit(features, labels)
        probs = probe.predict_proba(features)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert probe.training_accuracy > 0.95
        assert probe.validation_accuracy > 0.9

    def test_predict_before_fit_raises(self):
        probe = SoftmaxProbe("layer", num_classes=3)
        with pytest.raises(NotFittedError):
            probe.predict_proba(np.zeros((2, 4)))

    def test_feature_dimension_mismatch_after_fit(self):
        probe = SoftmaxProbe("layer", num_classes=2, epochs=2, rng=0)
        probe.fit(np.random.default_rng(0).random((10, 4)), np.repeat([0, 1], 5))
        with pytest.raises(ShapeError):
            probe.predict_proba(np.zeros((2, 5)))

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SoftmaxProbe("layer", num_classes=1)
        with pytest.raises(ConfigurationError):
            SoftmaxProbe("layer", num_classes=3, epochs=0)
        with pytest.raises(ConfigurationError):
            SoftmaxProbe("layer", num_classes=3, validation_fraction=1.0)


class TestSoftmaxInstrumentedModel:
    def test_fit_trains_one_probe_per_hidden_layer(self, trained_tiny_model, tiny_splits):
        train, _ = tiny_splits
        instrumented = SoftmaxInstrumentedModel(trained_tiny_model, probe_epochs=3, rng=0).fit(train)
        assert instrumented.is_fitted
        assert instrumented.num_layers == len(trained_tiny_model.hidden_layer_names())
        accuracies = instrumented.probe_accuracies()
        assert set(accuracies) == set(trained_tiny_model.hidden_layer_names())
        assert all(0.0 <= v <= 1.0 for v in accuracies.values())
        assert 0.0 <= instrumented.feature_quality() <= 1.0

    def test_layer_distributions_shapes(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, _ = test.arrays()
        trajectories, final = fitted_deepmorph.instrumented.layer_distributions(inputs[:6])
        assert trajectories.shape == (6, fitted_deepmorph.instrumented.num_layers, test.num_classes)
        np.testing.assert_allclose(trajectories.sum(axis=2), 1.0, atol=1e-9)
        np.testing.assert_allclose(final.sum(axis=1), 1.0, atol=1e-9)

    def test_unknown_layer_name_rejected(self, trained_tiny_model):
        with pytest.raises(ConfigurationError):
            SoftmaxInstrumentedModel(trained_tiny_model, layer_names=["nope"])

    def test_unfitted_access_raises(self, trained_tiny_model):
        instrumented = SoftmaxInstrumentedModel(trained_tiny_model)
        with pytest.raises(NotFittedError):
            instrumented.probe_accuracies()
        with pytest.raises(NotFittedError):
            instrumented.layer_distributions(np.zeros((1, 1, 10, 10)))

    def test_backbone_parameters_are_untouched_by_fit(self, tiny_splits):
        train, _ = tiny_splits
        model = make_tiny_model()
        before = [p.data.copy() for p in model.parameters()]
        SoftmaxInstrumentedModel(model, probe_epochs=2, rng=0).fit(train)
        after = [p.data for p in model.parameters()]
        for b, a in zip(before, after):
            np.testing.assert_allclose(b, a)


class TestFootprint:
    def _footprint(self, true_label=0):
        trajectory = np.array([[0.6, 0.3, 0.1], [0.2, 0.7, 0.1], [0.1, 0.8, 0.1]])
        final = np.array([0.15, 0.75, 0.1])
        return Footprint(trajectory=trajectory, final_probs=final, predicted=1, true_label=true_label)

    def test_basic_properties(self):
        fp = self._footprint()
        assert fp.num_layers == 3
        assert fp.num_classes == 3
        assert fp.is_misclassified is True
        assert fp.final_confidence == pytest.approx(0.75)

    def test_divergence_and_commitment(self):
        fp = self._footprint(true_label=0)
        assert fp.divergence_layer() == 1
        assert fp.commitment_depth() == pytest.approx(2 / 3)

    def test_full_trajectory_appends_final_row(self):
        fp = self._footprint()
        assert fp.full_trajectory().shape == (4, 3)

    def test_missing_label(self):
        fp = Footprint(
            trajectory=np.array([[0.5, 0.5]]), final_probs=np.array([0.5, 0.5]), predicted=0
        )
        assert fp.is_misclassified is None
        assert fp.divergence_layer() is None

    def test_validation_of_shapes(self):
        with pytest.raises(ShapeError):
            Footprint(trajectory=np.array([0.5, 0.5]), final_probs=np.array([0.5, 0.5]), predicted=0)
        with pytest.raises(ShapeError):
            Footprint(
                trajectory=np.array([[0.5, 0.5]]), final_probs=np.array([0.5, 0.5, 0.0]), predicted=0
            )

    def test_extractor_produces_labeled_footprints(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        extractor = FootprintExtractor(fitted_deepmorph.instrumented)
        footprints = extractor.extract(inputs[:5], labels[:5])
        assert len(footprints) == 5
        assert all(fp.true_label == int(labels[i]) for i, fp in enumerate(footprints))
        assert all(fp.layer_names == tuple(fitted_deepmorph.instrumented.layer_names) for fp in footprints)

    def test_extractor_label_size_mismatch(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        extractor = FootprintExtractor(fitted_deepmorph.instrumented)
        with pytest.raises(ShapeError):
            extractor.extract(inputs[:5], labels[:4])


class TestPatternLibrary:
    def test_fit_produces_pattern_per_class(self, fitted_deepmorph):
        library = fitted_deepmorph.patterns
        assert library.is_fitted
        assert library.classes() == list(range(4))
        for class_id in library.classes():
            pattern = library.pattern(class_id)
            assert pattern.mean_trajectory.shape[1] == 4
            np.testing.assert_allclose(pattern.mean_trajectory.sum(axis=1), 1.0, atol=1e-6)
            assert pattern.support > 0
            assert pattern.dispersion >= 0.0

    def test_similarity_prefers_own_class(self, fitted_deepmorph, tiny_splits):
        train, _ = tiny_splits
        inputs, labels = train.arrays()
        footprints = fitted_deepmorph.extract_footprints(inputs[:10], labels[:10])
        library = fitted_deepmorph.patterns
        own = [library.similarity(fp, fp.true_label) for fp in footprints]
        assert np.mean(own) > 0.5

    def test_best_match_returns_valid_class(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        fp = fitted_deepmorph.extract_footprints(inputs[:1], labels[:1])[0]
        best_class, best_sim = fitted_deepmorph.patterns.best_match(fp)
        assert best_class in fitted_deepmorph.patterns.classes()
        assert 0.0 <= best_sim <= 1.0

    def test_pattern_overlap_in_unit_range(self, fitted_deepmorph):
        overlap = fitted_deepmorph.patterns.pattern_overlap()
        assert 0.0 <= overlap <= 1.0

    def test_unknown_class_pattern_raises(self, fitted_deepmorph):
        with pytest.raises(KeyError):
            fitted_deepmorph.patterns.pattern(99)

    def test_unfitted_library_raises(self, fitted_deepmorph):
        library = PatternLibrary(fitted_deepmorph.instrumented)
        with pytest.raises(NotFittedError):
            library.classes()


class TestSpecifics:
    def test_compute_specifics_ranges(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        footprints = fitted_deepmorph.extract_footprints(inputs, labels)
        specs = fitted_deepmorph.compute_specifics(footprints[:10])
        for spec in specs:
            payload = spec.as_dict()
            for key, value in payload.items():
                if key in ("predicted", "true_label", "best_match_class"):
                    continue
                assert 0.0 <= value <= 1.0, f"{key}={value} out of range"

    def test_specifics_require_true_label(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, _ = test.arrays()
        fp = fitted_deepmorph.extract_footprints(inputs[:1])[0]
        with pytest.raises(ConfigurationError):
            compute_specifics(fp, fitted_deepmorph.patterns)


class TestGroupedExtraction:
    """The coalesced multi-group extraction APIs the serving layer builds on."""

    def test_grouped_distributions_match_per_group_calls(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, _ = test.arrays()
        instrumented = fitted_deepmorph.instrumented
        groups = [inputs[:3], inputs[3:4], inputs[4:9]]
        grouped = instrumented.layer_distributions_grouped(groups)
        assert len(grouped) == 3
        for group, (trajectories, final_probs) in zip(groups, grouped):
            direct_traj, direct_final = instrumented.layer_distributions(group)
            # Extraction runs in float32 by default; BLAS sgemm results differ
            # at float32 resolution with batch composition, so grouped and
            # per-group calls agree to ~1e-7, not bit-exactly.
            np.testing.assert_allclose(trajectories, direct_traj, atol=1e-6)
            np.testing.assert_allclose(final_probs, direct_final, atol=1e-6)

    def test_grouped_handles_empty_group_and_empty_input(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, _ = test.arrays()
        instrumented = fitted_deepmorph.instrumented
        grouped = instrumented.layer_distributions_grouped([inputs[:2], inputs[:0]])
        assert grouped[0][0].shape[0] == 2
        assert grouped[1][0].shape[0] == 0
        assert instrumented.layer_distributions_grouped([]) == []
        empty_only = instrumented.layer_distributions_grouped([inputs[:0]])
        assert empty_only[0][0].shape == (0, instrumented.num_layers, instrumented.num_classes)

    def test_extract_coalesced_roundtrips_through_from_arrays(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        extractor = FootprintExtractor(fitted_deepmorph.instrumented)
        (trajectories, final_probs), _ = extractor.extract_coalesced([inputs[:5], inputs[5:8]])
        rebuilt = extractor.from_arrays(trajectories, final_probs, labels[:5])
        direct = extractor.extract(inputs[:5], labels[:5])
        for a, b in zip(rebuilt, direct):
            # float32 extraction: agreement to float32 resolution (see above).
            np.testing.assert_allclose(a.trajectory, b.trajectory, atol=1e-6)
            assert a.predicted == b.predicted and a.true_label == b.true_label
