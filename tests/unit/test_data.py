"""Tests for dataset abstractions, loaders, transforms, and synthetic generators."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    Subset,
    SyntheticCIFAR,
    SyntheticConfig,
    SyntheticMNIST,
    batch_iterator,
    class_counts,
    class_indices,
    concat_datasets,
    stratified_split,
    train_test_split,
)
from repro.data.transforms import (
    Compose,
    Cutout,
    GaussianNoise,
    Normalize,
    PerImageStandardize,
    RandomHorizontalFlip,
    RandomTranslation,
)
from repro.exceptions import ConfigurationError, DatasetError, ShapeError


class TestArrayDataset:
    def test_basic_properties(self, small_dataset):
        assert len(small_dataset) == 30
        assert small_dataset.num_classes == 3
        assert small_dataset.input_shape == (1, 6, 6)
        x, y = small_dataset[0]
        assert x.shape == (1, 6, 6)
        assert isinstance(y, int)

    def test_rejects_size_mismatch(self):
        with pytest.raises(ShapeError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DatasetError):
            ArrayDataset(np.zeros((3, 2)), np.array([0, 1, 5]), 2)

    def test_select_keeps_classes(self, small_dataset):
        subset = small_dataset.select(np.array([0, 1, 2]))
        assert len(subset) == 3
        assert subset.num_classes == small_dataset.num_classes

    def test_with_labels_replaces_labels(self, small_dataset):
        new_labels = np.zeros(len(small_dataset), dtype=int)
        relabeled = small_dataset.with_labels(new_labels)
        assert np.all(relabeled.labels == 0)
        # Original untouched.
        assert not np.all(small_dataset.labels == 0)

    def test_class_counts_and_indices(self, small_dataset):
        counts = class_counts(small_dataset)
        np.testing.assert_array_equal(counts, [10, 10, 10])
        idx = class_indices(small_dataset.labels, 3)
        assert sum(len(v) for v in idx.values()) == 30


class TestSubsetAndConcat:
    def test_subset_view(self, small_dataset):
        view = Subset(small_dataset, [0, 5, 10])
        assert len(view) == 3
        inputs, labels = view.arrays()
        assert inputs.shape[0] == 3 and labels.shape[0] == 3

    def test_subset_rejects_bad_indices(self, small_dataset):
        with pytest.raises(DatasetError):
            Subset(small_dataset, [100])

    def test_concat(self, small_dataset):
        combined = concat_datasets([small_dataset, small_dataset])
        assert len(combined) == 60

    def test_concat_rejects_mismatched_shapes(self, small_dataset):
        other = ArrayDataset(np.zeros((5, 2, 3, 3)), np.zeros(5, dtype=int), 3)
        with pytest.raises(DatasetError):
            concat_datasets([small_dataset, other])

    def test_concat_rejects_empty_list(self):
        with pytest.raises(DatasetError):
            concat_datasets([])


class TestSplits:
    def test_train_test_split_sizes(self, small_dataset):
        train, test = train_test_split(small_dataset, test_fraction=0.2, rng=0)
        assert len(train) + len(test) == len(small_dataset)
        assert len(test) == 6

    def test_train_test_split_rejects_extreme_fraction(self, small_dataset):
        with pytest.raises(DatasetError):
            train_test_split(small_dataset, test_fraction=0.0)

    def test_stratified_split_preserves_class_balance(self, small_dataset):
        train, test = stratified_split(small_dataset, test_fraction=0.3, rng=0)
        train_counts = class_counts(train)
        test_counts = class_counts(test)
        assert np.all(train_counts == 7)
        assert np.all(test_counts == 3)

    def test_splits_are_disjoint_and_reproducible(self, small_dataset):
        a1, b1 = train_test_split(small_dataset, 0.25, rng=7)
        a2, b2 = train_test_split(small_dataset, 0.25, rng=7)
        np.testing.assert_array_equal(a1.labels, a2.labels)
        np.testing.assert_array_equal(b1.labels, b2.labels)


class TestDataLoader:
    def test_batches_cover_dataset(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=7, shuffle=True, rng=0)
        seen = sum(batch_x.shape[0] for batch_x, _ in loader)
        assert seen == len(small_dataset)
        assert len(loader) == 5

    def test_drop_last(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=7, drop_last=True, rng=0)
        sizes = [x.shape[0] for x, _ in loader]
        assert all(s == 7 for s in sizes)
        assert len(loader) == 4

    def test_batch_iterator_no_shuffle_preserves_order(self):
        inputs = np.arange(10)[:, None]
        labels = np.arange(10)
        batches = list(batch_iterator(inputs, labels, 4, shuffle=False))
        np.testing.assert_array_equal(batches[0][1], [0, 1, 2, 3])
        np.testing.assert_array_equal(batches[-1][1], [8, 9])

    def test_invalid_batch_size(self, small_dataset):
        with pytest.raises(ConfigurationError):
            DataLoader(small_dataset, batch_size=0)

    def test_batch_iterator_rejects_length_mismatch(self):
        # Mismatched arrays used to truncate silently via fancy indexing.
        with pytest.raises(ShapeError, match="disagree on length"):
            list(batch_iterator(np.zeros((10, 2)), np.zeros(7), 4))


class TestTransforms:
    def test_normalize(self):
        images = np.ones((2, 1, 3, 3)) * 4.0
        out = Normalize(mean=[4.0], std=[2.0])(images)
        np.testing.assert_allclose(out, 0.0)

    def test_normalize_rejects_channel_mismatch(self):
        with pytest.raises(ShapeError):
            Normalize(mean=[0.0], std=[1.0])(np.ones((2, 3, 3, 3)))

    def test_per_image_standardize(self):
        images = np.random.default_rng(0).random((3, 1, 5, 5)) * 9
        out = PerImageStandardize()(images)
        np.testing.assert_allclose(out.mean(axis=(1, 2, 3)), 0.0, atol=1e-8)

    def test_gaussian_noise_changes_values(self):
        images = np.zeros((2, 1, 4, 4))
        out = GaussianNoise(std=0.5, rng=0)(images)
        assert np.any(out != 0)

    def test_flip_probability_one_reverses_width(self):
        images = np.arange(8, dtype=float).reshape(1, 1, 2, 4)
        out = RandomHorizontalFlip(p=1.0, rng=0)(images)
        np.testing.assert_allclose(out[0, 0, 0], images[0, 0, 0, ::-1])

    def test_translation_preserves_shape(self):
        images = np.random.default_rng(0).random((4, 1, 6, 6))
        out = RandomTranslation(max_shift=2, rng=0)(images)
        assert out.shape == images.shape

    def test_cutout_zeroes_a_patch(self):
        images = np.ones((1, 1, 8, 8))
        out = Cutout(size=3, rng=0)(images)
        assert np.sum(out == 0) > 0

    def test_compose_applies_in_order(self):
        images = np.ones((1, 1, 2, 2))
        pipeline = Compose([Normalize([1.0], [1.0]), GaussianNoise(0.0)])
        np.testing.assert_allclose(pipeline(images), 0.0)


class TestSyntheticGenerators:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_classes=1)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(channels=2)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(blobs_per_template=0, bars_per_template=0)

    def test_sample_shapes_and_range(self, tiny_generator):
        data = tiny_generator.sample(5, rng=0)
        assert len(data) == 5 * tiny_generator.num_classes
        assert data.input_shape == tiny_generator.input_shape
        assert data.inputs.min() >= 0.0
        assert data.inputs.max() <= 1.5

    def test_samples_are_reproducible_from_seed(self, tiny_generator):
        a = tiny_generator.sample(3, rng=11)
        b = tiny_generator.sample(3, rng=11)
        np.testing.assert_allclose(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_train_test_splits_are_independent(self, tiny_generator):
        train, test = tiny_generator.splits(4, 4, rng=0)
        assert not np.allclose(train.inputs[:4], test.inputs[:4])

    def test_classes_are_visually_distinct(self, tiny_generator):
        # The mean image of each class should differ from every other class.
        data = tiny_generator.sample(10, rng=0)
        means = [data.inputs[data.labels == c].mean(axis=0) for c in range(data.num_classes)]
        for i in range(len(means)):
            for j in range(i + 1, len(means)):
                assert np.abs(means[i] - means[j]).mean() > 1e-3

    def test_mnist_and_cifar_shapes(self):
        assert SyntheticMNIST().input_shape == (1, 14, 14)
        assert SyntheticCIFAR().input_shape == (3, 16, 16)
        assert SyntheticMNIST().num_classes == 10

    def test_sample_class_rejects_bad_class(self, tiny_generator):
        with pytest.raises(ConfigurationError):
            tiny_generator.sample_class(99, 1)
