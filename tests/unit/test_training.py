"""Tests for the training loop, callbacks, and history."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.exceptions import ConfigurationError, DatasetError
from repro.optim import Adam, SGD, StepDecay
from repro.training import (
    EarlyStopping,
    EpochLogger,
    EpochRecord,
    History,
    LambdaCallback,
    TargetAccuracyStopping,
    Trainer,
    evaluate,
)
from tests.conftest import make_tiny_model


def easy_dataset(n_per_class=15, classes=4, size=10, seed=0):
    """A trivially separable dataset: class c has mean intensity proportional to c."""
    rng = np.random.default_rng(seed)
    inputs, labels = [], []
    for c in range(classes):
        base = np.zeros((n_per_class, 1, size, size))
        base[:, :, : c + 2, : c + 2] = 1.0
        inputs.append(base + rng.normal(0, 0.05, size=base.shape))
        labels.append(np.full(n_per_class, c))
    return ArrayDataset(np.concatenate(inputs), np.concatenate(labels), classes)


class TestTrainer:
    def test_training_reduces_loss_and_reaches_high_accuracy(self):
        data = easy_dataset()
        model = make_tiny_model()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), rng=0)
        history = trainer.fit(data, epochs=6, batch_size=16)
        assert history[0].train_loss > history.final.train_loss
        assert history.final.train_accuracy > 0.9

    def test_validation_metrics_are_recorded(self):
        data = easy_dataset()
        val = easy_dataset(seed=1)
        model = make_tiny_model()
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), rng=0)
        history = trainer.fit(data, epochs=2, batch_size=16, validation_data=val)
        assert history.final.val_loss is not None
        assert history.final.val_accuracy is not None

    def test_schedule_changes_learning_rate(self):
        data = easy_dataset(n_per_class=5)
        model = make_tiny_model()
        optimizer = SGD(model.parameters(), lr=1.0)
        trainer = Trainer(model, optimizer, schedule=StepDecay(1.0, step_size=1, gamma=0.1), rng=0)
        history = trainer.fit(data, epochs=3, batch_size=8)
        rates = history.metric("learning_rate")
        assert rates[0] == pytest.approx(1.0)
        assert rates[2] == pytest.approx(0.01)

    def test_model_left_in_eval_mode(self):
        data = easy_dataset(n_per_class=5)
        model = make_tiny_model()
        Trainer(model, Adam(model.parameters()), rng=0).fit(data, epochs=1)
        assert model.training is False

    def test_rejects_empty_dataset(self):
        model = make_tiny_model()
        empty = ArrayDataset(np.zeros((0, 1, 10, 10)), np.zeros(0, dtype=int), 4)
        with pytest.raises(DatasetError):
            Trainer(model, Adam(model.parameters()), rng=0).fit(empty, epochs=1)

    def test_rejects_invalid_epochs(self):
        model = make_tiny_model()
        with pytest.raises(ConfigurationError):
            Trainer(model, Adam(model.parameters()), rng=0).fit(easy_dataset(), epochs=0)

    def test_evaluate_returns_loss_and_accuracy(self):
        data = easy_dataset(n_per_class=5)
        model = make_tiny_model()
        loss, acc = evaluate(model, data)
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_gradient_clipping_configuration(self):
        model = make_tiny_model()
        with pytest.raises(ConfigurationError):
            Trainer(model, Adam(model.parameters()), grad_clip_norm=0.0)


class TestCallbacks:
    def test_early_stopping_stops_on_plateau(self):
        cb = EarlyStopping(monitor="train_loss", patience=1, mode="min")
        cb.on_train_begin()
        for epoch, loss in enumerate([1.0, 0.9, 0.9, 0.9]):
            cb.on_epoch_end(EpochRecord(epoch, loss, 0.5))
        assert cb.should_stop()

    def test_early_stopping_does_not_stop_while_improving(self):
        cb = EarlyStopping(monitor="train_loss", patience=1, mode="min")
        cb.on_train_begin()
        for epoch, loss in enumerate([1.0, 0.8, 0.6, 0.4]):
            cb.on_epoch_end(EpochRecord(epoch, loss, 0.5))
        assert not cb.should_stop()

    def test_target_accuracy_stopping(self):
        cb = TargetAccuracyStopping(target=0.9)
        cb.on_train_begin()
        cb.on_epoch_end(EpochRecord(0, 1.0, 0.95))
        assert cb.should_stop()

    def test_trainer_honours_stopping_callback(self):
        data = easy_dataset()
        model = make_tiny_model()
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.02),
            callbacks=[TargetAccuracyStopping(target=0.5)], rng=0,
        )
        history = trainer.fit(data, epochs=20, batch_size=16)
        assert len(history) < 20

    def test_epoch_logger_formats_lines(self):
        lines = []
        logger = EpochLogger(print_fn=lines.append)
        logger.on_epoch_end(EpochRecord(3, 0.5, 0.8, val_loss=0.6, val_accuracy=0.7))
        assert len(lines) == 1
        assert "epoch   3" in lines[0] and "val_acc" in lines[0]

    def test_lambda_callback_invokes_functions(self):
        seen = []
        cb = LambdaCallback(on_epoch_end=lambda record: seen.append(record.epoch))
        cb.on_train_begin()
        cb.on_epoch_end(EpochRecord(0, 1.0, 0.1))
        cb.on_train_end()
        assert seen == [0]

    def test_early_stopping_validation(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(mode="sideways")
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=-1)


class TestHistory:
    def test_metric_series_and_best_epoch(self):
        history = History()
        history.append(EpochRecord(0, 1.0, 0.5, val_accuracy=0.6))
        history.append(EpochRecord(1, 0.5, 0.7, val_accuracy=0.8))
        history.append(EpochRecord(2, 0.4, 0.75, val_accuracy=0.7))
        assert history.metric("train_loss") == [1.0, 0.5, 0.4]
        assert history.best_epoch("val_accuracy").epoch == 1
        assert history.best_epoch("train_loss", mode="min").epoch == 2

    def test_empty_history(self):
        history = History()
        assert history.final is None
        assert history.best_epoch() is None
        assert len(history) == 0

    def test_as_dicts_round_trip(self):
        record = EpochRecord(0, 1.0, 0.5)
        history = History([record])
        payload = history.as_dicts()
        assert payload[0]["epoch"] == 0
        assert payload[0]["val_loss"] is None
