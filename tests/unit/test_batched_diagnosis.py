"""Parity suite pinning the batched diagnosis core to the per-case references.

Every batched kernel introduced by the diagnosis rework — the vectorized
pairwise matrix, the cross/stack divergence kernels, the array-wide
trajectory statistics, the batched specifics computation, and the
single-matmul defect classifier — is asserted to match its retained loop
reference to ``1e-12`` on random trajectory stacks and on a real fitted
library, including the edge cases (single case, single class, single layer,
empty member sets, classes without patterns).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.trajectory import (
    batch_commitment_depth,
    batch_divergence_layer,
    batch_entropy_profile,
    batch_layer_stability,
    batch_trajectory_divergence,
    batch_trajectory_similarity,
    commitment_depth,
    cross_trajectory_divergences,
    divergence_layer,
    entropy_profile,
    layer_stability,
    pairwise_trajectory_divergences,
    pairwise_trajectory_divergences_reference,
    trajectory_divergence,
    trajectory_similarity,
)
from repro.core import (
    DefectCaseClassifier,
    DiagnosisContext,
    FootprintSpecifics,
    PatternLibrary,
    SoftmaxInstrumentedModel,
    build_feature_matrix,
    build_feature_vector,
    compute_specifics,
    compute_specifics_batch,
)
from repro.core.footprint import FootprintExtractor
from repro.exceptions import ConfigurationError, ShapeError

from tests.conftest import make_tiny_generator, make_tiny_model

PARITY = 1e-12


def random_stack(rng: np.random.Generator, n: int, l: int, c: int) -> np.ndarray:
    """A random stack of N trajectories with proper per-layer distributions."""
    x = rng.random((n, l, c)) + 1e-3
    return x / x.sum(axis=2, keepdims=True)


class TestBatchedTrajectoryKernels:
    @pytest.mark.parametrize("shape", [(7, 5, 10), (1, 4, 6), (3, 1, 4), (12, 6, 2)])
    @pytest.mark.parametrize("emphasis", [0.0, 0.5, 1.0])
    def test_pairwise_matches_loop_reference(self, rng, shape, emphasis):
        stack = random_stack(rng, *shape)
        fast = pairwise_trajectory_divergences(stack, late_layer_emphasis=emphasis)
        slow = pairwise_trajectory_divergences_reference(stack, late_layer_emphasis=emphasis)
        assert fast.shape == slow.shape == (shape[0], shape[0])
        assert np.max(np.abs(fast - slow)) <= PARITY
        assert np.max(np.abs(fast - fast.T)) <= PARITY
        assert np.all(np.diag(fast) == 0.0)

    def test_pairwise_empty_stack(self):
        assert pairwise_trajectory_divergences(np.zeros((0, 3, 4))).shape == (0, 0)

    def test_cross_matches_per_pair_loop(self, rng):
        a, b = random_stack(rng, 5, 4, 6), random_stack(rng, 8, 4, 6)
        matrix = cross_trajectory_divergences(a, b, late_layer_emphasis=0.7)
        for i in range(a.shape[0]):
            for j in range(b.shape[0]):
                expected = trajectory_divergence(a[i], b[j], late_layer_emphasis=0.7)
                assert abs(matrix[i, j] - expected) <= PARITY

    def test_cross_blocking_is_transparent(self, rng, monkeypatch):
        import repro.analysis.trajectory as trajectory_module

        a, b = random_stack(rng, 9, 3, 5), random_stack(rng, 6, 3, 5)
        full = cross_trajectory_divergences(a, b)
        monkeypatch.setattr(trajectory_module, "_CROSS_BLOCK_ELEMENTS", 32)
        blocked = cross_trajectory_divergences(a, b)
        assert np.array_equal(full, blocked)

    def test_cross_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            cross_trajectory_divergences(random_stack(rng, 2, 3, 4), random_stack(rng, 2, 3, 5))
        with pytest.raises(ShapeError):
            cross_trajectory_divergences(np.zeros((2, 3)), np.zeros((2, 3, 4)))

    def test_batch_divergence_and_similarity_to_reference(self, rng):
        stack = random_stack(rng, 6, 5, 4)
        reference = random_stack(rng, 1, 5, 4)[0]
        divs = batch_trajectory_divergence(stack, reference, late_layer_emphasis=0.8)
        sims = batch_trajectory_similarity(stack, reference, late_layer_emphasis=0.8)
        for i in range(stack.shape[0]):
            assert abs(divs[i] - trajectory_divergence(stack[i], reference, 0.8)) <= PARITY
            assert abs(sims[i] - trajectory_similarity(stack[i], reference, 0.8)) <= PARITY


class TestBatchedTrajectoryStatistics:
    @pytest.mark.parametrize("shape", [(9, 5, 6), (1, 5, 6), (4, 1, 3)])
    def test_statistics_match_per_case(self, rng, shape):
        stack = random_stack(rng, *shape)
        n, _, c = shape
        true = np.asarray(rng.integers(0, c, n))
        predicted = np.asarray(rng.integers(0, c, n))
        layers = batch_divergence_layer(stack, true)
        depths = batch_commitment_depth(stack, predicted)
        entropies = batch_entropy_profile(stack)
        stabilities = batch_layer_stability(stack)
        for i in range(n):
            assert layers[i] == divergence_layer(stack[i], int(true[i]))
            assert depths[i] == commitment_depth(stack[i], int(predicted[i]))
            assert np.max(np.abs(entropies[i] - entropy_profile(stack[i]))) <= PARITY
            assert abs(stabilities[i] - layer_stability(stack[i])) <= PARITY

    def test_committed_and_never_diverging_cases(self):
        # A trajectory locked onto class 0 from the first layer.
        stack = np.tile(np.array([[0.9, 0.1], [0.9, 0.1], [0.9, 0.1]]), (2, 1, 1))
        assert np.all(batch_divergence_layer(stack, np.zeros(2, dtype=int)) == 3)
        assert np.all(batch_commitment_depth(stack, np.zeros(2, dtype=int)) == 1.0)
        assert np.all(batch_commitment_depth(stack, np.ones(2, dtype=int)) == 0.0)

    def test_range_validation(self, rng):
        stack = random_stack(rng, 3, 4, 5)
        with pytest.raises(ShapeError):
            batch_divergence_layer(stack, np.array([0, 1, 5]))
        with pytest.raises(ShapeError):
            batch_commitment_depth(stack, np.array([-1, 0, 1]))
        with pytest.raises(ShapeError):
            batch_divergence_layer(stack, np.array([0, 1]))


def make_specifics(rng: np.random.Generator) -> FootprintSpecifics:
    values = rng.random(12)
    return FootprintSpecifics(
        predicted=1,
        true_label=0,
        final_confidence=float(values[0]),
        commitment=float(values[1]),
        match_predicted=float(values[2]),
        match_true=float(values[3]),
        best_match=float(values[4]),
        best_match_class=2,
        atypicality_true=float(values[5]),
        mean_entropy=float(values[6]),
        early_entropy=float(values[7]),
        divergence_point=float(values[8]),
        stability=float(values[9]),
        late_entropy=float(values[10]),
        nn_typicality_predicted=float(values[11]),
        nn_typicality_true=float(values[11] * 0.5),
    )


class TestBatchedClassifier:
    def test_feature_matrix_rows_match_vectors(self, rng):
        context = DiagnosisContext(0.3, 0.2, 0.9, 0.1)
        specifics = [make_specifics(rng) for _ in range(17)]
        matrix = build_feature_matrix(specifics, context)
        for row, s in zip(matrix, specifics):
            assert np.array_equal(row, build_feature_vector(s, context))

    @pytest.mark.parametrize("soft", [True, False])
    def test_classify_batch_matches_reference(self, rng, soft):
        from repro.core import DefectClassifierConfig

        config = DefectClassifierConfig(soft_assignment=soft, temperature=0.35)
        classifier = DefectCaseClassifier(config)
        context = DiagnosisContext(0.6, 0.1, 0.8, 0.2)
        specifics = [make_specifics(rng) for _ in range(25)]
        batched = classifier.classify_batch(specifics, context)
        for s, verdict in zip(specifics, batched):
            reference = classifier.classify_case_reference(s, context)
            assert verdict.verdict == reference.verdict
            for defect in verdict.scores:
                assert abs(verdict.scores[defect] - reference.scores[defect]) <= PARITY
                assert abs(verdict.evidence[defect] - reference.evidence[defect]) <= PARITY

    def test_classify_case_is_thin_view_over_batch(self, rng):
        classifier = DefectCaseClassifier()
        s = make_specifics(rng)
        view = classifier.classify_case(s)
        reference = classifier.classify_case_reference(s)
        assert view.verdict == reference.verdict
        for defect in view.scores:
            assert abs(view.scores[defect] - reference.scores[defect]) <= PARITY

    @pytest.mark.parametrize("n", [1, 40])
    def test_aggregate_matches_reference(self, rng, n):
        classifier = DefectCaseClassifier()
        context = DiagnosisContext(0.4, 0.3, 0.7, 0.0)
        specifics = [make_specifics(rng) for _ in range(n)]
        batched = classifier.aggregate(specifics, context=context)
        reference = classifier.aggregate_reference(specifics, context=context)
        assert batched.num_cases == reference.num_cases == n
        for defect in batched.ratios:
            assert abs(batched.ratios[defect] - reference.ratios[defect]) <= PARITY
            assert batched.counts[defect] == reference.counts[defect]
        assert batched.dominant_defect == reference.dominant_defect

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DefectCaseClassifier().aggregate([])
        with pytest.raises(ConfigurationError):
            DefectCaseClassifier().aggregate_reference([])


@pytest.fixture(scope="module")
def fitted_library_and_footprints():
    """A fitted library plus labeled faulty footprints on the tiny task."""
    generator = make_tiny_generator()
    train, test = generator.splits(n_train_per_class=12, n_test_per_class=10, rng=0)
    model = make_tiny_model()
    model.eval()
    instrumented = SoftmaxInstrumentedModel(model, probe_epochs=2, rng=0).fit(train)
    library = PatternLibrary(instrumented).fit(train)
    inputs, _ = test.arrays()
    trajectories, final_probs = instrumented.layer_distributions(inputs)
    labels = (final_probs.argmax(axis=1) + 1) % generator.config.num_classes
    footprints = FootprintExtractor(instrumented).from_arrays(
        trajectories, final_probs, labels
    )
    return library, footprints


class TestBatchedSpecifics:
    def _assert_parity(self, library, footprints):
        batched = compute_specifics_batch(footprints, library)
        assert len(batched) == len(footprints)
        for fp, spec in zip(footprints, batched):
            reference = compute_specifics(fp, library)
            for key, value in reference.as_dict().items():
                assert abs(float(spec.as_dict()[key]) - float(value)) <= PARITY, key

    def test_matches_per_case_reference(self, fitted_library_and_footprints):
        library, footprints = fitted_library_and_footprints
        self._assert_parity(library, footprints)

    def test_single_case(self, fitted_library_and_footprints):
        library, footprints = fitted_library_and_footprints
        self._assert_parity(library, footprints[:1])

    def test_empty_batch(self, fitted_library_and_footprints):
        library, _ = fitted_library_and_footprints
        assert compute_specifics_batch([], library) == []

    def test_single_class_library_and_missing_patterns(self, fitted_library_and_footprints):
        """Classes without patterns fall back exactly like the per-case path."""
        library, footprints = fitted_library_and_footprints
        reduced = PatternLibrary(library.instrumented)
        only_class = min(library.patterns)
        reduced.patterns = {only_class: library.patterns[only_class]}
        reduced._training_inconsistency = 0.0
        reduced._fitted = True
        self._assert_parity(reduced, footprints)

    def test_empty_member_sets(self, fitted_library_and_footprints):
        """member_trajectories=None triggers the mean-trajectory fallback."""
        library, footprints = fitted_library_and_footprints
        stripped = PatternLibrary(library.instrumented)
        stripped.patterns = {
            class_id: dataclasses.replace(pattern, member_trajectories=None)
            for class_id, pattern in library.patterns.items()
        }
        stripped._training_inconsistency = 0.0
        stripped._fitted = True
        self._assert_parity(stripped, footprints)

    def test_requires_true_labels(self, fitted_library_and_footprints):
        library, footprints = fitted_library_and_footprints
        unlabeled = dataclasses.replace(footprints[0], true_label=None)
        with pytest.raises(ConfigurationError):
            compute_specifics_batch([unlabeled], library)

    def test_library_batch_queries_match_per_case(self, fitted_library_and_footprints):
        library, footprints = fitted_library_and_footprints
        stack = np.stack([fp.trajectory for fp in footprints])
        matches = library.batch_pattern_matches(stack)
        lookup = matches.column_lookup()
        predicted = np.asarray([fp.predicted for fp in footprints])
        typicality = library.batch_nn_typicality(stack, predicted)
        for i, fp in enumerate(footprints):
            for class_id in library.classes():
                column = lookup[class_id]
                assert abs(
                    matches.similarities[i, column] - library.similarity(fp, class_id)
                ) <= PARITY
            assert abs(
                typicality[i] - library.nn_typicality(fp, int(predicted[i]))
            ) <= PARITY

    def test_refit_replaces_patterns_wholesale(self, fitted_library_and_footprints):
        """Classes absent from a second fit must not survive from the first."""
        from repro.data import ArrayDataset

        library, _ = fitted_library_and_footprints
        generator = make_tiny_generator()
        train, _ = generator.splits(n_train_per_class=12, n_test_per_class=2, rng=1)
        refit = PatternLibrary(library.instrumented).fit(train)
        assert set(refit.patterns) == {0, 1, 2, 3}
        keep = train.labels < 2
        reduced = ArrayDataset(
            train.inputs[keep], train.labels[keep],
            num_classes=generator.config.num_classes, name="reduced",
        )
        refit.fit(reduced)
        assert set(refit.patterns) == {0, 1}
        assert refit.batch_pattern_matches(
            np.stack([refit.patterns[0].mean_trajectory])
        ).similarities.shape == (1, 2)

    def test_batch_index_invalidates_on_in_place_replacement(
        self, fitted_library_and_footprints
    ):
        """Swapping one class's pattern object must rebuild the batched stacks."""
        library, footprints = fitted_library_and_footprints
        fresh = PatternLibrary(library.instrumented)
        fresh.patterns = dict(library.patterns)
        fresh._training_inconsistency = 0.0
        fresh._fitted = True
        stack = np.stack([fp.trajectory for fp in footprints[:3]])
        before = fresh.batch_pattern_matches(stack)  # populates the cache
        class_id = min(fresh.patterns)
        replacement = dataclasses.replace(
            fresh.patterns[class_id],
            mean_trajectory=np.roll(fresh.patterns[class_id].mean_trajectory, 1, axis=1),
        )
        fresh.patterns[class_id] = replacement
        after = fresh.batch_pattern_matches(stack)
        column = after.column_lookup()[class_id]
        assert not np.allclose(before.similarities[:, column], after.similarities[:, column])
        for i, fp in enumerate(footprints[:3]):
            assert abs(
                after.similarities[i, column] - fresh.similarity(fp, class_id)
            ) <= PARITY

    def test_pattern_overlap_matches_pair_loop(self, fitted_library_and_footprints):
        library, _ = fitted_library_and_footprints
        class_ids = library.classes()
        pairs = [
            trajectory_similarity(
                library.patterns[a].mean_trajectory,
                library.patterns[b].mean_trajectory,
                late_layer_emphasis=library.late_layer_emphasis,
            )
            for i, a in enumerate(class_ids)
            for b in class_ids[i + 1:]
        ]
        assert abs(library.pattern_overlap() - float(np.mean(pairs))) <= PARITY
