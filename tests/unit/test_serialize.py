"""Tests for model / footprint / report persistence."""

import numpy as np
import pytest

from repro.core import DefectCaseClassifier, DiagnosisContext, Footprint
from repro.exceptions import SerializationError
from repro.models import LeNet, ResNet
from repro.serialize import (
    load_footprints,
    load_model,
    load_report,
    save_footprints,
    save_model,
    save_report,
)
from tests.unit.test_core_classifier import make_specifics


class TestModelPersistence:
    def test_round_trip_preserves_predictions(self, tmp_path):
        model = LeNet(input_shape=(1, 10, 10), num_classes=4, conv_channels=(3,),
                      dense_units=(12,), kernel_size=3, rng=0)
        x = np.random.default_rng(0).random((5, 1, 10, 10))
        expected = model.predict_logits(x)

        path = save_model(model, tmp_path / "model.npz")
        restored = load_model(path)
        np.testing.assert_allclose(restored.predict_logits(x), expected, atol=1e-12)
        assert restored.kind == "lenet"
        assert restored.num_parameters() == model.num_parameters()

    def test_round_trip_resnet(self, tmp_path):
        model = ResNet(input_shape=(3, 16, 16), num_classes=10,
                       base_channels=4, block_counts=(1,), rng=0)
        x = np.random.default_rng(1).random((2, 3, 16, 16))
        path = save_model(model, tmp_path / "resnet.npz")
        restored = load_model(path)
        np.testing.assert_allclose(restored.predict_logits(x), model.predict_logits(x), atol=1e-12)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model(tmp_path / "missing.npz")

    def test_load_rejects_non_model_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(SerializationError):
            load_model(path)


class TestFootprintPersistence:
    def _footprints(self, n=4):
        rng = np.random.default_rng(0)
        out = []
        for _ in range(n):
            trajectory = rng.dirichlet(np.ones(3), size=2)
            final = rng.dirichlet(np.ones(3))
            out.append(Footprint(
                trajectory=trajectory,
                final_probs=final,
                predicted=int(final.argmax()),
                true_label=int(rng.integers(0, 3)),
                layer_names=("a", "b"),
            ))
        return out

    def test_round_trip(self, tmp_path):
        footprints = self._footprints()
        path = save_footprints(footprints, tmp_path / "fp.npz")
        restored = load_footprints(path)
        assert len(restored) == len(footprints)
        for original, loaded in zip(footprints, restored):
            np.testing.assert_allclose(loaded.trajectory, original.trajectory)
            np.testing.assert_allclose(loaded.final_probs, original.final_probs)
            assert loaded.predicted == original.predicted
            assert loaded.true_label == original.true_label
            assert loaded.layer_names == original.layer_names

    def test_unlabeled_footprints_round_trip(self, tmp_path):
        fp = Footprint(
            trajectory=np.array([[0.5, 0.5]]), final_probs=np.array([0.5, 0.5]), predicted=0
        )
        restored = load_footprints(save_footprints([fp], tmp_path / "fp.npz"))[0]
        assert restored.true_label is None

    def test_empty_list_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_footprints([], tmp_path / "fp.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_footprints(tmp_path / "missing.npz")


class TestReportPersistence:
    def test_round_trip(self, tmp_path):
        report = DefectCaseClassifier().aggregate(
            [make_specifics()], DiagnosisContext(), metadata={"model": "lenet"}
        )
        path = save_report(report, tmp_path / "report.json")
        payload = load_report(path)
        assert payload["num_cases"] == 1
        assert payload["metadata"]["model"] == "lenet"
        assert set(payload["ratios"]) == {"itd", "utd", "sd"}

    def test_load_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(SerializationError):
            load_report(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_report(tmp_path / "missing.json")
