"""Unit tests for the gateway's building blocks: HTTP parsing and the replica pool.

The replica pool is tested against lightweight fake services so the routing
and admission logic is exercised without training models; the real end-to-end
behaviour lives in ``tests/integration/test_gateway_http.py``.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ServeError, ServiceSaturatedError
from repro.serve import JobStore, MetricsRegistry, ReplicaPool, parse_request_head


# ----------------------------------------------------------- HTTP head parsing


class TestParseRequestHead:
    def test_parses_method_path_version_headers(self):
        head = (
            b"POST /diagnose HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 42\r\n"
            b"\r\n"
        )
        request = parse_request_head(head)
        assert request.method == "POST"
        assert request.path == "/diagnose"
        assert request.version == "HTTP/1.1"
        assert request.headers["content-type"] == "application/json"
        assert request.content_length == 42
        assert request.keep_alive

    def test_connection_close_disables_keep_alive(self):
        request = parse_request_head(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        request = parse_request_head(b"GET /health HTTP/1.0\r\n\r\n")
        assert not request.keep_alive
        request = parse_request_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive

    def test_missing_content_length_is_zero(self):
        assert parse_request_head(b"GET / HTTP/1.1\r\n\r\n").content_length == 0

    @pytest.mark.parametrize(
        "head",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /too many parts HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
        ],
    )
    def test_malformed_heads_raise(self, head):
        with pytest.raises(ServeError):
            parse_request_head(head)

    def test_transfer_encoding_is_rejected(self):
        with pytest.raises(ServeError):
            parse_request_head(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    @pytest.mark.parametrize("value", [b"-1", b"nan", b"1e3"])
    def test_invalid_content_length_raises(self, value):
        request = parse_request_head(b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
        with pytest.raises(ServeError):
            request.content_length


# --------------------------------------------------------------- replica pool


class FakeService:
    """The slice of DiagnosisService the pool touches, without any model."""

    def __init__(self, index: int):
        self.index = index
        self.metrics = MetricsRegistry()
        self.jobs = JobStore()
        self.calls = 0
        self.closed = False

    def diagnose_dict(self, name, inputs, labels, **kwargs):
        self.calls += 1
        return {"replica": self.index, "model": name}

    def submit_diagnosis(self, name, inputs, labels, **kwargs):
        job = self.jobs.create(kind="diagnosis", details={"replica": self.index})
        self.jobs.mark_succeeded(job.job_id, {"replica": self.index})
        return job

    def stats(self):
        return {"replica": self.index}

    def close(self):
        self.closed = True


def make_pool(**kwargs) -> ReplicaPool:
    return ReplicaPool(lambda index: FakeService(index), **kwargs)


class TestReplicaPoolRouting:
    def test_round_robin_when_equally_loaded(self):
        pool = make_pool(num_replicas=3)
        indices = []
        for _ in range(6):
            lease = pool.acquire()
            indices.append(lease.replica_index)
            lease.release()
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_prefers_least_loaded_replica(self):
        pool = make_pool(num_replicas=2, max_queue_per_replica=4)
        first = pool.acquire()
        assert first.replica_index == 0
        # Replica 0 is busy, so the next two admissions both land on 1 and 0
        # only returns once it is the least-loaded again.
        second = pool.acquire()
        assert second.replica_index == 1
        second.release()
        third = pool.acquire()
        assert third.replica_index == 1
        first.release()
        third.release()

    def test_full_replica_is_skipped(self):
        pool = make_pool(num_replicas=2, max_queue_per_replica=1, max_inflight=2)
        first = pool.acquire()
        second = pool.acquire()
        assert {first.replica_index, second.replica_index} == {0, 1}

    def test_release_is_idempotent(self):
        pool = make_pool(num_replicas=1)
        lease = pool.acquire()
        lease.release()
        lease.release()
        assert pool.inflight == 0

    def test_lease_as_context_manager(self):
        pool = make_pool(num_replicas=1)
        with pool.acquire() as service:
            assert isinstance(service, FakeService)
            assert pool.inflight == 1
        assert pool.inflight == 0


class TestReplicaPoolAdmission:
    def test_sheds_when_every_queue_is_full(self):
        pool = make_pool(num_replicas=2, max_queue_per_replica=1)
        leases = [pool.acquire(), pool.acquire()]
        with pytest.raises(ServiceSaturatedError) as excinfo:
            pool.acquire()
        assert excinfo.value.retry_after == pool.retry_after_seconds
        assert pool.metrics.counter("pool.shed_total").value == 1
        for lease in leases:
            lease.release()
        pool.acquire().release()

    def test_pool_wide_cap_sheds_before_queues_fill(self):
        pool = make_pool(num_replicas=2, max_queue_per_replica=8, max_inflight=3)
        leases = [pool.acquire() for _ in range(3)]
        with pytest.raises(ServiceSaturatedError):
            pool.acquire()
        for lease in leases:
            lease.release()

    def test_diagnose_dict_releases_even_on_error(self):
        pool = make_pool(num_replicas=1, max_queue_per_replica=1)
        pool.replicas[0].diagnose_dict = lambda *a, **k: (_ for _ in ()).throw(ValueError("x"))
        with pytest.raises(ValueError):
            pool.diagnose_dict("m", [], [])
        assert pool.inflight == 0

    def test_constructor_validation(self):
        with pytest.raises(ServeError):
            make_pool(num_replicas=0)
        with pytest.raises(ServeError):
            make_pool(num_replicas=1, max_queue_per_replica=0)
        with pytest.raises(ServeError):
            make_pool(num_replicas=1, max_inflight=0)


class TestReplicaPoolJobs:
    def test_submit_job_routes_and_find_job_searches_all_stores(self):
        pool = make_pool(num_replicas=2)
        replica_index, job = pool.submit_job("m", [], [])
        found_index, found = pool.find_job(job.job_id)
        assert found_index == replica_index
        assert found.job_id == job.job_id
        with pytest.raises(ServeError):
            pool.find_job("missing")

    def test_list_jobs_merges_across_replicas(self):
        pool = make_pool(num_replicas=2)
        ids = {pool.submit_job("m", [], [])[1].job_id for _ in range(4)}
        listed = pool.list_jobs()
        assert {record["job_id"] for record in listed} == ids
        assert {record["replica"] for record in listed} == {0, 1}
        stamps = [record["submitted_at"] for record in listed]
        assert stamps == sorted(stamps, reverse=True)


class TestReplicaPoolLifecycle:
    def test_close_closes_every_replica_and_blocks_acquire(self):
        pool = make_pool(num_replicas=2)
        pool.close()
        assert all(service.closed for service in pool.replicas)
        with pytest.raises(ServeError):
            pool.acquire()
        with pytest.raises(ServeError):
            pool.submit_job("m", [], [])

    def test_stats_shape(self):
        pool = make_pool(num_replicas=2, max_queue_per_replica=4)
        lease = pool.acquire()
        stats = pool.stats()
        assert stats["num_replicas"] == 2
        assert stats["inflight_per_replica"] == [1, 0]
        assert stats["assigned_per_replica"] == [1, 0]
        assert stats["shed_total"] == 0
        assert len(stats["replicas"]) == 2
        lease.release()

    def test_metrics_snapshot_aggregates_replica_counters(self):
        pool = make_pool(num_replicas=2)
        pool.diagnose_dict("m", [], [])
        pool.diagnose_dict("m", [], [])
        snapshot = pool.metrics_snapshot()
        assert set(snapshot) == {"pool", "replicas", "aggregate_counters"}
        assert len(snapshot["replicas"]) == 2
        assert snapshot["aggregate_counters"]["replica.assigned_total"] == 2
