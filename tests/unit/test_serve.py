"""Unit tests for the serving subsystem: cache, batching engine, registry, jobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ArtifactNotFoundError, ServeError
from repro.serve import (
    ArtifactRegistry,
    BatchingEngine,
    ExtractionRequest,
    FootprintCache,
    JobStatus,
    JobStore,
    LRUCache,
    WorkerPool,
    input_digest,
)

NUM_LAYERS = 3
NUM_CLASSES = 4


# ---------------------------------------------------------------- LRU cache


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats()["evictions"] == 0

    def test_zero_maxsize_disables_storage(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestInputDigest:
    def test_equal_content_equal_digest(self):
        row = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert input_digest(row) == input_digest(row.copy())

    def test_shape_and_dtype_matter(self):
        row = np.arange(12, dtype=np.float64)
        assert input_digest(row) != input_digest(row.reshape(3, 4))
        assert input_digest(row) != input_digest(row.astype(np.float32))

    def test_content_matters(self):
        row = np.zeros(8)
        other = row.copy()
        other[3] = 1e-9
        assert input_digest(row) != input_digest(other)


class TestFootprintCache:
    def test_lookup_miss_store_hit(self):
        cache = FootprintCache(maxsize=16)
        inputs = np.random.default_rng(0).random((2, 1, 4, 4))
        entries, digests = cache.lookup("m@v1", inputs)
        assert entries == [None, None]
        cache.store("m@v1", digests[0], np.ones((3, 4)), np.ones(4))
        entries, _ = cache.lookup("m@v1", inputs)
        assert entries[0] is not None
        assert entries[1] is None
        trajectory, final = entries[0]
        np.testing.assert_array_equal(trajectory, np.ones((3, 4)))
        np.testing.assert_array_equal(final, np.ones(4))

    def test_model_key_partitions_the_cache(self):
        cache = FootprintCache(maxsize=16)
        inputs = np.random.default_rng(1).random((1, 2, 2))
        _, digests = cache.lookup("m@v1", inputs)
        cache.store("m@v1", digests[0], np.zeros((3, 4)), np.zeros(4))
        entries, _ = cache.lookup("m@v2", inputs)
        assert entries == [None]


# ------------------------------------------------------------ batching engine


def _stub_extract_factory(calls):
    """An extract_fn standing in for the instrumented model.

    Encodes each input row's first element into the output so per-request
    splitting can be verified, and records every call for coalescing asserts.
    """

    def extract(model_key, groups):
        calls.append((model_key, [g.shape[0] for g in groups]))
        results = []
        for group in groups:
            n = group.shape[0]
            trajectories = np.zeros((n, NUM_LAYERS, NUM_CLASSES))
            finals = np.zeros((n, NUM_CLASSES))
            for i in range(n):
                trajectories[i] = float(group[i].flat[0])
                finals[i] = float(group[i].flat[0])
            results.append((trajectories, finals))
        return results

    return extract


class TestBatchingEngine:
    def test_process_batch_coalesces_requests_into_one_extraction(self):
        calls = []
        engine = BatchingEngine(_stub_extract_factory(calls), cache=None)
        rng = np.random.default_rng(2)
        req_a = ExtractionRequest("m@v1", rng.random((3, 2)) + 1)
        req_b = ExtractionRequest("m@v1", rng.random((5, 2)) + 10)
        # A gathered batch goes through ONE extraction call for both requests.
        engine.process_batch([req_a, req_b])
        assert len(calls) == 1
        model_key, group_sizes = calls[0]
        assert model_key == "m@v1"
        assert sum(group_sizes) == 8
        assert req_a.future.result(timeout=1)[0].shape[0] == 3
        assert req_b.future.result(timeout=1)[0].shape[0] == 5

    def test_results_split_back_per_request(self):
        calls = []
        engine = BatchingEngine(_stub_extract_factory(calls), cache=None)
        a = np.full((2, 3), 7.0)
        b = np.full((4, 3), 9.0)
        ra = engine.submit("m@v1", a)
        rb = engine.submit("m@v1", b)
        traj_a, final_a = ra.future.result(timeout=1)
        traj_b, final_b = rb.future.result(timeout=1)
        assert traj_a.shape == (2, NUM_LAYERS, NUM_CLASSES)
        assert traj_b.shape == (4, NUM_LAYERS, NUM_CLASSES)
        assert np.all(traj_a == 7.0) and np.all(final_a == 7.0)
        assert np.all(traj_b == 9.0) and np.all(final_b == 9.0)

    def test_requests_for_different_models_are_not_mixed(self):
        calls = []
        engine = BatchingEngine(_stub_extract_factory(calls), cache=None)
        ra = ExtractionRequest("m@v1", np.full((2, 2), 1.0))
        rb = ExtractionRequest("other@v3", np.full((2, 2), 2.0))
        engine.process_batch([ra, rb])
        assert sorted(key for key, _ in calls) == ["m@v1", "other@v3"]

    def test_duplicate_rows_in_one_batch_extracted_once(self):
        calls = []
        cache = FootprintCache(maxsize=64)
        engine = BatchingEngine(_stub_extract_factory(calls), cache=cache)
        row = np.full((1, 2), 5.0)
        requests = [ExtractionRequest("m@v1", row.copy()) for _ in range(4)]
        engine.process_batch(requests)
        # One extraction call for ONE unique row, not four.
        assert calls == [("m@v1", [1])]
        for request in requests:
            trajectories, finals = request.future.result(timeout=1)
            assert np.all(trajectories == 5.0) and np.all(finals == 5.0)
        stats = engine.stats()
        assert stats["cases_extracted"] == 1
        assert stats["cases_from_cache"] == 3

    def test_cache_short_circuits_repeated_cases(self):
        calls = []
        cache = FootprintCache(maxsize=64)
        engine = BatchingEngine(_stub_extract_factory(calls), cache=cache)
        inputs = np.random.default_rng(3).random((6, 2))
        first = engine.extract("m@v1", inputs)
        assert len(calls) == 1
        second = engine.extract("m@v1", inputs)
        assert len(calls) == 1, "fully cached batch must not reach the model"
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
        stats = engine.stats()
        assert stats["cases_from_cache"] == 6
        assert stats["cases_extracted"] == 6

    def test_partial_cache_hit_extracts_only_missing_rows(self):
        calls = []
        cache = FootprintCache(maxsize=64)
        engine = BatchingEngine(_stub_extract_factory(calls), cache=cache)
        rng = np.random.default_rng(4)
        seen = rng.random((3, 2))
        engine.extract("m@v1", seen)
        calls.clear()
        fresh = rng.random((2, 2))
        mixed = np.concatenate([seen, fresh], axis=0)
        trajectories, finals = engine.extract("m@v1", mixed)
        assert len(calls) == 1
        assert calls[0][1] == [2], "only the 2 unseen rows reach extraction"
        assert trajectories.shape[0] == 5
        for i in range(5):
            assert np.all(trajectories[i] == mixed[i].flat[0])

    def test_background_thread_coalesces_concurrent_submissions(self):
        calls = []
        engine = BatchingEngine(
            _stub_extract_factory(calls), cache=None,
            max_batch_cases=64, max_wait_seconds=0.2,
        ).start()
        try:
            requests = [engine.submit("m@v1", np.full((2, 2), float(i))) for i in range(5)]
            results = [r.future.result(timeout=5) for r in requests]
            assert all(traj.shape[0] == 2 for traj, _ in results)
            # All 5 requests land within one 200 ms batching window.
            assert len(calls) < 5
        finally:
            engine.stop()

    def test_extract_fn_failure_fails_the_waiting_future(self):
        def broken(model_key, groups):
            raise RuntimeError("model exploded")

        engine = BatchingEngine(broken, cache=None)
        request = engine.submit("m@v1", np.ones((1, 2)))
        with pytest.raises(RuntimeError, match="model exploded"):
            request.future.result(timeout=1)

    def test_stop_fails_queued_requests(self):
        engine = BatchingEngine(_stub_extract_factory([]), cache=None)
        engine.start()
        engine.stop()
        assert not engine.is_running

    def test_invalid_knobs_rejected(self):
        fn = _stub_extract_factory([])
        with pytest.raises(ServeError):
            BatchingEngine(fn, max_batch_cases=0)
        with pytest.raises(ServeError):
            BatchingEngine(fn, max_wait_seconds=-1.0)


# ------------------------------------------------------------------ registry


class TestArtifactRegistry:
    def test_register_load_roundtrip_preserves_diagnosis(self, tmp_path, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        registry = ArtifactRegistry(tmp_path / "registry")
        record = registry.register("tiny", fitted_deepmorph, metadata={"note": "unit"})
        assert record.key == "tiny@v1"
        assert record.metadata == {"note": "unit"}
        assert record.model_kind == fitted_deepmorph.model.kind

        reloaded = registry.load("tiny")
        direct = fitted_deepmorph.diagnose_dataset(test)
        roundtrip = reloaded.diagnose_dataset(test)
        assert direct.ratios == roundtrip.ratios
        assert direct.num_cases == roundtrip.num_cases

    def test_versions_monotonic_and_latest_resolution(self, tmp_path, fitted_deepmorph):
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        registry.register("m", fitted_deepmorph)
        assert registry.versions("m") == ["v1", "v2"]
        assert registry.resolve("m") == "v2"
        assert registry.resolve("m", "v1") == "v1"
        assert registry.models() == ["m"]

    def test_versions_are_immutable(self, tmp_path, fitted_deepmorph):
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph, version="v3")
        with pytest.raises(ServeError, match="immutable"):
            registry.register("m", fitted_deepmorph, version="v3")

    def test_unknown_name_and_version_raise(self, tmp_path, fitted_deepmorph):
        registry = ArtifactRegistry(tmp_path / "registry")
        with pytest.raises(ArtifactNotFoundError):
            registry.versions("ghost")
        registry.register("m", fitted_deepmorph)
        with pytest.raises(ArtifactNotFoundError):
            registry.resolve("m", "v99")

    def test_invalid_names_rejected(self, tmp_path, fitted_deepmorph):
        registry = ArtifactRegistry(tmp_path / "registry")
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ServeError):
                registry.register(bad, fitted_deepmorph)

    def test_delete_version_and_model(self, tmp_path, fitted_deepmorph):
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        registry.register("m", fitted_deepmorph)
        registry.delete("m", "v2")
        assert registry.versions("m") == ["v1"]
        registry.delete("m")
        assert registry.models() == []
        with pytest.raises(ArtifactNotFoundError):
            registry.delete("m")

    def test_deleted_version_numbers_are_never_reused(self, tmp_path, fitted_deepmorph):
        # Serving caches key loaded artifacts by name@version, so a deleted
        # number must stay burned or a stale model would be served.
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        registry.register("m", fitted_deepmorph)
        registry.delete("m", "v2")
        record = registry.register("m", fitted_deepmorph)
        assert record.version == "v3"
        registry.delete("m")  # whole-model delete burns the numbers too
        record = registry.register("m", fitted_deepmorph)
        assert record.version == "v4"


# ------------------------------------------------------------------- service


class TestServiceEviction:
    def test_unregister_evicts_resident_model(self, tmp_path, fitted_deepmorph, tiny_splits):
        from repro.serve import DiagnosisService

        _, test = tiny_splits
        inputs, labels = test.arrays()
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        with DiagnosisService(registry, batch_wait_seconds=0.001, num_workers=1) as service:
            service.diagnose("m", inputs, labels)
            assert service.loaded_models() == ["m@v1"]
            service.unregister("m", "v1")
            assert service.loaded_models() == []
            assert service.cache.stats()["size"] == 0
            with pytest.raises(ArtifactNotFoundError):
                service.diagnose("m", inputs, labels, version="v1")


class TestServiceInferenceDtype:
    def test_override_forces_loaded_models_to_float64(
        self, tmp_path, fitted_deepmorph, tiny_splits
    ):
        from repro.serve import DiagnosisService

        _, test = tiny_splits
        inputs, labels = test.arrays()
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        with DiagnosisService(
            registry, batch_wait_seconds=0.001, num_workers=1, inference_dtype="float64"
        ) as service:
            report = service.diagnose("m", inputs, labels)
            assert report.num_cases > 0
            entry = service._entry(service.resolve_key("m"))
            assert entry.morph.instrumented.inference_dtype == np.float64
            assert service.stats()["inference_dtype"] == "float64"

    def test_default_keeps_artifact_policy(self, tmp_path, fitted_deepmorph):
        from repro.serve import DiagnosisService

        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        with DiagnosisService(registry, batch_wait_seconds=0.001, num_workers=1) as service:
            entry = service._entry(service.resolve_key("m"))
            # Artifacts record their own policy (float32 by default).
            assert entry.morph.instrumented.inference_dtype == np.float32
            assert service.stats()["inference_dtype"] == "per-model"

    def test_legacy_artifact_without_dtype_loads_as_float64(
        self, tmp_path, fitted_deepmorph
    ):
        # Artifacts saved before the dtype policy existed were validated
        # under float64 extraction; upgrading must not silently change what
        # they serve.
        import json

        from repro.serialize import load_deepmorph, save_deepmorph

        path = save_deepmorph(fitted_deepmorph, tmp_path / "legacy.npz")
        with np.load(path, allow_pickle=False) as payload:
            config = json.loads(str(payload["__config__"]))
            arrays = {key: payload[key] for key in payload.files if key != "__config__"}
        del config["instrumented"]["inference_dtype"]
        arrays["__config__"] = np.array(json.dumps(config))
        np.savez_compressed(path, **arrays)

        reloaded = load_deepmorph(path)
        assert reloaded.instrumented.inference_dtype == np.float64
        # The facade stays in lockstep so a refit keeps the artifact's policy.
        assert reloaded.inference_dtype == "float64"


# ---------------------------------------------------------------------- jobs


class TestJobs:
    def test_job_lifecycle(self):
        pool = WorkerPool(num_workers=1)
        try:
            job = pool.submit(lambda: {"answer": 42}, details={"model_key": "m@v1"})
            job = pool.wait_for(job.job_id, timeout=5)
            assert job.status == JobStatus.SUCCEEDED
            assert job.result == {"answer": 42}
            assert job.details == {"model_key": "m@v1"}
            assert job.started_at is not None and job.finished_at is not None
        finally:
            pool.shutdown()

    def test_failed_job_captures_error(self):
        pool = WorkerPool(num_workers=1)
        try:
            def boom():
                raise ValueError("bad batch")

            job = pool.wait_for(pool.submit(boom).job_id, timeout=5)
            assert job.status == JobStatus.FAILED
            assert "ValueError" in job.error and "bad batch" in job.error
        finally:
            pool.shutdown()

    def test_store_eviction_keeps_unfinished_jobs(self):
        store = JobStore(max_jobs=2)
        finished = store.create("diagnosis")
        store.mark_running(finished.job_id)
        store.mark_succeeded(finished.job_id, {})
        pending = [store.create("diagnosis") for _ in range(2)]
        counts = store.counts()
        assert counts["total"] == 2
        assert counts.get(JobStatus.SUCCEEDED, 0) == 0, "finished job evicted first"
        for job in pending:
            assert store.get(job.job_id).status == JobStatus.PENDING

    def test_unknown_job_raises(self):
        store = JobStore()
        with pytest.raises(ServeError):
            store.get("nope")
