"""Tests for defect injection (ITD, UTD, SD)."""

import numpy as np
import pytest

from repro.data import ArrayDataset, class_counts
from repro.defects import (
    DefectType,
    InsufficientTrainingData,
    StructureDefect,
    UnreliableTrainingData,
    build_defect,
)
from repro.exceptions import DefectInjectionError
from repro.models import AlexNet, DenseNet, LeNet, ResNet


@pytest.fixture()
def balanced_dataset():
    rng = np.random.default_rng(0)
    inputs = rng.random((100, 1, 8, 8))
    labels = np.repeat(np.arange(5), 20)
    return ArrayDataset(inputs, labels, num_classes=5, name="balanced")


class TestDefectType:
    def test_parse_case_insensitive(self):
        assert DefectType.from_string("ITD") is DefectType.ITD
        assert DefectType.from_string(" utd ") is DefectType.UTD

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            DefectType.from_string("bitrot")

    def test_injectable_excludes_none(self):
        assert DefectType.NONE not in DefectType.injectable()
        assert len(DefectType.injectable()) == 3


class TestInsufficientTrainingData:
    def test_removes_data_only_from_affected_classes(self, balanced_dataset):
        injector = InsufficientTrainingData(affected_classes=[1, 3], keep_fraction=0.25)
        injected, report = injector.apply(balanced_dataset, rng=0)
        counts = class_counts(injected)
        np.testing.assert_array_equal(counts[[0, 2, 4]], 20)
        assert counts[1] == 5 and counts[3] == 5
        assert report.defect_type is DefectType.ITD
        assert report.affected_classes == [1, 3]
        assert report.removed_per_class == {1: 15, 3: 15}
        assert report.injected_size == len(injected)

    def test_random_class_selection_is_reproducible(self, balanced_dataset):
        injector = InsufficientTrainingData(num_affected=2, keep_fraction=0.1)
        _, report_a = injector.apply(balanced_dataset, rng=7)
        _, report_b = injector.apply(balanced_dataset, rng=7)
        assert report_a.affected_classes == report_b.affected_classes

    def test_keeps_at_least_one_example_when_fraction_positive(self, balanced_dataset):
        injector = InsufficientTrainingData(affected_classes=[0], keep_fraction=0.01)
        injected, _ = injector.apply(balanced_dataset, rng=0)
        assert class_counts(injected)[0] >= 1

    def test_original_dataset_is_untouched(self, balanced_dataset):
        InsufficientTrainingData(affected_classes=[0], keep_fraction=0.1).apply(balanced_dataset, rng=0)
        np.testing.assert_array_equal(class_counts(balanced_dataset), 20)

    def test_rejects_bad_parameters(self):
        with pytest.raises(DefectInjectionError):
            InsufficientTrainingData(keep_fraction=1.0)
        with pytest.raises(DefectInjectionError):
            InsufficientTrainingData(affected_classes=None, num_affected=0)

    def test_rejects_out_of_range_class(self, balanced_dataset):
        with pytest.raises(DefectInjectionError):
            InsufficientTrainingData(affected_classes=[9]).apply(balanced_dataset)


class TestUnreliableTrainingData:
    def test_relabels_expected_fraction(self, balanced_dataset):
        injector = UnreliableTrainingData(source_class=2, target_class=4, fraction=0.5)
        injected, report = injector.apply(balanced_dataset, rng=0)
        counts = class_counts(injected)
        assert counts[2] == 10
        assert counts[4] == 30
        assert report.relabeled_count == 10
        assert report.relabel_map == {2: 4}
        assert len(injected) == len(balanced_dataset)

    def test_inputs_are_preserved(self, balanced_dataset):
        injector = UnreliableTrainingData(source_class=0, target_class=1, fraction=0.3)
        injected, _ = injector.apply(balanced_dataset, rng=0)
        np.testing.assert_allclose(injected.inputs, balanced_dataset.inputs)

    def test_random_source_and_target_differ(self, balanced_dataset):
        injector = UnreliableTrainingData(fraction=0.2)
        _, report = injector.apply(balanced_dataset, rng=3)
        (source, target), = report.relabel_map.items()
        assert source != target

    def test_rejects_equal_source_and_target(self):
        with pytest.raises(DefectInjectionError):
            UnreliableTrainingData(source_class=1, target_class=1)

    def test_rejects_invalid_fraction(self):
        with pytest.raises(DefectInjectionError):
            UnreliableTrainingData(fraction=0.0)


class TestStructureDefect:
    def test_lenet_loses_conv_stages_and_width(self):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        degraded, report = StructureDefect(keep_fraction=0.5, narrow_factor=0.5).apply(model, rng=1)
        original_convs = [n for n in model.stage_names() if n.startswith("conv")]
        degraded_convs = [n for n in degraded.stage_names() if n.startswith("conv")]
        assert len(degraded_convs) < len(original_convs)
        assert degraded.num_parameters() < model.num_parameters()
        assert report.defect_type is DefectType.SD
        assert report.removed_units

    def test_alexnet_pool_indices_stay_valid(self):
        model = AlexNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        degraded, _ = StructureDefect(keep_fraction=0.3).apply(model, rng=1)
        assert degraded.forward(np.zeros((2, 1, 14, 14))).shape == (2, 10)

    def test_resnet_block_budget_shrinks(self):
        model = ResNet(input_shape=(3, 16, 16), num_classes=10,
                       base_channels=8, block_counts=(2, 2), rng=0)
        degraded, _ = StructureDefect(keep_fraction=0.34).apply(model, rng=1)
        original_blocks = sum(1 for n in model.stage_names() if n.startswith("block"))
        degraded_blocks = sum(1 for n in degraded.stage_names() if n.startswith("block"))
        assert degraded_blocks < original_blocks
        assert degraded.forward(np.zeros((2, 3, 16, 16))).shape == (2, 10)

    def test_densenet_units_shrink(self):
        model = DenseNet(input_shape=(3, 16, 16), num_classes=10,
                         growth_rate=4, units_per_block=(3, 3), rng=0)
        degraded, _ = StructureDefect(keep_fraction=0.4).apply(model, rng=1)
        assert degraded.num_parameters() < model.num_parameters()
        assert degraded.forward(np.zeros((1, 3, 16, 16))).shape == (1, 10)

    def test_degraded_model_is_freshly_initialized(self):
        model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
        degraded, _ = StructureDefect().apply(model, rng=1)
        assert degraded is not model
        # Same class count and input shape, though.
        assert degraded.num_classes == model.num_classes
        assert degraded.input_shape == model.input_shape

    def test_rejects_invalid_fractions(self):
        with pytest.raises(DefectInjectionError):
            StructureDefect(keep_fraction=0.0)
        with pytest.raises(DefectInjectionError):
            StructureDefect(narrow_factor=1.5)

    def test_rejects_unknown_architecture_config(self):
        with pytest.raises(DefectInjectionError):
            StructureDefect().apply_to_config({
                "kind": "transformer",
                "input_shape": [1, 14, 14],
                "num_classes": 10,
                "hyperparameters": {},
            })


class TestBuildDefect:
    def test_builds_each_type(self):
        assert isinstance(build_defect("itd"), InsufficientTrainingData)
        assert isinstance(build_defect(DefectType.UTD, fraction=0.2), UnreliableTrainingData)
        assert isinstance(build_defect("sd"), StructureDefect)

    def test_rejects_none(self):
        with pytest.raises(DefectInjectionError):
            build_defect(DefectType.NONE)
