"""Unit tests for the serving metrics primitives."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import Counter, Gauge, Histogram, MetricsRegistry, merge_counters
from repro.serve.metrics import DEFAULT_SIZE_BUCKETS


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        counter = Counter("requests")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_as_dict(self):
        counter = Counter("requests", "how many")
        counter.inc(2)
        assert counter.as_dict() == {"type": "counter", "description": "how many", "value": 2}

    def test_thread_safety(self):
        counter = Counter("requests")
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_as_dict(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(3)
        assert gauge.as_dict() == {"type": "gauge", "description": "queue depth", "value": 3}


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        record = histogram.as_dict()
        assert record["count"] == 4
        assert record["sum"] == pytest.approx(55.55)
        assert record["min"] == pytest.approx(0.05)
        assert record["max"] == pytest.approx(50.0)
        # Cumulative: le=0.1 sees one, le=1.0 two, le=10.0 three; the 50.0
        # observation lives only in count/sum (the implicit +Inf bucket).
        assert record["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 3}

    def test_boundary_value_counts_as_le(self):
        histogram = Histogram("lat", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.as_dict()["buckets"] == {"1.0": 1, "2.0": 1}

    def test_quantile_estimates_at_bucket_resolution(self):
        histogram = Histogram("lat", buckets=(1, 2, 4, 8))
        for value in (0.5, 1.5, 3.0, 6.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.0 or histogram.quantile(0.25) == 1
        assert histogram.quantile(0.5) == 2
        assert histogram.quantile(1.0) == 8

    def test_quantile_of_overflow_tail_is_observed_max(self):
        histogram = Histogram("lat", buckets=(1.0,))
        histogram.observe(9.0)
        assert histogram.quantile(1.0) == 9.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("lat").quantile(0.99) == 0.0

    def test_rejects_bad_buckets_and_quantiles(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("lat").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc()
        assert registry.counter("a") is counter
        assert registry.counter("a").value == 1

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_namespace_prefixes_names(self):
        registry = MetricsRegistry(namespace="replica0")
        registry.counter("requests")
        assert registry.names() == ["replica0.requests"]

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=DEFAULT_SIZE_BUCKETS).observe(3)
        snapshot = registry.as_dict()
        assert set(snapshot) == {"c", "g", "h"}
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["g"]["value"] == 7
        assert snapshot["h"]["count"] == 1


class TestMergeCounters:
    def test_sums_counters_and_ignores_other_kinds(self):
        first = MetricsRegistry()
        first.counter("requests").inc(3)
        first.gauge("depth").set(9)
        second = MetricsRegistry()
        second.counter("requests").inc(4)
        second.counter("sheds").inc()
        merged = merge_counters([first.as_dict(), second.as_dict()])
        assert merged == {"requests": 7, "sheds": 1}
