"""Unit tests for repro.resilience: deadlines, fault injection, replica
health, the circuit breaker, full-jitter backoff, and bounded pool drain."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.exceptions import (
    ArtifactNotFoundError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ServeError,
)
from repro.resilience import (
    DEADLINE_HEADER,
    BreakerState,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    HealthPolicy,
    HealthState,
    ReplicaHealth,
    bind_deadline,
    chaos_spec_from_dict,
    check_deadline,
    configure_chaos,
    corrupt_bytes,
    current_deadline,
    get_injector,
    remaining_budget,
    unbind_deadline,
)


class FakeClock:
    """A controllable monotonic clock for deterministic timing tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_remaining_counts_down_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() < 0

    def test_header_roundtrip_reanchors_on_the_receiving_clock(self):
        clock = FakeClock()
        sent = Deadline.after(3.0, clock=clock)
        receiver = FakeClock(start=9999.0)  # wildly different clock: must not matter
        received = Deadline.from_header_ms(sent.header_value(), clock=receiver)
        assert received is not None
        assert received.remaining() == pytest.approx(3.0, abs=0.01)

    @pytest.mark.parametrize("raw", ["", "abc", "1.5.2", None])
    def test_malformed_header_means_no_deadline(self, raw):
        assert Deadline.from_header_ms(raw) is None

    def test_negative_header_is_already_expired(self):
        deadline = Deadline.from_header_ms("-100")
        assert deadline is not None
        assert deadline.expired()

    def test_covers_checks_a_required_budget(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.covers(0.5)
        assert not deadline.covers(2.0)

    def test_check_deadline_names_the_stage(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        check_deadline("admission", deadline=deadline)  # within budget: no raise
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError, match="admission"):
            check_deadline("admission", deadline=deadline)

    def test_contextvar_bind_and_unbind(self):
        assert current_deadline() is None
        deadline = Deadline.after(5.0)
        token = bind_deadline(deadline)
        try:
            assert current_deadline() is deadline
        finally:
            unbind_deadline(token)
        assert current_deadline() is None

    def test_bind_none_is_a_noop_binding(self):
        token = bind_deadline(None)
        try:
            assert current_deadline() is None
        finally:
            unbind_deadline(token)

    def test_remaining_budget_caps_a_default_timeout(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert remaining_budget(30.0, deadline=deadline) == pytest.approx(1.0)
        assert remaining_budget(0.2, deadline=deadline) == pytest.approx(0.2)
        assert remaining_budget(30.0, deadline=None) == pytest.approx(30.0)


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultPlan(site="nonsense.site", mode="delay")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault mode"):
            FaultPlan(site="replica.dispatch", mode="explode")

    def test_error_type_must_be_repro_exception(self):
        with pytest.raises(ConfigurationError, match="not a repro exception"):
            FaultPlan(site="replica.dispatch", mode="error", error_type="ValueError2")
        # Arbitrary attribute access must not escape the hierarchy.
        with pytest.raises(ConfigurationError):
            FaultPlan(site="replica.dispatch", mode="error", error_type="__class__")

    def test_build_error_carries_site_and_message(self):
        plan = FaultPlan(
            site="remote.send", mode="error",
            error_type="ArtifactNotFoundError", message="gone",
        )
        error = plan.build_error()
        assert isinstance(error, ArtifactNotFoundError)
        assert "gone" in str(error) and "remote.send" in str(error)


class TestFaultInjector:
    def test_disabled_injector_never_fires(self):
        injector = FaultInjector()
        assert injector.inject("replica.dispatch") is None
        assert injector.planned("replica.dispatch") is None

    def test_error_mode_raises_the_resolved_class(self):
        injector = FaultInjector()
        injector.configure([FaultPlan(site="replica.dispatch", mode="error")])
        with pytest.raises(ServeError, match="replica.dispatch"):
            injector.inject("replica.dispatch")

    def test_delay_mode_sleeps_via_injected_sleep(self):
        slept = []
        injector = FaultInjector(sleep=slept.append)
        injector.configure(
            [FaultPlan(site="batching.drain", mode="delay", delay_seconds=0.25)]
        )
        assert injector.inject("batching.drain") == "delay"
        assert slept == [0.25]

    def test_drop_and_corrupt_are_returned_not_acted(self):
        injector = FaultInjector()
        injector.configure([FaultPlan(site="codec.decode", mode="corrupt")])
        assert injector.inject("codec.decode") == "corrupt"

    def test_max_injections_bounds_firing(self):
        injector = FaultInjector()
        injector.configure(
            [FaultPlan(site="codec.decode", mode="corrupt", max_injections=2)]
        )
        fires = [injector.inject("codec.decode") for _ in range(5)]
        assert fires == ["corrupt", "corrupt", None, None, None]

    def test_probability_draws_are_seeded_and_reproducible(self):
        def run(seed: int) -> list:
            injector = FaultInjector()
            injector.configure(
                [FaultPlan(site="remote.send", mode="drop", probability=0.5)],
                seed=seed,
            )
            return [injector.inject("remote.send") for _ in range(20)]

        assert run(7) == run(7)  # same seed, same script
        assert run(7) != run(8)  # different seed, different script
        assert None in run(7) and "drop" in run(7)  # p=0.5 actually mixes

    def test_sites_are_independent(self):
        injector = FaultInjector()
        injector.configure([FaultPlan(site="remote.send", mode="drop")])
        assert injector.inject("replica.dispatch") is None
        assert injector.inject("remote.send") == "drop"

    def test_stats_reports_fired_counts_and_budgets(self):
        injector = FaultInjector()
        injector.configure(
            [FaultPlan(site="remote.send", mode="drop", max_injections=3)], seed=5
        )
        injector.inject("remote.send")
        stats = injector.stats()
        assert stats["enabled"] is True
        assert stats["seed"] == 5
        (plan,) = stats["plans"]
        assert plan["fired"] == 1 and plan["remaining_budget"] == 2

    def test_disable_disarms_everything(self):
        injector = FaultInjector()
        injector.configure([FaultPlan(site="remote.send", mode="drop")])
        injector.disable()
        assert injector.inject("remote.send") is None
        assert injector.stats()["enabled"] is False

    def test_global_injector_configured_in_place(self):
        reference = get_injector()
        try:
            configure_chaos({"plans": [{"site": "remote.send", "mode": "drop"}]})
            assert get_injector() is reference  # mutated, never replaced
            assert reference.enabled
        finally:
            configure_chaos(None)
        assert not reference.enabled

    def test_spec_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown chaos plan field"):
            chaos_spec_from_dict(
                {"plans": [{"site": "remote.send", "mode": "drop", "oops": 1}]}
            )

    def test_spec_enabled_false_disarms(self):
        plans, _seed = chaos_spec_from_dict(
            {"enabled": False, "plans": [{"site": "remote.send", "mode": "drop"}]}
        )
        assert plans == []

    def test_corrupt_bytes_flips_first_byte_only(self):
        assert corrupt_bytes(b"") == b""
        damaged = corrupt_bytes(b"{ok}")
        assert damaged != b"{ok}" and damaged[1:] == b"ok}"


class TestReplicaHealth:
    def policy(self, **overrides) -> HealthPolicy:
        defaults = dict(
            failure_threshold=3,
            probe_interval_seconds=0.01,
            quarantine_seconds=1.0,
            quarantine_backoff=2.0,
            max_quarantine_seconds=8.0,
        )
        defaults.update(overrides)
        return HealthPolicy(**defaults)

    def test_ejects_after_consecutive_failures(self):
        health = ReplicaHealth(self.policy())
        assert health.record_failure() is False
        assert health.record_failure() is False
        assert health.record_failure() is True  # threshold reached: ejected
        assert health.state == HealthState.QUARANTINED
        assert not health.is_healthy

    def test_success_resets_the_failure_streak(self):
        health = ReplicaHealth(self.policy())
        health.record_failure()
        health.record_failure()
        health.record_success()
        health.record_failure()
        health.record_failure()
        assert health.is_healthy  # streak broke; 2 more failures don't eject

    def test_probe_due_respects_quarantine_window(self):
        clock = FakeClock()
        health = ReplicaHealth(self.policy(), clock=clock)
        for _ in range(3):
            health.record_failure()
        assert not health.probe_due()  # inside the quarantine window
        clock.advance(1.5)
        assert health.probe_due()

    def test_probe_failure_extends_quarantine_exponentially(self):
        clock = FakeClock()
        health = ReplicaHealth(self.policy(), clock=clock)
        for _ in range(3):
            health.record_failure()
        clock.advance(1.5)
        health.record_probe_failure()  # second ejection: 2x window
        clock.advance(1.5)
        assert not health.probe_due()
        clock.advance(1.0)
        assert health.probe_due()

    def test_quarantine_window_is_capped(self):
        policy = self.policy()
        # 1-based: the n-th ejection quarantines for base * backoff**(n-1).
        assert policy.quarantine_for(1) == pytest.approx(1.0)
        assert policy.quarantine_for(3) == pytest.approx(4.0)
        assert policy.quarantine_for(10) == pytest.approx(8.0)  # capped

    def test_readmit_restores_health(self):
        health = ReplicaHealth(self.policy())
        for _ in range(3):
            health.record_failure()
        health.readmit()
        assert health.is_healthy
        assert health.state == HealthState.HEALTHY

    def test_snapshot_shape(self):
        clock = FakeClock()
        health = ReplicaHealth(self.policy(), clock=clock)
        health.record_success(latency_seconds=0.02)
        snapshot = health.snapshot()
        assert snapshot["state"] == "healthy"
        assert snapshot["consecutive_failures"] == 0
        for _ in range(3):
            health.record_failure()
        snapshot = health.snapshot()
        assert snapshot["state"] == "quarantined"
        assert snapshot["ejections"] == 1
        assert snapshot["probe_eligible_in_seconds"] > 0


class TestCircuitBreaker:
    def test_opens_after_threshold_and_rejects(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=5.0, clock=clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(5.0)

    def test_half_open_single_probe_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0, clock=clock)
        breaker.allow()
        breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()  # the single half-open probe slot
        assert breaker.state == BreakerState.HALF_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second caller finds the slot taken
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        breaker.allow()  # closed again: flows freely

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=5.0, clock=clock)
        breaker.allow()
        breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # re-opened: the reset window restarts

    def test_success_resets_failure_streak_while_closed(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_snapshot_and_transitions(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=1.0, name="/diagnose", clock=clock
        )
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["name"] == "/diagnose"
        assert snapshot["state"] == "open"
        assert breaker.transitions == 1

    def test_breaker_is_thread_safe_under_contention(self):
        breaker = CircuitBreaker(failure_threshold=50, reset_seconds=5.0)
        errors = []

        def hammer():
            try:
                for _ in range(200):
                    try:
                        breaker.allow()
                    except CircuitOpenError:
                        continue
                    breaker.record_failure()
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert breaker.state == BreakerState.OPEN


class TestFullJitterBackoff:
    def test_backoff_draws_from_uniform_zero_to_ceiling(self):
        from repro.api.remote import RemoteDiagnoser

        client = RemoteDiagnoser("http://127.0.0.1:1", rng=random.Random(42))
        slept = []
        original_sleep = time.sleep
        try:
            time.sleep = slept.append
            client._backoff(0, None)
            client._backoff(1, None)
            client._backoff(2, None)
        finally:
            time.sleep = original_sleep
        base = client.config.retry_backoff_seconds
        expected = random.Random(42)
        assert slept == pytest.approx(
            [expected.uniform(0.0, base * 2 ** n) for n in range(3)]
        )
        for attempt, duration in enumerate(slept):
            assert 0.0 <= duration <= base * 2 ** attempt

    def test_backoff_is_bounded_by_the_deadline(self):
        from repro.api.remote import RemoteDiagnoser

        clock = FakeClock()
        deadline = Deadline.after(0.001, clock=clock)
        # An rng pinned at the ceiling would sleep ~0.25s without the bound.
        class Ceiling(random.Random):
            def uniform(self, a, b):  # noqa: ANN001, ANN202 - stdlib signature
                return b

        client = RemoteDiagnoser("http://127.0.0.1:1", rng=Ceiling())
        slept = []
        original_sleep = time.sleep
        try:
            time.sleep = slept.append
            client._backoff(3, deadline)
        finally:
            time.sleep = original_sleep
        assert slept and slept[0] == pytest.approx(0.001, abs=1e-6)


class TestDeadlineHeaderConstant:
    def test_header_name_is_stable_wire_contract(self):
        # The header name is a wire contract with deployed clients; renaming
        # it is a breaking change and must fail loudly here.
        assert DEADLINE_HEADER == "X-Deadline-Ms"
