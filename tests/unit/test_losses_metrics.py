"""Tests for loss functions and classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import functional as F
from repro.nn.losses import MeanSquaredError, NegativeLogLikelihood, SoftmaxCrossEntropy, get_loss
from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    error_cases,
    per_class_accuracy,
    precision_recall_f1,
    top_k_accuracy,
)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_prediction_loss_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 5)), np.zeros(4, dtype=int))
        np.testing.assert_allclose(value, np.log(5), rtol=1e-6)

    def test_gradient_matches_softmax_minus_onehot(self):
        loss = SoftmaxCrossEntropy()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss.forward(logits, labels)
        grad = loss.backward()
        expected = (F.softmax(logits, axis=1) - F.one_hot(labels, 4)) / 6
        np.testing.assert_allclose(grad, expected, atol=1e-12)

    def test_gradient_matches_finite_differences(self):
        loss = SoftmaxCrossEntropy()
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                plus = loss.forward(logits, labels)
                logits[i, j] -= 2 * eps
                minus = loss.forward(logits, labels)
                logits[i, j] += eps
                np.testing.assert_allclose(grad[i, j], (plus - minus) / (2 * eps), atol=1e-6)

    def test_label_smoothing_increases_loss_of_perfect_prediction(self):
        plain = SoftmaxCrossEntropy()
        smoothed = SoftmaxCrossEntropy(label_smoothing=0.1)
        logits = np.array([[20.0, -20.0]])
        labels = np.array([0])
        assert smoothed.forward(logits, labels) > plain.forward(logits, labels)

    def test_rejects_label_shape_mismatch(self):
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().forward(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_rejects_invalid_smoothing(self):
        with pytest.raises(ConfigurationError):
            SoftmaxCrossEntropy(label_smoothing=1.0)


class TestOtherLosses:
    def test_nll_matches_cross_entropy_on_probabilities(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        ce = SoftmaxCrossEntropy().forward(logits, labels)
        nll = NegativeLogLikelihood().forward(F.softmax(logits, axis=1), labels)
        np.testing.assert_allclose(ce, nll, rtol=1e-6)

    def test_mse_value_and_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert loss.forward(pred, target) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.backward(), pred)

    def test_mse_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_loss_registry(self):
        assert isinstance(get_loss("cross_entropy"), SoftmaxCrossEntropy)
        assert isinstance(get_loss("mse"), MeanSquaredError)
        with pytest.raises(ConfigurationError):
            get_loss("nope")


class TestMetrics:
    def test_accuracy_with_scores_and_ids(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert accuracy(scores, labels) == pytest.approx(2 / 3)
        assert accuracy(np.array([0, 1, 0]), labels) == pytest.approx(2 / 3)

    def test_accuracy_empty_is_zero(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_top_k_accuracy(self):
        scores = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        labels = np.array([1, 0])
        assert top_k_accuracy(scores, labels, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(scores, labels, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(scores, labels, k=3) == pytest.approx(1.0)

    def test_confusion_matrix_counts(self):
        preds = np.array([0, 0, 1, 2])
        labels = np.array([0, 1, 1, 2])
        matrix = confusion_matrix(preds, labels, 3)
        assert matrix[0, 0] == 1 and matrix[1, 0] == 1 and matrix[1, 1] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_per_class_accuracy_handles_empty_classes(self):
        preds = np.array([0, 0])
        labels = np.array([0, 0])
        acc = per_class_accuracy(preds, labels, 3)
        np.testing.assert_allclose(acc, [1.0, 0.0, 0.0])

    def test_precision_recall_f1(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        stats = precision_recall_f1(preds, labels, 2)
        assert stats["precision"][0] == pytest.approx(0.5)
        assert stats["recall"][1] == pytest.approx(2 / 3)
        assert 0 <= stats["f1"].max() <= 1

    def test_error_cases_indices(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9], [0.9, 0.1]])
        labels = np.array([0, 0, 1])
        np.testing.assert_array_equal(error_cases(scores, labels), [1, 2])

    def test_metrics_reject_mismatched_sizes(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((3, 2)), np.zeros(4, dtype=int))
