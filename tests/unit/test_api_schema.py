"""Unit tests for the repro.api v1 schema, config, and error mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import DiagnoserConfig
from repro.api.schema import (
    CONTEXT_KEYS,
    DEFECT_KEYS,
    SCHEMA_VERSION,
    DiagnosisReport,
    DiagnosisRequest,
    validate_arrays,
)
from repro.core.classifier import DefectCaseClassifier, DiagnosisContext
from repro.core.specifics import FootprintSpecifics
from repro.defects import DefectType
from repro.exceptions import (
    ArtifactNotFoundError,
    ConfigurationError,
    NoFaultyCasesError,
    PayloadTooLargeError,
    RemoteTransportError,
    SchemaVersionError,
    ServeError,
    ServiceSaturatedError,
    exception_from_wire,
)
from repro.serve.protocol import diagnosis_args, error_response, error_status


def make_specifics(true_label: int = 0) -> FootprintSpecifics:
    return FootprintSpecifics(
        predicted=1,
        true_label=true_label,
        final_confidence=0.7,
        commitment=0.5,
        match_predicted=0.7,
        match_true=0.6,
        best_match=0.75,
        best_match_class=1,
        atypicality_true=0.8,
        mean_entropy=0.5,
        early_entropy=0.6,
        divergence_point=0.2,
        stability=0.9,
        late_entropy=0.4,
        feature_quality=0.95,
        nn_typicality_predicted=0.3,
        nn_typicality_true=0.2,
    )


class TestDiagnosisRequestSchema:
    def test_round_trip_identity(self):
        request = DiagnosisRequest(
            model="prod",
            inputs=[[0.0, 1.0], [2.0, 3.0]],
            labels=[0, 1],
            version="v3",
            metadata={"source": "monitoring"},
        )
        wire = request.to_dict()
        assert wire["schema"] == SCHEMA_VERSION
        rebuilt = DiagnosisRequest.from_dict(wire)
        assert rebuilt == request
        assert rebuilt.to_dict() == wire

    def test_arrays_become_lists(self):
        request = DiagnosisRequest(
            model="m", inputs=np.ones((2, 3)), labels=np.array([0, 1])
        )
        wire = request.to_dict()
        assert wire["inputs"] == [[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]
        assert wire["labels"] == [0, 1]
        assert "version" not in wire and "metadata" not in wire

    def test_unknown_schema_version_rejected(self):
        payload = {"schema": "v999", "model": "m", "inputs": [[0.0]], "labels": [0]}
        with pytest.raises(SchemaVersionError):
            DiagnosisRequest.from_dict(payload)

    def test_missing_schema_field_means_v1(self):
        request = DiagnosisRequest.from_dict({"model": "m", "inputs": [[0.0]], "labels": [0]})
        assert request.schema == SCHEMA_VERSION

    @pytest.mark.parametrize("missing", ["model", "inputs", "labels"])
    def test_missing_required_field(self, missing):
        payload = {"model": "m", "inputs": [[0.0]], "labels": [0]}
        del payload[missing]
        with pytest.raises(ServeError):
            DiagnosisRequest.from_dict(payload)

    def test_mistyped_and_unknown_fields(self):
        base = {"model": "m", "inputs": [[0.0]], "labels": [0]}
        with pytest.raises(ServeError):
            DiagnosisRequest.from_dict({**base, "model": 7})
        with pytest.raises(ServeError):
            DiagnosisRequest.from_dict({**base, "version": 3})
        with pytest.raises(ServeError):
            DiagnosisRequest.from_dict({**base, "metadata": "nope"})
        with pytest.raises(ServeError):
            DiagnosisRequest.from_dict({**base, "surprise": True})
        with pytest.raises(ServeError):
            DiagnosisRequest.from_dict([1, 2, 3])

    def test_validate_arrays_rules(self):
        inputs, labels = validate_arrays([[1, 2], [3, 4]], [0, 1])
        assert inputs.dtype == np.float64
        assert labels.dtype == np.int64
        with pytest.raises(ConfigurationError):
            validate_arrays([1.0, 2.0], [0, 1])  # ndim < 2
        with pytest.raises(ConfigurationError):
            validate_arrays(np.zeros((0, 2)), [])  # empty batch
        with pytest.raises(ConfigurationError):
            validate_arrays([[1.0], [2.0]], [0])  # length mismatch

    def test_legacy_diagnosis_args_shim(self):
        name, inputs, labels, version, metadata = diagnosis_args(
            {"model": "m", "inputs": [[0.0]], "labels": [0], "version": "v1"}
        )
        assert (name, version, metadata) == ("m", "v1", None)
        assert inputs == [[0.0]] and labels == [0]


class TestDiagnosisReportSchema:
    def make_report(self) -> DiagnosisReport:
        classifier = DefectCaseClassifier()
        defect_report = classifier.aggregate(
            [make_specifics(), make_specifics(true_label=2)],
            DiagnosisContext(),
            metadata={"model": "m", "version": "v1"},
        )
        return DiagnosisReport.from_defect_report(defect_report)

    def test_round_trip_identity(self):
        report = self.make_report()
        wire = report.to_dict()
        assert wire["schema"] == SCHEMA_VERSION
        rebuilt = DiagnosisReport.from_dict(wire)
        assert rebuilt.to_dict() == wire
        assert set(wire["ratios"]) <= set(DEFECT_KEYS)
        assert set(wire["context"]) == set(CONTEXT_KEYS)

    def test_defect_report_as_dict_is_the_v1_document(self):
        classifier = DefectCaseClassifier()
        defect_report = classifier.aggregate([make_specifics()], DiagnosisContext())
        assert defect_report.as_dict() == DiagnosisReport.from_defect_report(
            defect_report
        ).to_dict()

    def test_unknown_schema_version_rejected(self):
        wire = self.make_report().to_dict()
        wire["schema"] = "v2"
        with pytest.raises(SchemaVersionError):
            DiagnosisReport.from_dict(wire)

    def test_malformed_documents_rejected(self):
        wire = self.make_report().to_dict()
        with pytest.raises(ServeError):
            DiagnosisReport.from_dict({**wire, "ratios": {"bogus": 1.0}})
        with pytest.raises(ServeError):
            # Empty ratios must fail typed here, not later in dominant_defect.
            DiagnosisReport.from_dict({**wire, "ratios": {}})
        with pytest.raises(ServeError):
            DiagnosisReport.from_dict({**wire, "context": {"bogus": 1.0}})
        with pytest.raises(ServeError):
            DiagnosisReport.from_dict({**wire, "extra_field": 1})
        broken = dict(wire)
        del broken["ratios"]
        with pytest.raises(ServeError):
            DiagnosisReport.from_dict(broken)

    def test_views_match_defect_report(self):
        classifier = DefectCaseClassifier()
        defect_report = classifier.aggregate([make_specifics()], DiagnosisContext())
        report = DiagnosisReport.from_defect_report(defect_report)
        assert report.dominant_defect == defect_report.dominant_defect.value
        assert report.ratio("itd") == defect_report.ratio("itd")
        assert report.ratio(DefectType.UTD) == defect_report.ratio(DefectType.UTD)
        assert report.format_row() == defect_report.format_row()
        assert "dominant defect" in report.summary()

    def test_to_defect_report_round_trip(self):
        report = self.make_report()
        defect_report = report.to_defect_report()
        assert DiagnosisReport.from_defect_report(defect_report).to_dict() == report.to_dict()

    def test_cache_state_never_serialized(self):
        report = self.make_report()
        report.cache_state = "hit"
        assert "cache_state" not in report.to_dict()


class TestDiagnoserConfig:
    def test_deepmorph_kwargs_match_facade_defaults(self):
        morph = DiagnoserConfig().build_deepmorph(rng=0)
        assert morph.probe_epochs == 12
        assert morph.probe_batch_size == 64
        assert morph.inference_dtype == "float32"  # facade default preserved

    def test_inference_dtype_override_flows_through(self):
        morph = DiagnoserConfig(inference_dtype="float64").build_deepmorph()
        assert morph.inference_dtype == "float64"

    def test_service_kwargs_keys_are_accepted_by_service(self):
        from inspect import signature

        from repro.serve.service import DiagnosisService

        accepted = set(signature(DiagnosisService.__init__).parameters)
        assert set(DiagnoserConfig().service_kwargs()) <= accepted

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiagnoserConfig(probe_epochs=0)
        with pytest.raises(ConfigurationError):
            DiagnoserConfig(request_timeout=0)
        with pytest.raises(ConfigurationError):
            DiagnoserConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            DiagnoserConfig(inference_dtype="float16")

    def test_with_overrides_revalidates(self):
        config = DiagnoserConfig().with_overrides(cache_size=0)
        assert config.cache_size == 0
        with pytest.raises(ConfigurationError):
            config.with_overrides(num_workers=0)


class TestWireErrorMapping:
    @pytest.mark.parametrize("error,status", [
        (ServiceSaturatedError("full", retry_after=2.0), 503),
        (ArtifactNotFoundError("ghost"), 404),
        (PayloadTooLargeError("big"), 413),
        (NoFaultyCasesError("clean"), 400),
        (ServeError("bad"), 400),
        (ValueError("odd"), 400),
        (RuntimeError("boom"), 500),
    ])
    def test_error_status_table(self, error, status):
        assert error_status(error) == status

    def test_error_response_round_trips_through_exception_from_wire(self):
        for original in [
            ServiceSaturatedError("full", retry_after=3.0),
            ArtifactNotFoundError("ghost"),
            PayloadTooLargeError("big"),
            NoFaultyCasesError("clean"),
            SchemaVersionError("v999"),
            ServeError("bad"),
        ]:
            status, payload, headers = error_response(original)
            retry_after = dict(headers).get("Retry-After")
            rebuilt = exception_from_wire(
                status,
                payload["error"],
                error_type=payload["error_type"],
                retry_after=float(retry_after) if retry_after is not None else None,
            )
            assert type(rebuilt) is type(original)
        saturated = exception_from_wire(503, "full", "ServiceSaturatedError", retry_after=3.0)
        assert saturated.retry_after == 3.0

    def test_unknown_error_type_falls_back_to_status(self):
        assert isinstance(exception_from_wire(404, "x", "NotAClass"), ArtifactNotFoundError)
        assert isinstance(exception_from_wire(503, "x", None), ServiceSaturatedError)
        assert isinstance(exception_from_wire(418, "x", None), ServeError)
        # Non-repro names never resolve (no arbitrary class lookup).
        assert isinstance(exception_from_wire(400, "x", "Exception"), ServeError)

    def test_remote_transport_error_is_a_serve_error(self):
        assert issubclass(RemoteTransportError, ServeError)

    def test_every_public_exception_exported(self):
        import repro.exceptions as exceptions_module

        classes = {
            name
            for name, value in vars(exceptions_module).items()
            if isinstance(value, type)
            and issubclass(value, exceptions_module.ReproError)
            and not name.startswith("_")
        }
        assert classes <= set(exceptions_module.__all__)
