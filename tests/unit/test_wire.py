"""Unit tests for :mod:`repro.wire` — codecs, negotiation, binary frames.

Covers the codec registry and HTTP media-type negotiation, JSON↔binary
interchangeability (property-based: 1e-12 agreement through JSON, bitwise
through binary), the decoded-request digest that lets both codecs share one
response-cache entry, and — most importantly — that every malformed binary
frame fails with a typed :class:`~repro.exceptions.CodecError` (a 4xx at the
HTTP boundary), never an unhandled exception or an attacker-sized allocation.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.api.schema import DiagnosisReport, DiagnosisRequest
from repro.exceptions import (
    CodecError,
    ConfigurationError,
    SchemaVersionError,
    ServeError,
    UnsupportedMediaTypeError,
)
from repro.serve.cache import ResponseCache
from repro.wire import (
    FRAME_VERSION,
    MAGIC,
    BinaryCodec,
    JsonCodec,
    codec_for_accept,
    codec_for_content_type,
    codecs,
    default_codec,
    get_codec,
    negotiate,
    request_digest,
)
from repro.wire.binary import _PRELUDE

JSON = JsonCodec()
BINARY = BinaryCodec()


def make_request(dtype=np.float64, metadata=None, version=None) -> DiagnosisRequest:
    rng = np.random.default_rng(7)
    inputs = rng.standard_normal((3, 1, 4, 4)).astype(dtype)
    labels = np.array([0, 1, 2], dtype=np.int64)
    return DiagnosisRequest(
        model="tiny", inputs=inputs, labels=labels, version=version, metadata=metadata
    )


def make_report() -> DiagnosisReport:
    return DiagnosisReport(
        num_cases=5,
        ratios={"itd": 0.5, "utd": 0.3, "sd": 0.2},
        counts={"itd": 3, "utd": 1, "sd": 1},
        metadata={"model": "tiny", "request_id": "req-1"},
        context={
            "error_concentration": 0.4,
            "pattern_overlap": 0.1,
            "feature_quality": 0.8,
            "training_inconsistency": 0.2,
        },
    )


class TestRegistry:
    def test_registered_codecs(self):
        registry = codecs()
        assert set(registry) == {"json", "binary"}
        assert registry["json"].content_type == "application/json"
        assert registry["binary"].content_type == "application/x-repro-binary"

    def test_default_is_json(self):
        assert default_codec().name == "json"
        assert get_codec(None).name == "json"

    def test_get_codec_by_name_and_instance(self):
        assert get_codec("binary").name == "binary"
        assert get_codec("JSON").name == "json"  # case-insensitive
        instance = BinaryCodec()
        assert get_codec(instance) is instance

    def test_unknown_name_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown wire codec"):
            get_codec("msgpack")

    def test_repr_names_content_type(self):
        assert "application/json" in repr(JSON)


class TestNegotiation:
    def test_content_type_default_and_params(self):
        assert codec_for_content_type(None).name == "json"
        assert codec_for_content_type("").name == "json"
        assert codec_for_content_type("application/json; charset=utf-8").name == "json"
        assert codec_for_content_type("APPLICATION/X-REPRO-BINARY").name == "binary"

    def test_unknown_content_type_is_415(self):
        with pytest.raises(UnsupportedMediaTypeError, match="unsupported content type"):
            codec_for_content_type("text/plain")

    def test_accept_absent_and_wildcards_pick_default(self):
        assert codec_for_accept(None).name == "json"
        assert codec_for_accept("*/*").name == "json"
        assert codec_for_accept("application/*", default="binary").name == "binary"
        assert codec_for_accept(None, default=BINARY).name == "binary"

    def test_accept_honors_client_order(self):
        value = "application/x-repro-binary, application/json"
        assert codec_for_accept(value).name == "binary"
        assert codec_for_accept("text/html, application/json;q=0.9").name == "json"

    def test_accept_with_no_known_type_is_415(self):
        with pytest.raises(UnsupportedMediaTypeError, match="Accept"):
            codec_for_accept("text/html, image/png")

    def test_negotiate_both_sides(self):
        headers = {
            "content-type": "application/x-repro-binary",
            "accept": "application/json",
        }
        request_codec, response_codec = negotiate(headers)
        assert request_codec.name == "binary"
        assert response_codec.name == "json"

    def test_negotiate_empty_headers_is_json_both_ways(self):
        request_codec, response_codec = negotiate({})
        assert request_codec.name == "json"
        assert response_codec.name == "json"
        _, response_codec = negotiate({}, default="binary")
        assert response_codec.name == "binary"


class TestJsonCodec:
    def test_wire_bytes_are_the_v1_document(self):
        request = make_request(metadata={"source": "test"}, version="3")
        assert json.loads(JSON.encode_request(request)) == request.to_dict()
        report = make_report()
        assert json.loads(JSON.encode_report(report)) == report.to_dict()

    def test_round_trip(self):
        request = make_request(metadata={"k": 1})
        decoded = JSON.decode_request(JSON.encode_request(request))
        assert decoded.to_dict() == request.to_dict()
        report = make_report()
        assert JSON.decode_report(JSON.encode_report(report)).to_dict() == report.to_dict()

    def test_decode_report_carries_cache_state(self):
        data = JSON.encode_report(make_report())
        assert JSON.decode_report(data, cache_state="hit").cache_state == "hit"

    def test_invalid_json_is_codec_error(self):
        with pytest.raises(CodecError, match="invalid JSON"):
            JSON.decode_request(b"{not json")
        with pytest.raises(CodecError, match="must be an object"):
            JSON.decode_request(b"[1, 2]")
        with pytest.raises(CodecError, match="body required"):
            JSON.decode_request(b"")

    def test_error_and_document_round_trip(self):
        payload = {"error": "boom", "error_type": "ServeError"}
        assert JSON.decode_error(JSON.encode_error(payload)) == payload
        document = {"jobs": [], "count": 0}
        assert JSON.decode_document(JSON.encode_document(document)) == document


class TestBinaryCodec:
    @pytest.mark.parametrize(
        "dtype", [np.float16, np.float32, np.float64, np.int32, np.uint8, np.bool_]
    )
    def test_round_trip_is_bitwise(self, dtype):
        request = make_request(dtype=dtype, metadata={"batch": "a"}, version="2")
        decoded = BINARY.decode_request(BINARY.encode_request(request))
        assert isinstance(decoded.inputs, np.ndarray)
        assert decoded.inputs.dtype == np.dtype(dtype)
        assert decoded.inputs.shape == np.asarray(request.inputs).shape
        assert decoded.inputs.tobytes() == np.asarray(request.inputs).tobytes()
        assert np.array_equal(decoded.labels, request.labels)
        assert decoded.model == request.model
        assert decoded.version == request.version
        assert decoded.metadata == request.metadata

    def test_encode_is_deterministic(self):
        request = make_request(metadata={"k": 1})
        assert BINARY.encode_request(request) == BINARY.encode_request(request)

    def test_non_contiguous_and_big_endian_inputs_encode(self):
        base = np.arange(32, dtype=np.float64).reshape(4, 8)
        request = DiagnosisRequest(
            model="tiny",
            inputs=base[:, ::2].astype(">f8"),  # non-contiguous, big-endian
            labels=np.array([0, 1, 0, 1]),
        )
        decoded = BINARY.decode_request(BINARY.encode_request(request))
        assert decoded.inputs.dtype == np.dtype("<f8")
        assert np.array_equal(decoded.inputs, base[:, ::2])

    def test_object_dtype_is_refused(self):
        request = DiagnosisRequest(
            model="tiny", inputs=np.array([[None, 1]], dtype=object), labels=[0]
        )
        with pytest.raises(CodecError, match="does not transport"):
            BINARY.encode_request(request)

    def test_decoded_arrays_are_writable_copies(self):
        data = BINARY.encode_request(make_request())
        decoded = BINARY.decode_request(data)
        decoded.inputs[0] = 0.0  # must not raise: detached from the body buffer
        assert decoded.inputs.flags.writeable

    def test_report_error_document_round_trip(self):
        report = make_report()
        assert BINARY.decode_report(BINARY.encode_report(report)).to_dict() == report.to_dict()
        assert BINARY.decode_report(BINARY.encode_report(report.to_dict())).to_dict() == (
            report.to_dict()
        )
        payload = {"error": "boom", "error_type": "ShapeError", "request_id": "r1"}
        assert BINARY.decode_error(BINARY.encode_error(payload)) == payload
        document = {"stats": {"size": 3}}
        assert BINARY.decode_document(BINARY.encode_document(document)) == document

    def test_binary_body_reuses_v1_validation(self):
        # The merged doc goes through DiagnosisRequest.from_dict: schema
        # violations fail exactly like a JSON body's.
        frame = _frame(
            1, {"model": "tiny", "typo_field": 1}, [("inputs", _F2), ("labels", _I1)]
        )
        with pytest.raises(ServeError, match="unknown request field"):
            BINARY.decode_request(frame)
        frame = _frame(1, {"model": "tiny", "schema": "v9"}, [("inputs", _F2), ("labels", _I1)])
        with pytest.raises(SchemaVersionError, match="v9"):
            BINARY.decode_request(frame)


# -- hand-built frames for malformation tests ------------------------------------------

_F2 = np.ones((2, 3), dtype=np.float64)
_I1 = np.array([0, 1], dtype=np.int64)


def _frame(kind: int, doc: dict, arrays, header_override: bytes = None) -> bytes:
    """Assemble a frame by hand so tests can corrupt any individual field."""
    if header_override is None:
        descriptors = [
            {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)}
            for name, array in arrays
        ]
        header = json.dumps(
            {"doc": doc, "arrays": descriptors}, separators=(",", ":")
        ).encode("utf-8")
    else:
        header = header_override
    body = b"".join(np.ascontiguousarray(array).tobytes() for _, array in arrays)
    return struct.pack("<4sBBI", MAGIC, FRAME_VERSION, kind, len(header)) + header + body


def _request_frame() -> bytes:
    return BINARY.encode_request(make_request())


class TestMalformedFrames:
    """Every corruption decodes to a typed CodecError — never a crash or hang."""

    def test_empty_and_truncated_prelude(self):
        for data in (b"", b"RPW", MAGIC + b"\x01"):
            with pytest.raises(CodecError, match="truncated binary frame"):
                BINARY.decode_request(data)

    def test_wrong_magic(self):
        data = b"NOPE" + _request_frame()[4:]
        with pytest.raises(CodecError, match="bad frame magic"):
            BINARY.decode_request(data)

    def test_json_body_sent_as_binary(self):
        with pytest.raises(CodecError, match="bad frame magic|truncated"):
            BINARY.decode_request(JSON.encode_request(make_request()))

    def test_unknown_frame_version(self):
        data = bytearray(_request_frame())
        data[4] = 99
        with pytest.raises(CodecError, match="unsupported binary frame version 99"):
            BINARY.decode_request(bytes(data))

    def test_kind_mismatch(self):
        with pytest.raises(CodecError, match="frame is a request, expected a report"):
            BINARY.decode_report(_request_frame())
        data = bytearray(_request_frame())
        data[5] = 42
        with pytest.raises(CodecError, match="unknown kind 42"):
            BINARY.decode_request(bytes(data))

    def test_header_longer_than_frame(self):
        data = bytearray(_request_frame())
        struct.pack_into("<I", data, 6, 2**31)
        with pytest.raises(CodecError, match="header declares"):
            BINARY.decode_request(bytes(data))

    def test_undecodable_header(self):
        frame = _frame(1, {}, [], header_override=b"{broken json")
        with pytest.raises(CodecError, match="undecodable frame header"):
            BINARY.decode_request(frame)
        frame = _frame(1, {}, [], header_override=b"\xff\xfe not utf8")
        with pytest.raises(CodecError, match="undecodable frame header"):
            BINARY.decode_request(frame)

    def test_header_not_an_object(self):
        frame = _frame(1, {}, [], header_override=b"[1, 2]")
        with pytest.raises(CodecError, match="header must be a JSON object"):
            BINARY.decode_request(frame)
        frame = _frame(1, {}, [], header_override=b'{"doc": 3, "arrays": []}')
        with pytest.raises(CodecError, match="'doc' object and an 'arrays' list"):
            BINARY.decode_request(frame)

    def test_too_many_arrays(self):
        descriptors = [
            {"name": f"a{i}", "dtype": "<f8", "shape": [0]} for i in range(65)
        ]
        header = json.dumps({"doc": {}, "arrays": descriptors}).encode()
        frame = _frame(1, {}, [], header_override=header)
        with pytest.raises(CodecError, match="declares 65 arrays"):
            BINARY.decode_request(frame)

    def test_bad_descriptors(self):
        for descriptor, message in [
            (3, "must be an object"),
            ({"dtype": "<f8", "shape": [1]}, "lacks a name"),
            ({"name": "", "dtype": "<f8", "shape": [1]}, "lacks a name"),
            ({"name": "x", "dtype": "<c16", "shape": [1]}, "does not transport"),
            ({"name": "x", "dtype": "|O", "shape": [1]}, "does not transport"),
            ({"name": "x", "dtype": "<f8", "shape": [-1]}, "invalid shape"),
            ({"name": "x", "dtype": "<f8", "shape": [True]}, "invalid shape"),
            ({"name": "x", "dtype": "<f8", "shape": "2"}, "invalid shape"),
            ({"name": "x", "dtype": "<f8", "shape": [1] * 33}, "invalid shape"),
        ]:
            header = json.dumps({"doc": {}, "arrays": [descriptor]}).encode()
            frame = _frame(1, {}, [], header_override=header)
            with pytest.raises(CodecError, match=message):
                BINARY.decode_request(frame)

    def test_hostile_shape_is_refused_before_allocation(self):
        # Declares ~2**63 bytes; must fail on byte accounting, not allocate.
        descriptor = {"name": "x", "dtype": "<f8", "shape": [2**60]}
        header = json.dumps({"doc": {}, "arrays": [descriptor]}).encode()
        frame = _frame(1, {}, [], header_override=header) + b"\x00" * 8
        with pytest.raises(CodecError, match="declares more data than the frame carries"):
            BINARY.decode_request(frame)

    def test_truncated_record(self):
        frame = _request_frame()
        with pytest.raises(CodecError, match="truncated or trailing|declares more data"):
            BINARY.decode_request(frame[:-5])

    def test_trailing_garbage(self):
        with pytest.raises(CodecError, match="truncated or trailing"):
            BINARY.decode_request(_request_frame() + b"\x00\x01")

    def test_shape_dtype_disagreement_with_payload(self):
        # Descriptor says (3, 3) float64 but the body carries (2, 3).
        header = json.dumps({
            "doc": {"model": "tiny"},
            "arrays": [
                {"name": "inputs", "dtype": "<f8", "shape": [3, 3]},
                {"name": "labels", "dtype": "<i8", "shape": [2]},
            ],
        }).encode()
        frame = _frame(1, {}, [("inputs", _F2), ("labels", _I1)], header_override=header)
        with pytest.raises(CodecError, match="truncated or trailing|declares more data"):
            BINARY.decode_request(frame)

    def test_duplicate_array_names(self):
        header = json.dumps({
            "doc": {"model": "tiny"},
            "arrays": [
                {"name": "inputs", "dtype": "<i8", "shape": [2]},
                {"name": "inputs", "dtype": "<i8", "shape": [2]},
            ],
        }).encode()
        frame = _frame(1, {}, [("a", _I1), ("b", _I1)], header_override=header)
        with pytest.raises(CodecError, match="duplicate array"):
            BINARY.decode_request(frame)

    def test_doc_and_array_field_collision(self):
        frame = _frame(
            1,
            {"model": "tiny", "inputs": [[1.0]], "labels": [0]},
            [("inputs", _F2), ("labels", _I1)],
        )
        with pytest.raises(CodecError, match="both as doc field"):
            BINARY.decode_request(frame)

    def test_report_frame_with_array_records(self):
        frame = _frame(2, make_report().to_dict(), [("stray", _I1)])
        with pytest.raises(CodecError, match="report frames carry no array records"):
            BINARY.decode_report(frame)

    def test_prelude_size_is_stable(self):
        # The wire layout is a published contract; catch accidental repacking.
        assert _PRELUDE.size == 10


# -- cross-codec interchangeability (property-based) -----------------------------------


@st.composite
def wire_requests(draw):
    shape = draw(hnp.array_shapes(min_dims=2, max_dims=4, min_side=1, max_side=4))
    inputs = draw(
        hnp.arrays(
            np.float64,
            shape,
            elements=st.floats(-1e9, 1e9, allow_nan=False, width=64),
        )
    )
    labels = draw(hnp.arrays(np.int64, (shape[0],), elements=st.integers(0, 9)))
    metadata = draw(
        st.none()
        | st.dictionaries(
            st.text(min_size=1, max_size=6), st.integers(-5, 5), max_size=3
        )
    )
    return DiagnosisRequest(model="m", inputs=inputs, labels=labels, metadata=metadata)


class TestCrossCodecInterchangeability:
    @given(req=wire_requests())
    @settings(max_examples=40, deadline=None)
    def test_json_and_binary_agree(self, req):
        via_json = JSON.decode_request(JSON.encode_request(req))
        via_binary = BINARY.decode_request(BINARY.encode_request(req))
        # Binary is bitwise; JSON must agree to 1e-12 (float64 repr is exact,
        # so in practice both are bitwise — the tolerance is the contract).
        assert via_binary.inputs.tobytes() == np.asarray(req.inputs).tobytes()
        np.testing.assert_allclose(
            np.asarray(via_json.inputs, dtype=np.float64),
            np.asarray(req.inputs),
            rtol=0.0,
            atol=1e-12,
        )
        assert np.array_equal(np.asarray(via_json.labels), req.labels)
        assert np.array_equal(via_binary.labels, req.labels)
        assert via_json.model == via_binary.model == req.model
        assert via_json.metadata == via_binary.metadata == req.metadata

    @given(req=wire_requests())
    @settings(max_examples=40, deadline=None)
    def test_digest_is_codec_invariant(self, req):
        via_json = JSON.decode_request(JSON.encode_request(req))
        via_binary = BINARY.decode_request(BINARY.encode_request(req))
        assert request_digest(via_json) == request_digest(via_binary)

    def test_digest_separates_distinct_requests(self):
        base = make_request()
        assert request_digest(base) == request_digest(make_request())
        other_model = DiagnosisRequest(model="other", inputs=base.inputs, labels=base.labels)
        with_meta = DiagnosisRequest(
            model="tiny", inputs=base.inputs, labels=base.labels, metadata={"k": 1}
        )
        with_version = DiagnosisRequest(
            model="tiny", inputs=base.inputs, labels=base.labels, version="2"
        )
        digests = {
            request_digest(request)
            for request in (base, other_model, with_meta, with_version)
        }
        assert len(digests) == 4

    def test_digest_separates_dtypes(self):
        # Same values, different extraction precision → different responses.
        f32 = make_request(dtype=np.float32)
        f64 = DiagnosisRequest(
            model="tiny", inputs=np.asarray(f32.inputs, dtype=np.float64), labels=f32.labels
        )
        assert request_digest(f32) != request_digest(f64)


class TestSchemaDelegation:
    def test_request_encode_decode(self):
        request = make_request(metadata={"k": 1})
        for codec in (None, "json", "binary", BINARY):
            decoded = DiagnosisRequest.decode(request.encode(codec), codec)
            assert decoded.to_dict() == request.to_dict()

    def test_report_encode_decode(self):
        report = make_report()
        data = report.encode("binary")
        decoded = DiagnosisReport.decode(data, "binary", cache_state="miss")
        assert decoded.to_dict() == report.to_dict()
        assert decoded.cache_state == "miss"


class TestResponseCache:
    def make_cache(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("maxsize", 8)
        kwargs.setdefault("ttl_seconds", 10.0)
        return ResponseCache(clock=lambda: self.now, **kwargs)

    def test_cross_codec_sharing(self):
        cache = self.make_cache()
        report = make_report().to_dict()
        json_body = b'{"model": "tiny"}'
        key, entry = cache.lookup_body("application/json", json_body)
        assert key is not None and entry is None
        stored = cache.store(key, "canonical-1", report)

        # Byte-identical repeat: fast path, no decode needed.
        _, hit = cache.lookup_body("application/json", json_body)
        assert hit is stored

        # Same request over the binary codec: body misses, canonical hits.
        binary_key, entry = cache.lookup_body("application/x-repro-binary", b"RPWB...")
        assert entry is None
        assert cache.lookup_canonical("canonical-1") is stored
        cache.link(binary_key, "canonical-1")
        _, hit = cache.lookup_body("application/x-repro-binary", b"RPWB...")
        assert hit is stored

    def test_entry_encodings_are_memoized(self):
        cache = self.make_cache()
        entry = cache.store("k", "c", make_report().to_dict())
        json_bytes = entry.encoded(JSON)
        assert entry.encoded(JSON) is json_bytes  # bitwise-identical replay
        assert entry.encoded(BINARY) != json_bytes
        assert JSON.decode_report(json_bytes).to_dict() == (
            BINARY.decode_report(entry.encoded(BINARY)).to_dict()
        )

    def test_same_body_different_codec_does_not_collide(self):
        body = b"same bytes"
        assert ResponseCache.body_key("application/json", body) != (
            ResponseCache.body_key("application/x-repro-binary", body)
        )

    def test_ttl_expiry(self):
        cache = self.make_cache(ttl_seconds=5.0)
        key, _ = cache.lookup_body("application/json", b"x")
        cache.store(key, "c", {"num_cases": 1})
        assert cache.lookup_canonical("c") is not None
        self.now = 5.1
        assert cache.lookup_canonical("c") is None
        _, entry = cache.lookup_body("application/json", b"x")
        assert entry is None

    def test_disabled_cache(self):
        cache = self.make_cache(maxsize=0)
        assert not cache.enabled
        assert cache.lookup_body("application/json", b"x") == (None, None)
        assert cache.lookup_canonical("c") is None
        cache.store(None, "c", {})
        assert len(cache) == 0

    def test_eviction_bounds_both_levels(self):
        cache = self.make_cache(maxsize=2)
        for i in range(4):
            cache.store(f"body-{i}", f"canon-{i}", {"i": i})
        assert len(cache) == 2
        assert cache.lookup_canonical("canon-0") is None
        assert cache.lookup_canonical("canon-3") is not None

    def test_clear(self):
        cache = self.make_cache()
        cache.store("k", "c", {})
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup_canonical("c") is None
