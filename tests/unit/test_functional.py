"""Unit tests for the numerical primitives in repro.nn.functional."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import functional as F


class TestActivations:
    def test_relu_clamps_negatives(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_allclose(F.relu(x), [0.0, 0.0, 0.0, 0.5, 2.0])

    def test_relu_grad_masks_negative_inputs(self):
        x = np.array([-1.0, 1.0, 0.0])
        grad = np.array([5.0, 5.0, 5.0])
        np.testing.assert_allclose(F.relu_grad(x, grad), [0.0, 5.0, 0.0])

    def test_leaky_relu_keeps_scaled_negatives(self):
        x = np.array([-2.0, 3.0])
        np.testing.assert_allclose(F.leaky_relu(x, 0.1), [-0.2, 3.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 11)
        y = F.sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))
        np.testing.assert_allclose(y + F.sigmoid(-x), 1.0, atol=1e-12)

    def test_sigmoid_extreme_values_are_finite(self):
        y = F.sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, [0.0, 1.0], atol=1e-12)

    def test_tanh_grad_matches_derivative(self):
        x = np.array([0.3, -0.7])
        y = F.tanh(x)
        np.testing.assert_allclose(F.tanh_grad(y, np.ones_like(y)), 1 - np.tanh(x) ** 2)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 7)) * 10
        probs = F.softmax(x, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_is_shift_invariant(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), atol=1e-12)

    def test_softmax_handles_large_logits(self):
        probs = F.softmax(np.array([[1e4, 0.0, -1e4]]))
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(2).normal(size=(4, 6))
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)), atol=1e-10)


class TestOneHot:
    def test_one_hot_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            F.one_hot(np.array([0, 3]), 3)

    def test_one_hot_rejects_2d_labels(self):
        with pytest.raises(ShapeError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestConvolution:
    def test_conv_output_size(self):
        assert F.conv_output_size(14, 5, 1, 2) == 14
        assert F.conv_output_size(14, 2, 2, 0) == 7

    def test_conv_output_size_rejects_too_small_input(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(2, 5, 1, 0)

    def test_im2col_col2im_are_adjoint_for_ones(self):
        # col2im(im2col(x)) counts how many receptive fields each pixel is in;
        # with kernel 1 and stride 1 it must be exactly x.
        x = np.random.default_rng(0).random((2, 3, 5, 5))
        col = F.im2col(x, 1, 1, 1, 0)
        back = F.col2im(col, x.shape, 1, 1, 1, 0)
        np.testing.assert_allclose(back, x)

    def test_conv2d_matches_naive_convolution(self):
        rng = np.random.default_rng(3)
        x = rng.random((2, 2, 6, 6))
        w = rng.random((3, 2, 3, 3))
        b = rng.random(3)
        out, _ = F.conv2d_forward(x, w, b, stride=1, pad=1)

        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros_like(out)
        for n in range(2):
            for co in range(3):
                for i in range(6):
                    for j in range(6):
                        patch = padded[n, :, i:i + 3, j:j + 3]
                        expected[n, co, i, j] = np.sum(patch * w[co]) + b[co]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_conv2d_rejects_channel_mismatch(self):
        x = np.zeros((1, 2, 6, 6))
        w = np.zeros((3, 4, 3, 3))
        with pytest.raises(ShapeError):
            F.conv2d_forward(x, w, None, 1, 0)

    def test_conv2d_backward_shapes(self):
        rng = np.random.default_rng(4)
        x = rng.random((2, 2, 6, 6))
        w = rng.random((3, 2, 3, 3))
        out, col = F.conv2d_forward(x, w, None, stride=1, pad=0)
        grad_in, grad_w, grad_b = F.conv2d_backward(
            np.ones_like(out), x.shape, col, w, stride=1, pad=0
        )
        assert grad_in.shape == x.shape
        assert grad_w.shape == w.shape
        assert grad_b.shape == (3,)


class TestPooling:
    def test_maxpool_forward_picks_maximum(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, kernel=2, stride=2)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_gradient_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, argmax = F.maxpool2d_forward(x, kernel=2, stride=2)
        grad = F.maxpool2d_backward(np.ones_like(out), argmax, x.shape, 2, 2)
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(grad[0, 0], expected)

    def test_avgpool_forward_is_window_mean(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avgpool2d_forward(x, kernel=2, stride=2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_spreads_gradient_uniformly(self):
        x = np.zeros((1, 1, 4, 4))
        out = F.avgpool2d_forward(x, 2, 2)
        grad = F.avgpool2d_backward(np.ones_like(out), x.shape, 2, 2)
        np.testing.assert_allclose(grad, np.full_like(x, 0.25))

    def test_pooling_rejects_wrong_rank(self):
        with pytest.raises(ShapeError):
            F.maxpool2d_forward(np.zeros((2, 4, 4)), 2, 2)
        with pytest.raises(ShapeError):
            F.avgpool2d_forward(np.zeros((2, 4, 4)), 2, 2)
