"""Tests for the defect classifier, reports, and the DeepMorph facade."""

import numpy as np
import pytest

from repro.core import (
    DeepMorph,
    DefectCaseClassifier,
    DefectClassifierConfig,
    DiagnosisContext,
    FEATURE_NAMES,
    build_feature_vector,
    error_concentration,
    find_faulty_cases,
)
from repro.core.specifics import FootprintSpecifics
from repro.defects import DefectType
from repro.exceptions import ConfigurationError, DatasetError, NotFittedError


def make_specifics(**overrides) -> FootprintSpecifics:
    base = dict(
        predicted=1,
        true_label=0,
        final_confidence=0.7,
        commitment=0.5,
        match_predicted=0.7,
        match_true=0.6,
        best_match=0.75,
        best_match_class=1,
        atypicality_true=0.8,
        mean_entropy=0.5,
        early_entropy=0.6,
        divergence_point=0.2,
        stability=0.9,
        late_entropy=0.4,
        feature_quality=0.95,
        nn_typicality_predicted=0.3,
        nn_typicality_true=0.2,
    )
    base.update(overrides)
    return FootprintSpecifics(**base)


class TestErrorConcentration:
    def test_uniform_spread_is_zero(self):
        labels = list(range(10)) * 3
        assert error_concentration(labels, num_classes=10) == pytest.approx(0.0)

    def test_fully_concentrated_is_one(self):
        assert error_concentration([2] * 20, num_classes=10) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert error_concentration([], num_classes=10) == 0.0

    def test_invalid_num_classes(self):
        with pytest.raises(ConfigurationError):
            error_concentration([0], num_classes=0)


class TestClassifierConfig:
    def test_default_config_has_full_weight_rows(self):
        config = DefectClassifierConfig()
        matrix = config.weight_matrix()
        assert matrix.shape == (3, len(FEATURE_NAMES))

    def test_round_trip_from_weight_matrix(self):
        matrix = np.arange(3 * len(FEATURE_NAMES), dtype=float).reshape(3, -1)
        config = DefectClassifierConfig.from_weight_matrix(matrix, temperature=0.5)
        np.testing.assert_allclose(config.weight_matrix(), matrix)
        assert config.temperature == 0.5

    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            DefectClassifierConfig(weights={DefectType.ITD: (1.0,) * len(FEATURE_NAMES)})
        with pytest.raises(ConfigurationError):
            DefectClassifierConfig(temperature=0.0)
        with pytest.raises(ConfigurationError):
            DefectClassifierConfig.from_weight_matrix(np.zeros((2, 3)))


class TestDefectCaseClassifier:
    def test_feature_vector_order_matches_names(self):
        spec = make_specifics()
        vector = build_feature_vector(spec, DiagnosisContext())
        assert vector.shape == (len(FEATURE_NAMES),)
        assert vector[0] == 1.0
        assert vector[FEATURE_NAMES.index("final_confidence")] == spec.final_confidence

    def test_scores_and_evidence(self):
        classifier = DefectCaseClassifier()
        verdict = classifier.classify_case(make_specifics(), DiagnosisContext())
        assert set(verdict.scores) == {DefectType.ITD, DefectType.UTD, DefectType.SD}
        np.testing.assert_allclose(sum(verdict.evidence.values()), 1.0)
        assert verdict.verdict in verdict.scores

    def test_hard_assignment_uses_argmax_only(self):
        config = DefectClassifierConfig(soft_assignment=False)
        classifier = DefectCaseClassifier(config)
        verdict = classifier.classify_case(make_specifics(), DiagnosisContext())
        values = sorted(verdict.evidence.values())
        assert values == [0.0, 0.0, 1.0]

    def test_weights_steer_the_verdict(self):
        # A config whose SD row dominates via the bias must always say SD.
        matrix = np.zeros((3, len(FEATURE_NAMES)))
        matrix[2, 0] = 10.0
        classifier = DefectCaseClassifier(DefectClassifierConfig.from_weight_matrix(matrix))
        verdict = classifier.classify_case(make_specifics(), DiagnosisContext())
        assert verdict.verdict is DefectType.SD

    def test_aggregate_ratios_sum_to_one(self):
        classifier = DefectCaseClassifier()
        specs = [make_specifics(final_confidence=c) for c in (0.3, 0.6, 0.9)]
        report = classifier.aggregate(specs, DiagnosisContext())
        np.testing.assert_allclose(sum(report.ratios.values()), 1.0)
        assert report.num_cases == 3
        assert sum(report.counts.values()) == 3
        assert report.dominant_defect in report.ratios

    def test_aggregate_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            DefectCaseClassifier().aggregate([], DiagnosisContext())

    def test_build_context_computes_concentration(self):
        classifier = DefectCaseClassifier()
        specs = [make_specifics(true_label=1) for _ in range(10)]
        context = classifier.build_context(specs, num_classes=10, pattern_overlap=0.2)
        assert context.error_concentration == pytest.approx(1.0)
        assert context.pattern_overlap == pytest.approx(0.2)

    def test_report_serialization_and_formatting(self):
        classifier = DefectCaseClassifier()
        report = classifier.aggregate([make_specifics()], DiagnosisContext(), metadata={"model": "lenet"})
        payload = report.as_dict()
        assert set(payload["ratios"]) == {"itd", "utd", "sd"}
        assert "ITD=" in report.format_row()
        assert "dominant defect" in report.summary()
        assert report.ratio("itd") == payload["ratios"]["itd"]


class TestDeepMorphFacade:
    def test_unfitted_diagnose_raises(self, tiny_splits):
        _, test = tiny_splits
        inputs, labels = test.arrays()
        with pytest.raises(NotFittedError):
            DeepMorph().diagnose(inputs, labels)

    def test_fit_and_diagnose_dataset(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        report = fitted_deepmorph.diagnose_dataset(test, metadata={"scenario": "unit-test"})
        np.testing.assert_allclose(sum(report.ratios.values()), 1.0)
        assert report.num_cases > 0
        assert report.metadata["scenario"] == "unit-test"
        assert report.context is not None

    def test_diagnose_rejects_empty_input(self, fitted_deepmorph):
        with pytest.raises(ConfigurationError):
            fitted_deepmorph.diagnose(np.zeros((0, 1, 10, 10)), np.zeros(0, dtype=int))

    def test_diagnose_rejects_all_correct_cases(self, fitted_deepmorph, tiny_splits):
        train, _ = tiny_splits
        inputs, labels = train.arrays()
        predictions = fitted_deepmorph.model.predict(inputs)
        correct = predictions == labels
        with pytest.raises(ConfigurationError):
            fitted_deepmorph.diagnose(inputs[correct][:5], labels[correct][:5])

    def test_class_count_mismatch_rejected(self, tiny_splits):
        from repro.models import LeNet

        train, _ = tiny_splits
        wrong = LeNet(input_shape=(1, 10, 10), num_classes=7, conv_channels=(3,),
                      dense_units=(8,), kernel_size=3, rng=0)
        with pytest.raises(ConfigurationError):
            DeepMorph().fit(wrong, train)

    def test_find_faulty_cases(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, labels, predictions = find_faulty_cases(fitted_deepmorph.model, test)
        assert inputs.shape[0] == labels.shape[0] == predictions.shape[0]
        assert np.all(labels != predictions)

    def test_find_faulty_cases_empty_dataset(self, fitted_deepmorph):
        from repro.data import ArrayDataset

        empty = ArrayDataset(np.zeros((0, 1, 10, 10)), np.zeros(0, dtype=int), 4)
        with pytest.raises(DatasetError):
            find_faulty_cases(fitted_deepmorph.model, empty)

    def test_probe_accuracies_exposed(self, fitted_deepmorph):
        accuracies = fitted_deepmorph.probe_accuracies()
        assert set(accuracies) == set(fitted_deepmorph.model.hidden_layer_names())
