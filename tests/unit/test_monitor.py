"""Unit tests for the online monitoring subsystem (repro.monitor)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import MonitorOverflowError, ServeError, exception_from_wire
from repro.monitor import (
    LEVEL_CRITICAL,
    LEVEL_OK,
    LEVEL_WARN,
    AlertManager,
    DriftDetector,
    DriftThresholds,
    MonitorSink,
    MonitorWindow,
    PatternUpdater,
    level_severity,
)
from repro.serve import ArtifactRegistry, MetricsRegistry
from repro.serve.protocol import error_status

NUM_LAYERS = 3
NUM_CLASSES = 4


def _stack(rows: int, fill: float = 0.0, num_layers: int = NUM_LAYERS) -> np.ndarray:
    stack = np.full((rows, num_layers, NUM_CLASSES), fill, dtype=np.float64)
    return stack


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------- window


class TestMonitorWindow:
    def test_append_and_snapshot_roundtrip(self):
        window = MonitorWindow(max_cases=8)
        accepted = window.append(_stack(3, fill=1.0), np.array([0, 1, 2]))
        assert accepted == 3
        snapshot = window.snapshot()
        assert snapshot.cases == 3
        assert snapshot.stack.shape == (3, NUM_LAYERS, NUM_CLASSES)
        assert snapshot.class_ids.tolist() == [0, 1, 2]
        assert snapshot.appended_total == 3
        assert snapshot.dropped_total == 0

    def test_ring_overwrites_oldest(self):
        window = MonitorWindow(max_cases=4)
        window.append(_stack(3, fill=1.0), np.array([1, 1, 1]))
        window.append(_stack(3, fill=2.0), np.array([2, 2, 2]))
        snapshot = window.snapshot()
        assert snapshot.cases == 4
        # Oldest first: one surviving fill=1 row, then the three fill=2 rows.
        assert snapshot.class_ids.tolist() == [1, 2, 2, 2]
        assert snapshot.stack[0, 0, 0] == 1.0
        assert snapshot.stack[-1, 0, 0] == 2.0
        assert snapshot.appended_total == 6

    def test_oversized_chunk_keeps_newest_rows(self):
        window = MonitorWindow(max_cases=2)
        window.append(_stack(5), np.arange(5))
        snapshot = window.snapshot()
        assert snapshot.class_ids.tolist() == [3, 4]

    def test_time_based_expiry(self):
        clock = FakeClock()
        window = MonitorWindow(max_cases=8, max_age_seconds=10.0, clock=clock)
        window.append(_stack(2), np.array([0, 0]))
        clock.advance(6.0)
        window.append(_stack(2), np.array([1, 1]))
        assert window.snapshot().cases == 4
        clock.advance(6.0)  # first chunk is now 12s old, second 6s
        snapshot = window.snapshot()
        assert snapshot.cases == 2
        assert snapshot.class_ids.tolist() == [1, 1]

    def test_shape_mismatch_drops_and_counts(self):
        window = MonitorWindow(max_cases=8)
        window.append(_stack(2), np.array([0, 0]))
        accepted = window.append(
            _stack(2, num_layers=NUM_LAYERS + 1), np.array([0, 0])
        )
        assert accepted == 0
        assert window.dropped_total == 2
        assert window.snapshot().cases == 2

    def test_contended_append_drops_instead_of_blocking(self):
        window = MonitorWindow(max_cases=8)
        window._lock.acquire()
        try:
            accepted = window.append(_stack(2), np.array([0, 0]))
        finally:
            window._lock.release()
        assert accepted == 0
        assert window.dropped_total == 2

    def test_append_strict_raises_typed_overflow(self):
        window = MonitorWindow(max_cases=8)
        window.close()
        with pytest.raises(MonitorOverflowError) as excinfo:
            window.append_strict(_stack(3), np.array([0, 1, 2]))
        assert excinfo.value.dropped == 3

    def test_closed_window_drops_silently_on_plain_append(self):
        window = MonitorWindow(max_cases=8)
        window.close()
        assert window.append(_stack(1), np.array([0])) == 0
        assert window.dropped_total == 1

    def test_clear_keeps_counters(self):
        window = MonitorWindow(max_cases=8)
        window.append(_stack(3), np.array([0, 1, 2]))
        window.clear()
        assert len(window) == 0
        assert window.stats()["appended_total"] == 3


# ---------------------------------------------------------------- thresholds / alerts


class TestDriftThresholds:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftThresholds(warn=0.0)
        with pytest.raises(ValueError):
            DriftThresholds(warn=2.0, critical=1.0)
        with pytest.raises(ValueError):
            DriftThresholds(hysteresis=1.0)

    def test_escalation_is_immediate(self):
        thresholds = DriftThresholds(warn=2.0, critical=4.0, hysteresis=0.1)
        assert thresholds.resolve(1.0) == LEVEL_OK
        assert thresholds.resolve(2.0) == LEVEL_WARN
        assert thresholds.resolve(4.5) == LEVEL_CRITICAL

    def test_clearing_requires_hysteresis_margin(self):
        thresholds = DriftThresholds(warn=2.0, critical=4.0, hysteresis=0.1)
        # 1.9 is below warn but inside the 10% band: a warn level sticks.
        assert thresholds.resolve(1.9, previous=LEVEL_WARN) == LEVEL_WARN
        assert thresholds.resolve(1.7, previous=LEVEL_WARN) == LEVEL_OK
        # Same for critical: 3.7 >= 4.0 * 0.9 keeps critical.
        assert thresholds.resolve(3.7, previous=LEVEL_CRITICAL) == LEVEL_CRITICAL
        assert thresholds.resolve(3.5, previous=LEVEL_CRITICAL) == LEVEL_WARN


class TestAlertManager:
    def test_escalation_fires_event_and_cooldown_suppresses(self):
        clock = FakeClock()
        fired = []
        manager = AlertManager(
            cooldown_seconds=60.0, clock=clock, on_event=lambda a: fired.append(a.level)
        )
        manager.update("m:drift", LEVEL_WARN)
        assert fired == [LEVEL_WARN]
        manager.update("m:drift", LEVEL_OK)  # de-escalation: silent
        clock.advance(10.0)
        manager.update("m:drift", LEVEL_CRITICAL)  # inside cooldown: suppressed
        assert fired == [LEVEL_WARN]
        alert = manager.get("m:drift")
        assert alert.level == LEVEL_CRITICAL  # state still truthful
        assert alert.suppressed_total == 1
        clock.advance(61.0)
        manager.update("m:drift", LEVEL_OK)
        manager.update("m:drift", LEVEL_WARN)  # cooldown elapsed: fires again
        assert fired == [LEVEL_WARN, LEVEL_WARN]
        assert alert.events_total == 2

    def test_worst_level_and_active_ordering(self):
        manager = AlertManager(cooldown_seconds=0.0)
        manager.update("a", LEVEL_WARN)
        manager.update("b", LEVEL_CRITICAL)
        manager.update("c", LEVEL_OK)
        assert manager.worst_level() == LEVEL_CRITICAL
        active = manager.active()
        assert [a.name for a in active] == ["b", "a"]
        assert level_severity(manager.worst_level()) == 2

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            AlertManager().update("a", "panic")


# ---------------------------------------------------------------- drift detection


@pytest.fixture(scope="module")
def tiny_library(fitted_deepmorph):
    return fitted_deepmorph.patterns


def _snapshot_of(stack: np.ndarray, class_ids: np.ndarray):
    window = MonitorWindow(max_cases=max(stack.shape[0], 1))
    window.append(stack, class_ids)
    return window.snapshot()


def _class_mean_traffic(library, rows_per_class: int):
    """Traffic sitting exactly on each class mean: drift score ~0."""
    stacks, classes = [], []
    for class_id in library.classes():
        mean = library.patterns[class_id].mean_trajectory
        stacks.append(np.repeat(mean[None, :, :], rows_per_class, axis=0))
        classes.append(np.full(rows_per_class, class_id))
    return np.concatenate(stacks), np.concatenate(classes)


class TestDriftDetector:
    def test_on_pattern_traffic_scores_ok(self, tiny_library):
        detector = DriftDetector(
            tiny_library, thresholds=DriftThresholds(warn=0.5, critical=1.0), min_cases=4
        )
        stack, classes = _class_mean_traffic(tiny_library, rows_per_class=4)
        report = detector.evaluate(_snapshot_of(stack, classes))
        assert not report.insufficient
        assert report.scored_cases == stack.shape[0]
        assert report.level == LEVEL_OK
        assert report.aggregate_ewma == pytest.approx(0.0, abs=1e-6)

    def test_mislabeled_traffic_escalates(self, tiny_library):
        detector = DriftDetector(
            tiny_library,
            thresholds=DriftThresholds(warn=0.5, critical=1.0),
            ewma_alpha=1.0,
            min_cases=4,
        )
        stack, classes = _class_mean_traffic(tiny_library, rows_per_class=4)
        # Traffic whose predicted class disagrees with the trajectory it
        # produces — each case is scored against the *wrong* class mean.
        shifted = np.roll(classes, 4)
        report = detector.evaluate(_snapshot_of(stack, shifted))
        assert report.level in (LEVEL_WARN, LEVEL_CRITICAL)
        assert any(score.level != LEVEL_OK for score in report.per_class)

    def test_insufficient_window_carries_levels_over(self, tiny_library):
        detector = DriftDetector(tiny_library, min_cases=8)
        report = detector.evaluate(_snapshot_of(_stack(0), np.array([], dtype=int)))
        assert report.insufficient
        assert report.level == LEVEL_OK
        assert report.aggregate_raw is None

    def test_unmatched_classes_are_counted_not_scored(self, tiny_library):
        detector = DriftDetector(
            tiny_library, thresholds=DriftThresholds(warn=0.5, critical=1.0), min_cases=4
        )
        stack, classes = _class_mean_traffic(tiny_library, rows_per_class=2)
        unmatched = np.full_like(classes, 99)  # no pattern for class 99
        report = detector.evaluate(_snapshot_of(stack, unmatched))
        assert report.scored_cases == 0
        assert report.unmatched_cases == stack.shape[0]
        assert not report.insufficient

    def test_reset_forgets_baselines(self, tiny_library):
        detector = DriftDetector(
            tiny_library,
            thresholds=DriftThresholds(warn=0.5, critical=1.0),
            ewma_alpha=1.0,
            min_cases=4,
        )
        stack, classes = _class_mean_traffic(tiny_library, rows_per_class=4)
        detector.evaluate(_snapshot_of(stack, np.roll(classes, 4)))
        assert detector.level != LEVEL_OK
        detector.reset()
        assert detector.level == LEVEL_OK


# ---------------------------------------------------------------- sink


class TestMonitorSink:
    def _sink(self, library, **kwargs):
        kwargs.setdefault("thresholds", DriftThresholds(warn=0.5, critical=1.0))
        kwargs.setdefault("min_cases", 4)
        kwargs.setdefault("metrics", MetricsRegistry())
        return MonitorSink(lambda key: library, **kwargs)

    def test_observe_extracted_feeds_window_and_evaluates(self, tiny_library):
        sink = self._sink(tiny_library, evaluate_every=8)
        stack, classes = _class_mean_traffic(tiny_library, rows_per_class=4)
        final_probs = np.eye(NUM_CLASSES)[classes]
        sink.observe_extracted("tiny@v1", stack, final_probs)
        payload = sink.payload()
        model = payload["models"]["tiny@v1"]
        assert model["window"]["cases"] == stack.shape[0]
        assert model["drift"] is not None  # auto-evaluated at evaluate_every
        assert payload["level"] == LEVEL_OK
        metrics = sink.metrics.as_dict()
        assert metrics["monitor.observed_cases"]["value"] == stack.shape[0]

    def test_taps_never_raise(self, tiny_library):
        def broken_resolver(key):
            raise RuntimeError("registry exploded")

        sink = MonitorSink(broken_resolver, metrics=MetricsRegistry())
        sink.observe_extracted("m", _stack(2), np.eye(NUM_CLASSES)[[0, 1]])
        sink.observe_labeled(
            "m", _stack(2), np.eye(NUM_CLASSES)[[0, 1]], np.array([0, 1])
        )
        assert sink.metrics.as_dict()["monitor.errors"]["value"] == 2

    def test_disabled_payload_shape(self):
        payload = MonitorSink.disabled_payload()
        assert payload == {"enabled": False, "level": "ok", "models": {}, "alerts": {}}

    def test_labeled_tap_counts_misclassifications(self, tiny_library):
        sink = self._sink(tiny_library, evaluate_every=0)
        stack, classes = _class_mean_traffic(tiny_library, rows_per_class=2)
        final_probs = np.eye(NUM_CLASSES)[classes]
        wrong = np.roll(classes, 1)
        sink.observe_labeled("m", stack, final_probs, wrong)
        metrics = sink.metrics.as_dict()
        assert metrics["monitor.labeled_cases"]["value"] == stack.shape[0]
        assert metrics["monitor.misclassified_cases"]["value"] > 0


# ---------------------------------------------------------------- updater


@pytest.fixture()
def private_morph(fitted_deepmorph, tmp_path):
    """A deep copy of the fitted morph (updates must not touch the fixture)."""
    from repro.serialize.deepmorph import load_deepmorph, save_deepmorph

    path = tmp_path / "morph.npz"
    save_deepmorph(fitted_deepmorph, path)
    return load_deepmorph(path)


@pytest.fixture()
def labeled_chunk(fitted_deepmorph, tiny_splits):
    _, test = tiny_splits
    inputs, labels = test.arrays()
    trajectories, final_probs = fitted_deepmorph.instrumented.layer_distributions(inputs)
    return trajectories, final_probs, np.asarray(labels)


class TestPatternUpdater:
    def test_buffers_until_min_cases_then_applies(self, private_morph, labeled_chunk):
        trajectories, final_probs, labels = labeled_chunk
        updater = PatternUpdater(private_morph, "tiny", min_cases=labels.shape[0])
        half = labels.shape[0] // 2
        updater.add(trajectories[:half], final_probs[:half], labels[:half])
        assert not updater.ready()
        assert updater.maybe_apply() is None
        updater.add(trajectories[half:], final_probs[half:], labels[half:])
        assert updater.ready()
        result = updater.maybe_apply()
        assert result is not None
        assert result.cases == labels.shape[0]
        assert updater.pending_cases == 0
        assert updater.stats()["applied_total"] == 1

    def test_apply_registers_immutable_snapshot(
        self, private_morph, labeled_chunk, tmp_path
    ):
        trajectories, final_probs, labels = labeled_chunk
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("tiny", private_morph)
        updater = PatternUpdater(private_morph, "tiny", registry=registry, min_cases=1)
        updater.add(trajectories, final_probs, labels)
        result = updater.apply()
        assert result.registered is not None
        assert result.registered["version"] == "v2"
        record = registry.record("tiny", "v2")
        assert record.metadata["monitor"]["kind"] == "partial_fit"
        assert record.metadata["monitor"]["cases"] == int(labels.shape[0])
        assert registry.versions("tiny") == ["v1", "v2"]

    def test_buffer_cap_discards_oldest(self, private_morph, labeled_chunk):
        trajectories, final_probs, labels = labeled_chunk
        chunk = labels.shape[0]
        updater = PatternUpdater(
            private_morph, "tiny", min_cases=1, max_buffer_cases=chunk
        )
        updater.add(trajectories, final_probs, labels)
        updater.add(trajectories, final_probs, labels)
        assert updater.pending_cases == chunk
        assert updater.discarded_total == chunk

    def test_empty_buffer_apply_is_noop(self, private_morph):
        updater = PatternUpdater(private_morph, "tiny", min_cases=1)
        assert updater.apply() is None


# ---------------------------------------------------------------- wire mapping


class TestMonitorOverflowWire:
    def test_maps_to_429(self):
        assert error_status(MonitorOverflowError("window full", dropped=3)) == 429

    def test_429_round_trips_from_wire(self):
        rebuilt = exception_from_wire(429, "window full")
        assert isinstance(rebuilt, MonitorOverflowError)
        rebuilt = exception_from_wire(
            500, "window full", error_type="MonitorOverflowError"
        )
        assert isinstance(rebuilt, MonitorOverflowError)


# ---------------------------------------------------------------- registry concurrency


class TestRegistryConcurrentWriters:
    def test_concurrent_auto_registration_allocates_distinct_versions(
        self, fitted_deepmorph, tmp_path
    ):
        registry = ArtifactRegistry(tmp_path / "registry")
        threads = 8
        barrier = threading.Barrier(threads)
        results, errors = [], []
        lock = threading.Lock()

        def register() -> None:
            barrier.wait()
            try:
                record = registry.register("shared", fitted_deepmorph)
                with lock:
                    results.append(record.version)
            except Exception as error:  # noqa: BLE001 - collected and asserted
                with lock:
                    errors.append(error)

        workers = [threading.Thread(target=register) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert sorted(results) == sorted(f"v{i}" for i in range(1, threads + 1))
        assert registry.versions("shared") == [f"v{i}" for i in range(1, threads + 1)]

    def test_explicit_duplicate_version_is_immutability_error(
        self, fitted_deepmorph, tmp_path
    ):
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph, version="v1")
        with pytest.raises(ServeError, match="immutable"):
            registry.register("m", fitted_deepmorph, version="v1")

    def test_deleted_version_numbers_stay_burned(self, fitted_deepmorph, tmp_path):
        registry = ArtifactRegistry(tmp_path / "registry")
        registry.register("m", fitted_deepmorph)
        registry.register("m", fitted_deepmorph)
        registry.delete("m", "v2")
        record = registry.register("m", fitted_deepmorph)
        assert record.version == "v3"
