"""Tests for the experiment harness configuration, Table 1 plumbing, and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import diagnose as cli_diagnose
from repro.cli import inject as cli_inject
from repro.cli import table1 as cli_table1
from repro.cli import train as cli_train
from repro.core import DefectClassifierConfig
from repro.defects import DefectType
from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments import (
    MODEL_DATASETS,
    PAPER_TABLE1,
    ExperimentSettings,
    fit_weights,
    model_hyperparameters,
    preset,
)
from repro.experiments.calibrate import CalibrationExample, describe_weights
from repro.experiments.config import PRESETS
from repro.experiments.runner import make_dataset, make_model
from repro.experiments.table1 import Table1Result, Table1Row, format_table1


SMOKE = preset("smoke")


class TestExperimentSettings:
    def test_defaults_are_valid(self):
        settings = ExperimentSettings()
        assert settings.model in MODEL_DATASETS

    def test_for_model_switches_dataset(self):
        settings = ExperimentSettings().for_model("resnet")
        assert settings.model == "resnet"
        assert settings.dataset == "cifar"

    def test_with_seed(self):
        assert ExperimentSettings().with_seed(5).seed == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(dataset="imagenet")
        with pytest.raises(ConfigurationError):
            ExperimentSettings(model="vgg")
        with pytest.raises(ConfigurationError):
            ExperimentSettings(epochs=0)

    def test_presets_exist(self):
        assert set(PRESETS) == {"default", "quick", "smoke", "paper"}
        with pytest.raises(ConfigurationError):
            preset("gigantic")

    def test_model_hyperparameters_cover_all_models(self):
        for model in MODEL_DATASETS:
            assert model_hyperparameters(model)
            assert model_hyperparameters(model, scale="paper")
        with pytest.raises(ConfigurationError):
            model_hyperparameters("vgg")

    def test_paper_scale_resnet_is_resnet34_layout(self):
        assert model_hyperparameters("resnet", scale="paper")["block_counts"] == [3, 4, 6, 3]
        assert model_hyperparameters("densenet", scale="paper")["units_per_block"] == [12, 12, 12]


class TestRunnerPlumbing:
    def test_make_dataset_shapes(self):
        _, train, test = make_dataset(SMOKE)
        assert train.input_shape == (1, 14, 14)
        assert train.num_classes == 10
        assert len(train) == SMOKE.train_per_class * 10
        assert len(test) == SMOKE.test_per_class * 10

    def test_make_dataset_is_deterministic(self):
        _, train_a, _ = make_dataset(SMOKE)
        _, train_b, _ = make_dataset(SMOKE)
        np.testing.assert_allclose(train_a.inputs, train_b.inputs)

    def test_make_model_matches_dataset(self):
        model = make_model(SMOKE.for_model("resnet"))
        assert model.kind == "resnet"
        assert model.input_shape == (3, 16, 16)


class TestTable1Structures:
    def test_paper_table_has_all_twelve_cells(self):
        assert len(PAPER_TABLE1) == 12
        for (model, defect), ratios in PAPER_TABLE1.items():
            assert model in MODEL_DATASETS
            assert defect in {"itd", "utd", "sd"}
            assert len(ratios) == 3

    def test_paper_table_is_diagonally_dominant(self):
        order = ["itd", "utd", "sd"]
        for (model, defect), ratios in PAPER_TABLE1.items():
            assert int(np.argmax(ratios)) == order.index(defect)

    def test_row_and_result_helpers(self):
        row = Table1Row(
            model="lenet",
            dataset="mnist",
            injected_defect=DefectType.ITD,
            ratios={DefectType.ITD: 0.6, DefectType.UTD: 0.25, DefectType.SD: 0.15},
            dominant_defect=DefectType.ITD,
            test_accuracy=0.8,
            num_faulty_cases=40,
        )
        assert row.diagonal_correct
        assert row.paper_ratios() == PAPER_TABLE1[("lenet", "itd")]
        result = Table1Result(rows=[row])
        assert result.diagonal_accuracy == 1.0
        assert result.row("lenet", "itd") is row
        with pytest.raises(KeyError):
            result.row("lenet", "utd")
        rendered = format_table1(result)
        assert "lenet" in rendered and "diagonal dominance" in rendered

    def test_run_table1_rejects_unknown_model(self):
        from repro.experiments import run_table1

        with pytest.raises(ExperimentError):
            run_table1(models=["vgg"], settings=SMOKE)

    def test_run_table1_rejects_invalid_jobs(self):
        from repro.experiments import run_table1

        for jobs in (0, -3):
            with pytest.raises(ExperimentError, match="jobs must be >= 1"):
                run_table1(models=["lenet"], defects=["itd"], settings=SMOKE, jobs=jobs)

    def test_run_table1_parallel_matches_serial_bitwise(self):
        """Per-cell seed derivation makes the pool a pure throughput knob."""
        from repro.experiments import run_table1

        serial = run_table1(
            models=["lenet"], defects=["itd", "utd"], settings=SMOKE, jobs=1
        )
        parallel = run_table1(
            models=["lenet"], defects=["itd", "utd"], settings=SMOKE, jobs=2
        )
        assert len(serial.rows) == len(parallel.rows) == 2
        for serial_row, parallel_row in zip(serial.rows, parallel.rows):
            assert serial_row.model == parallel_row.model
            assert serial_row.injected_defect == parallel_row.injected_defect
            for defect, ratio in serial_row.ratios.items():
                assert parallel_row.ratios[defect] == ratio  # bitwise
            assert serial_row.test_accuracy == parallel_row.test_accuracy
            assert serial_row.num_faulty_cases == parallel_row.num_faulty_cases


class TestCalibrationFit:
    def test_fit_weights_separates_synthetic_clusters(self):
        from repro.core import FEATURE_NAMES

        rng = np.random.default_rng(0)
        num_features = len(FEATURE_NAMES)
        examples = []
        for label_index, defect in enumerate([DefectType.ITD, DefectType.UTD, DefectType.SD]):
            center = np.zeros(num_features)
            center[1 + label_index] = 3.0
            for _ in range(30):
                features = center + rng.normal(0, 0.1, size=num_features)
                features[0] = 1.0
                examples.append(CalibrationExample(features=features, label=defect, model="lenet"))
        config, metrics = fit_weights(examples, epochs=150)
        assert isinstance(config, DefectClassifierConfig)
        assert metrics["train_accuracy"] > 0.95
        assert "feature_quality" in describe_weights(config)

    def test_fit_weights_rejects_empty(self):
        with pytest.raises(ExperimentError):
            fit_weights([])


class TestCli:
    def test_train_and_diagnose_cli_round_trip(self, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        exit_code = cli_train.main([
            "--preset", "smoke", "--model", "lenet", "--output", str(model_path),
        ])
        assert exit_code == 0
        assert model_path.exists()

        report_path = tmp_path / "report.json"
        exit_code = cli_diagnose.main([
            "--preset", "smoke", "--model", "lenet",
            "--model-file", str(model_path), "--report", str(report_path),
        ])
        assert exit_code == 0
        assert report_path.exists()
        payload = json.loads(report_path.read_text())
        assert set(payload["ratios"]) == {"itd", "utd", "sd"}
        captured = capsys.readouterr()
        assert "dominant defect" in captured.out

    def test_inject_cli_json_output(self, capsys):
        exit_code = cli_inject.main([
            "--preset", "smoke", "--model", "lenet", "--defect", "utd", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["injected_defect"] == "utd"
        assert payload["model"] == "lenet"

    def test_table1_cli_single_cell(self, tmp_path, capsys):
        json_path = tmp_path / "table1.json"
        exit_code = cli_table1.main([
            "--preset", "smoke", "--models", "lenet", "--defects", "utd",
            "--json", str(json_path),
        ])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert len(payload["rows"]) == 1
        assert "diagonal dominance" in capsys.readouterr().out

    def test_table1_cli_jobs_flag(self, tmp_path, capsys):
        args = cli_table1.build_parser().parse_args(["--jobs", "2"])
        assert args.jobs == 2
        assert cli_table1.build_parser().parse_args([]).jobs == 1

        json_path = tmp_path / "table1_jobs.json"
        exit_code = cli_table1.main([
            "--preset", "smoke", "--models", "lenet", "--defects", "itd", "utd",
            "--jobs", "2", "--json", str(json_path),
        ])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert len(payload["rows"]) == 2
        capsys.readouterr()

    def test_table1_cli_rejects_invalid_jobs(self):
        with pytest.raises(ExperimentError, match="jobs must be >= 1"):
            cli_table1.main([
                "--preset", "smoke", "--models", "lenet", "--defects", "utd",
                "--jobs", "0",
            ])
