"""Shape, mode, and error-handling tests for the layer catalogue."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DenseBlock,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
    TransitionLayer,
)
from repro.nn.module import Parameter


class TestDense:
    def test_forward_shape(self):
        layer = Dense(8, 3, rng=0)
        out = layer.forward(np.zeros((5, 8)))
        assert out.shape == (5, 3)

    def test_output_shape_helper(self):
        assert Dense(8, 3, rng=0).output_shape((8,)) == (3,)

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(ShapeError):
            Dense(8, 3, rng=0).forward(np.zeros((5, 9)))

    def test_rejects_unflattened_input(self):
        with pytest.raises(ShapeError):
            Dense(8, 3, rng=0).forward(np.zeros((5, 2, 4)))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(4, 2, rng=0).backward(np.zeros((1, 2)))


class TestConv2D:
    def test_same_padding_preserves_spatial_size(self):
        layer = Conv2D(1, 4, kernel_size=3, padding="same", rng=0)
        out = layer.forward(np.zeros((2, 1, 9, 9)))
        assert out.shape == (2, 4, 9, 9)

    def test_stride_halves_resolution(self):
        layer = Conv2D(1, 2, kernel_size=3, stride=2, padding=1, rng=0)
        assert layer.output_shape((1, 8, 8)) == (2, 4, 4)

    def test_rejects_bad_padding_string(self):
        with pytest.raises(ConfigurationError):
            Conv2D(1, 2, 3, padding="valid")

    def test_same_padding_rejects_even_kernel(self):
        # (kernel_size - 1) // 2 cannot preserve spatial size for even
        # kernels; the old code silently shrank the map instead.
        with pytest.raises(ConfigurationError, match="odd kernel_size"):
            Conv2D(1, 2, kernel_size=4, padding="same")

    def test_same_padding_accepts_odd_kernels(self):
        for kernel in (1, 3, 5):
            layer = Conv2D(1, 2, kernel_size=kernel, padding="same", rng=0)
            out = layer.forward(np.zeros((1, 1, 9, 9)))
            assert out.shape == (1, 2, 9, 9), f"kernel={kernel}"

    def test_rejects_negative_kernel(self):
        with pytest.raises(ConfigurationError):
            Conv2D(1, 2, kernel_size=-1)


class TestPoolingLayers:
    def test_maxpool_shape(self):
        assert MaxPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)

    def test_avgpool_shape(self):
        assert AvgPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)

    def test_global_avgpool_reduces_to_channels(self):
        layer = GlobalAvgPool2D()
        out = layer.forward(np.ones((2, 5, 4, 4)))
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out, 1.0)

    def test_global_avgpool_rejects_2d(self):
        with pytest.raises(ShapeError):
            GlobalAvgPool2D().forward(np.ones((2, 5)))


class TestBatchNorm:
    def test_training_mode_normalizes_batch(self):
        layer = BatchNorm1D(4)
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(64, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_mode_uses_running_statistics(self):
        layer = BatchNorm1D(2, momentum=0.0)
        x = np.random.default_rng(0).normal(2.0, 1.0, size=(32, 2))
        layer.forward(x)
        layer.eval()
        single = layer.forward(np.full((1, 2), 2.0))
        assert np.all(np.isfinite(single))

    def test_batchnorm2d_channel_mismatch(self):
        with pytest.raises(ShapeError):
            BatchNorm2D(3).forward(np.zeros((2, 4, 5, 5)))

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            BatchNorm1D(3, momentum=1.5)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = np.random.default_rng(1).random((10, 10))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_training_mode_zeroes_some_activations(self):
        layer = Dropout(0.5, rng=0)
        out = layer.forward(np.ones((20, 20)))
        assert np.sum(out == 0.0) > 0
        # Inverted dropout preserves the expectation approximately.
        assert abs(out.mean() - 1.0) < 0.15

    def test_rejects_rate_of_one(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestFlatten:
    def test_flatten_and_restore(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        grad = layer.backward(out)
        assert grad.shape == x.shape


class TestSequential:
    def test_forward_matches_manual_chain(self):
        d1, d2 = Dense(4, 3, rng=0), Dense(3, 2, rng=1)
        model = Sequential([d1, ReLU(), d2])
        x = np.random.default_rng(0).random((5, 4))
        expected = d2.forward(np.maximum(d1.forward(x), 0))
        np.testing.assert_allclose(model.forward(x), expected)

    def test_forward_with_activations_returns_each_stage(self):
        model = Sequential([Dense(4, 3, rng=0, name="a"), ReLU(name="b")])
        out, acts = model.forward_with_activations(np.zeros((2, 4)))
        assert list(acts) == ["a", "b"]
        np.testing.assert_allclose(acts["b"], out)

    def test_forward_until(self):
        model = Sequential([Dense(4, 3, rng=0, name="a"), ReLU(name="b")])
        mid = model.forward_until(np.zeros((2, 4)), "a")
        assert mid.shape == (2, 3)
        with pytest.raises(KeyError):
            model.forward_until(np.zeros((2, 4)), "missing")

    def test_duplicate_names_are_disambiguated(self):
        model = Sequential([ReLU(name="r"), ReLU(name="r")])
        assert len(set(model.layer_names())) == 2

    def test_rejects_non_layer(self):
        with pytest.raises(ConfigurationError):
            Sequential(["not a layer"])

    def test_index_of(self):
        model = Sequential([ReLU(name="x"), ReLU(name="y")])
        assert model.index_of("y") == 1
        with pytest.raises(KeyError):
            model.index_of("z")


class TestBlocks:
    def test_residual_block_output_shape(self):
        block = ResidualBlock(3, 6, stride=2, rng=0)
        assert block.output_shape((3, 8, 8)) == (6, 4, 4)

    def test_residual_block_identity_shortcut_has_no_projection(self):
        block = ResidualBlock(4, 4, stride=1, rng=0)
        assert block.shortcut is None

    def test_dense_block_channel_growth(self):
        block = DenseBlock(4, growth_rate=3, num_units=2, rng=0)
        assert block.out_channels == 10
        out = block.forward(np.zeros((2, 4, 6, 6)))
        assert out.shape == (2, 10, 6, 6)

    def test_transition_layer_halves_spatial_size(self):
        layer = TransitionLayer(8, 4, rng=0)
        assert layer.output_shape((8, 8, 8)) == (4, 4, 4)

    def test_invalid_block_configs(self):
        with pytest.raises(ConfigurationError):
            ResidualBlock(0, 4)
        with pytest.raises(ConfigurationError):
            DenseBlock(4, growth_rate=0, num_units=2)
        with pytest.raises(ConfigurationError):
            TransitionLayer(4, 0)


class TestModuleBasics:
    def test_parameter_grad_accumulation(self):
        param = Parameter(np.zeros((2, 2)))
        param.accumulate_grad(np.ones((2, 2)))
        param.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_allclose(param.grad, 2.0)
        param.zero_grad()
        assert param.grad is None

    def test_parameter_rejects_mismatched_grad(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            param.accumulate_grad(np.ones(3))

    def test_freeze_and_unfreeze(self):
        layer = Dense(3, 2, rng=0)
        layer.freeze()
        assert all(not p.trainable for p in layer.parameters())
        layer.unfreeze()
        assert all(p.trainable for p in layer.parameters())

    def test_named_parameters_are_unique(self):
        model = Sequential([Dense(3, 3, rng=0), Dense(3, 2, rng=1)])
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_train_eval_propagates_to_children(self):
        model = Sequential([Dropout(0.5), ReLU()])
        model.eval()
        assert all(not child.training for child in model.children())
        model.train()
        assert all(child.training for child in model.children())

    def test_num_parameters_counts_scalars(self):
        layer = Dense(3, 2, rng=0)
        assert layer.num_parameters() == 3 * 2 + 2
