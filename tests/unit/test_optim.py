"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense
from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineAnnealing,
    ExponentialDecay,
    PiecewiseSchedule,
    RMSProp,
    StepDecay,
    WarmupSchedule,
    clip_gradients,
    get_optimizer,
    get_schedule,
)


def quadratic_param(start=5.0):
    """A single scalar parameter with gradient d/dx (x^2) = 2x."""
    return Parameter(np.array([start]))


def run_steps(optimizer, param, steps=200):
    for _ in range(steps):
        param.zero_grad()
        param.accumulate_grad(2.0 * param.data)
        optimizer.step()
    return float(param.data[0])


class TestOptimizers:
    @pytest.mark.parametrize("cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (SGD, {"lr": 0.05, "momentum": 0.9, "nesterov": True}),
        (Adam, {"lr": 0.2}),
        (AdamW, {"lr": 0.2, "weight_decay": 0.01}),
        (RMSProp, {"lr": 0.05}),
    ])
    def test_optimizers_minimize_quadratic(self, cls, kwargs):
        param = quadratic_param()
        optimizer = cls([param], **kwargs)
        final = run_steps(optimizer, param)
        assert abs(final) < 0.1

    def test_sgd_single_step_update_rule(self):
        param = Parameter(np.array([1.0]))
        param.accumulate_grad(np.array([0.5]))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [0.95])

    def test_frozen_parameters_are_not_updated(self):
        param = Parameter(np.array([1.0]), trainable=False)
        param.accumulate_grad(np.array([1.0]))
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        param.accumulate_grad(np.array([0.0]))
        SGD([param], lr=0.1, weight_decay=0.5).step()
        assert param.data[0] < 1.0

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_invalid_hyperparameters(self):
        param = quadratic_param()
        with pytest.raises(ConfigurationError):
            SGD([param], lr=-1)
        with pytest.raises(ConfigurationError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ConfigurationError):
            SGD([param], lr=0.1, nesterov=True)
        with pytest.raises(ConfigurationError):
            Adam([param], lr=0.1, beta1=1.0)

    def test_zero_grad_clears_all(self):
        layer = Dense(3, 2, rng=0)
        optimizer = Adam(layer.parameters())
        layer.forward(np.ones((1, 3)))
        layer.backward(np.ones((1, 2)))
        assert any(p.grad is not None for p in layer.parameters())
        optimizer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_registry(self):
        param = quadratic_param()
        assert isinstance(get_optimizer("adam", [param]), Adam)
        assert isinstance(get_optimizer("sgd", [param], lr=0.5), SGD)
        with pytest.raises(ConfigurationError):
            get_optimizer("unknown", [param])

    def test_clip_gradients_scales_to_max_norm(self):
        params = [Parameter(np.zeros(4)) for _ in range(2)]
        for p in params:
            p.accumulate_grad(np.full(4, 3.0))
        pre_norm = clip_gradients(params, max_norm=1.0)
        assert pre_norm > 1.0
        total = np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params))
        np.testing.assert_allclose(total, 1.0, rtol=1e-9)

    def test_clip_gradients_noop_below_threshold(self):
        param = Parameter(np.zeros(2))
        param.accumulate_grad(np.array([0.1, 0.1]))
        clip_gradients([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(100) == 0.1

    def test_step_decay(self):
        schedule = StepDecay(1.0, step_size=2, gamma=0.1)
        assert schedule(0) == 1.0
        assert schedule(2) == pytest.approx(0.1)
        assert schedule(4) == pytest.approx(0.01)

    def test_exponential_decay_monotone(self):
        schedule = ExponentialDecay(1.0, gamma=0.9)
        values = [schedule(e) for e in range(5)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_cosine_annealing_endpoints(self):
        schedule = CosineAnnealing(1.0, total_epochs=10, min_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(0.1)

    def test_warmup_then_inner(self):
        schedule = WarmupSchedule(ConstantSchedule(1.0), warmup_epochs=4)
        assert schedule(0) == pytest.approx(0.25)
        assert schedule(3) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(1.0)

    def test_piecewise(self):
        schedule = PiecewiseSchedule([5, 10], [0.1, 0.01, 0.001])
        assert schedule(0) == 0.1
        assert schedule(7) == 0.01
        assert schedule(50) == 0.001

    def test_piecewise_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseSchedule([5], [0.1])
        with pytest.raises(ConfigurationError):
            PiecewiseSchedule([10, 5], [0.1, 0.01, 0.001])

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.1)(-1)

    def test_registry(self):
        assert isinstance(get_schedule("cosine", 0.1, total_epochs=5), CosineAnnealing)
        with pytest.raises(ConfigurationError):
            get_schedule("unknown", 0.1)
