"""Parity suite for the loop-free numerical fast path and the dtype policy.

Three obligations are pinned here:

1. **Fast path == reference path.**  The vectorized ``im2col``/``col2im``/
   ``pool_activation`` implementations must reproduce the original
   per-kernel-offset loop implementations (kept as ``*_reference``) to within
   float tolerance, over kernels, strides, paddings, and dtypes.
2. **Pooling/padding bugfixes.**  Padded max pooling must never let a padded
   zero beat a real negative activation, and padded average pooling must use
   a divisor consistent with its ``count_include_pad`` mode in forward and
   backward.
3. **float32 extraction == float64 extraction (to 1e-5).**  The end-to-end
   footprint extraction fast path (float32 inference dtype) must stay within
   1e-5 of the full-precision trajectory, which is far below the resolution
   at which probe distributions carry diagnostic signal.
"""

import numpy as np
import pytest

from repro.core import pool_activation, pool_activation_reference
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import functional as F
from repro.nn import dtype as dt


# ---------------------------------------------------------------------------
# im2col / col2im fast-vs-reference parity
# ---------------------------------------------------------------------------

IM2COL_CASES = [
    # (n, c, h, w, kh, kw, stride, pad)
    (2, 3, 6, 6, 3, 3, 1, 0),
    (2, 3, 6, 6, 3, 3, 1, 1),
    (1, 2, 7, 5, 3, 3, 2, 1),
    (2, 1, 8, 8, 2, 2, 2, 0),
    (1, 4, 9, 9, 5, 5, 1, 2),
    (3, 2, 5, 5, 1, 1, 1, 0),
    (1, 1, 6, 9, 3, 2, 2, 1),
]


class TestIm2colParity:
    @pytest.mark.parametrize("case", IM2COL_CASES)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_im2col_matches_reference(self, case, dtype):
        n, c, h, w, kh, kw, stride, pad = case
        x = np.random.default_rng(0).standard_normal((n, c, h, w)).astype(dtype)
        fast = F.im2col(x, kh, kw, stride, pad)
        ref = F.im2col_reference(x, kh, kw, stride, pad)
        assert fast.dtype == dtype
        np.testing.assert_array_equal(fast, ref)

    def test_im2col_pad_value_matches_reference(self):
        x = np.random.default_rng(1).standard_normal((2, 2, 5, 5))
        fast = F.im2col(x, 3, 3, 1, 1, pad_value=-np.inf)
        ref = F.im2col_reference(x, 3, 3, 1, 1, pad_value=-np.inf)
        np.testing.assert_array_equal(fast, ref)

    @pytest.mark.parametrize("case", IM2COL_CASES)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_col2im_matches_reference(self, case, dtype):
        n, c, h, w, kh, kw, stride, pad = case
        out_h = F.conv_output_size(h, kh, stride, pad)
        out_w = F.conv_output_size(w, kw, stride, pad)
        col = np.random.default_rng(2).standard_normal(
            (n * out_h * out_w, c * kh * kw)
        ).astype(dtype)
        fast = F.col2im(col, (n, c, h, w), kh, kw, stride, pad)
        ref = F.col2im_reference(col, (n, c, h, w), kh, kw, stride, pad)
        assert fast.dtype == dtype
        tol = 1e-12 if dtype == np.float64 else 1e-5
        np.testing.assert_allclose(fast, ref, atol=tol)

    def test_conv_forward_backward_on_fast_path_match_reference_col(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out, col = F.conv2d_forward(x, w, b, stride=1, pad=1)
        ref_col = F.im2col_reference(x, 3, 3, 1, 1)
        np.testing.assert_array_equal(col, ref_col)

        grad_out = rng.standard_normal(out.shape)
        grad_in, grad_w, grad_b = F.conv2d_backward(grad_out, x.shape, col, w, 1, 1)
        # Backward against the loop-based col2im.
        grad_col = grad_out.transpose(0, 2, 3, 1).reshape(-1, 4) @ w.reshape(4, -1)
        ref_grad_in = F.col2im_reference(grad_col, x.shape, 3, 3, 1, 1)
        np.testing.assert_allclose(grad_in, ref_grad_in, atol=1e-12)


# ---------------------------------------------------------------------------
# Pooling/padding bugfixes
# ---------------------------------------------------------------------------

class TestPaddedMaxPool:
    def test_all_negative_input_keeps_true_maximum(self):
        # Regression: zero-padded windows used to report 0 as the max of an
        # all-negative window.  On -|x| - 1 inputs every output must be < 0.
        rng = np.random.default_rng(4)
        x = -1.0 - rng.random((2, 3, 6, 6))
        out, _ = F.maxpool2d_forward(x, kernel=2, stride=2, pad=1)
        assert np.all(out < 0.0), "padded zeros leaked into the max"

    def test_corner_window_picks_real_element(self):
        x = np.full((1, 1, 4, 4), -5.0)
        x[0, 0, 0, 0] = -2.0
        out, _ = F.maxpool2d_forward(x, kernel=2, stride=2, pad=1)
        # The top-left padded window contains exactly one real element: -2.
        assert out[0, 0, 0, 0] == -2.0

    def test_backward_routes_no_gradient_to_padding(self):
        rng = np.random.default_rng(5)
        x = -1.0 - rng.random((2, 2, 4, 4))
        out, argmax = F.maxpool2d_forward(x, kernel=2, stride=2, pad=1)
        grad = F.maxpool2d_backward(np.ones_like(out), argmax, x.shape, 2, 2, pad=1)
        # Every output window's unit gradient must land on a real input
        # element: nothing may be lost into the cropped padding.
        assert grad.sum() == pytest.approx(out.size)

    def test_pad_not_smaller_than_kernel_rejected(self):
        with pytest.raises(ShapeError):
            F.maxpool2d_forward(np.zeros((1, 1, 4, 4)), kernel=2, stride=2, pad=2)


class TestPaddedAvgPool:
    def test_count_include_pad_divides_by_window_size(self):
        x = np.ones((1, 1, 2, 2))
        out = F.avgpool2d_forward(x, kernel=2, stride=2, pad=1, count_include_pad=True)
        # Each corner window holds one real 1.0 and three padded zeros.
        np.testing.assert_allclose(out, 0.25)

    def test_count_exclude_pad_divides_by_real_elements(self):
        x = np.ones((1, 1, 2, 2))
        out = F.avgpool2d_forward(x, kernel=2, stride=2, pad=1, count_include_pad=False)
        np.testing.assert_allclose(out, 1.0)

    @pytest.mark.parametrize("count_include_pad", [True, False])
    def test_forward_backward_divisors_are_consistent(self, count_include_pad):
        # d(sum of outputs)/dx computed analytically must match the backward
        # pass exactly: both sides use the same per-window divisor.
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 2, 5, 5))
        out = F.avgpool2d_forward(
            x, kernel=3, stride=2, pad=1, count_include_pad=count_include_pad
        )
        grad = F.avgpool2d_backward(
            np.ones_like(out), x.shape, 3, 2, pad=1, count_include_pad=count_include_pad
        )
        eps = 1e-6
        bumped = x.copy()
        bumped[0, 1, 0, 0] += eps
        bumped_out = F.avgpool2d_forward(
            bumped, kernel=3, stride=2, pad=1, count_include_pad=count_include_pad
        )
        numeric = (bumped_out.sum() - out.sum()) / eps
        assert grad[0, 1, 0, 0] == pytest.approx(numeric, rel=1e-4)

    def test_default_matches_historical_behavior(self):
        # Table-I runs divide by kernel**2 regardless of padding; the default
        # must keep doing that.
        x = np.random.default_rng(7).random((2, 2, 4, 4))
        col = F.im2col(x, 3, 3, 1, 1).reshape(-1, 2, 9)
        expected = col.mean(axis=2).reshape(2, 4, 4, 2).transpose(0, 3, 1, 2)
        out = F.avgpool2d_forward(x, kernel=3, stride=1, pad=1)
        np.testing.assert_allclose(out, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# pool_activation fast-vs-reference parity
# ---------------------------------------------------------------------------

class TestPoolActivationParity:
    @pytest.mark.parametrize("shape", [
        (2, 3, 8, 8),    # divides evenly into 2x2 blocks
        (2, 3, 12, 12),  # divides evenly into 3x3 blocks
        (1, 2, 7, 9),    # ragged trailing blocks on both axes
        (3, 1, 10, 10),  # ragged (block 3 over 10)
        (2, 4, 5, 16),   # mixed: ragged rows, even columns
    ])
    def test_matches_reference(self, shape):
        x = np.random.default_rng(8).standard_normal(shape)
        fast = pool_activation(x, max_spatial=4)
        ref = pool_activation_reference(x, max_spatial=4)
        assert fast.shape == ref.shape
        np.testing.assert_allclose(fast, ref, atol=1e-12)

    def test_preserves_float32(self):
        x = np.random.default_rng(9).standard_normal((2, 2, 10, 10)).astype(np.float32)
        fast = pool_activation(x, max_spatial=4)
        assert fast.dtype == np.float32
        np.testing.assert_allclose(
            fast, pool_activation_reference(x, max_spatial=4), atol=1e-6
        )

    def test_small_maps_and_dense_passthrough(self):
        dense = np.random.default_rng(10).standard_normal((4, 6))
        np.testing.assert_array_equal(pool_activation(dense), dense)
        small = np.random.default_rng(11).standard_normal((2, 3, 3, 3))
        np.testing.assert_array_equal(
            pool_activation(small, max_spatial=4), small.reshape(2, -1)
        )


# ---------------------------------------------------------------------------
# dtype policy
# ---------------------------------------------------------------------------

class TestDtypePolicy:
    def test_default_is_float64(self):
        assert dt.compute_dtype() == np.float64
        assert dt.as_compute(np.zeros(3, dtype=np.float32)).dtype == np.float64

    def test_autocast_scopes_the_change(self):
        with dt.autocast("float32"):
            assert dt.compute_dtype() == np.float32
            assert dt.as_compute([1.0, 2.0]).dtype == np.float32
        assert dt.compute_dtype() == np.float64

    def test_autocast_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with dt.autocast(np.float32):
                raise RuntimeError("boom")
        assert dt.compute_dtype() == np.float64

    def test_rejects_unsupported_dtypes(self):
        with pytest.raises(ConfigurationError):
            dt.resolve_dtype("int32")
        with pytest.raises(ConfigurationError):
            dt.resolve_dtype("float16")

    def test_as_compute_avoids_copy_on_match(self):
        x = np.zeros(4)
        assert dt.as_compute(x) is x

    def test_layer_forward_follows_policy(self):
        from repro.nn.layers import Conv2D, Dense

        x4 = np.random.default_rng(12).standard_normal((2, 1, 5, 5))
        conv = Conv2D(1, 2, kernel_size=3, padding=1, rng=0)
        dense = Dense(4, 3, rng=0)
        with dt.autocast("float32"):
            assert conv.forward(x4).dtype == np.float32
            assert dense.forward(np.zeros((2, 4))).dtype == np.float32
        assert conv.forward(x4).dtype == np.float64
        assert dense.forward(np.zeros((2, 4))).dtype == np.float64
        # Parameters themselves are never narrowed.
        assert conv.weight.data.dtype == np.float64


# ---------------------------------------------------------------------------
# End-to-end extraction parity: float32 fast path vs float64 reference
# ---------------------------------------------------------------------------

class TestExtractionDtypeParity:
    def test_float32_trajectories_match_float64_below_1e5(self, fitted_deepmorph, tiny_splits):
        _, test = tiny_splits
        inputs, _ = test.arrays()
        instrumented = fitted_deepmorph.instrumented
        assert instrumented.inference_dtype == np.float32

        fast_traj, fast_final = instrumented.layer_distributions(inputs)
        original = instrumented.inference_dtype
        try:
            instrumented.inference_dtype = np.dtype(np.float64)
            ref_traj, ref_final = instrumented.layer_distributions(inputs)
        finally:
            instrumented.inference_dtype = original

        assert fast_traj.dtype == np.float64  # boundary is always float64
        assert np.max(np.abs(fast_traj - ref_traj)) < 1e-5
        assert np.max(np.abs(fast_final - ref_final)) < 1e-5
        # Distributions stay normalized on the fast path.
        np.testing.assert_allclose(fast_traj.sum(axis=2), 1.0, atol=1e-5)

    def test_probe_training_stays_float64(self, fitted_deepmorph, tiny_splits):
        train, _ = tiny_splits
        inputs, _ = train.arrays()
        instrumented = fitted_deepmorph.instrumented
        activations, logits = instrumented.collect_activations(
            inputs[:8], dtype=np.float64
        )
        for name, acts in activations.items():
            assert acts.dtype == np.float64, name
        assert logits.dtype == np.float64

    def test_collect_activations_defaults_to_inference_dtype(
        self, fitted_deepmorph, tiny_splits
    ):
        _, test = tiny_splits
        inputs, _ = test.arrays()
        activations, logits = fitted_deepmorph.instrumented.collect_activations(inputs[:4])
        for name, acts in activations.items():
            assert acts.dtype == np.float32, name
        assert logits.dtype == np.float32
