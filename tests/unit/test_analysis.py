"""Tests for divergences, trajectory statistics, and calibration metrics."""

import numpy as np
import pytest

from repro.analysis import (
    brier_score,
    commitment_depth,
    confidence_trajectory,
    cosine_similarity,
    divergence_layer,
    entropy,
    entropy_profile,
    expected_calibration_error,
    js_distance,
    js_divergence,
    js_similarity,
    kl_divergence,
    layer_stability,
    normalize_distribution,
    normalized_entropy,
    reliability_diagram,
    total_variation,
    trajectory_divergence,
    trajectory_similarity,
)
from repro.analysis.trajectory import (
    pairwise_trajectory_divergences,
    trajectory_divergence_to_stack,
)
from repro.exceptions import ShapeError


class TestDivergences:
    def test_kl_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_kl_positive_for_different(self):
        assert kl_divergence([0.9, 0.1], [0.1, 0.9]) > 0

    def test_js_symmetric_and_bounded(self):
        p, q = np.array([0.9, 0.1]), np.array([0.1, 0.9])
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))
        assert 0 <= js_divergence(p, q) <= np.log(2) + 1e-12

    def test_js_similarity_range(self):
        assert js_similarity([1.0, 0.0], [1.0, 0.0]) == pytest.approx(1.0)
        assert js_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0, abs=1e-9)

    def test_js_distance_is_sqrt_of_divergence(self):
        p, q = np.array([0.7, 0.3]), np.array([0.4, 0.6])
        assert js_distance(p, q) == pytest.approx(np.sqrt(js_divergence(p, q)))

    def test_total_variation(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_cosine_similarity(self):
        assert cosine_similarity([1.0, 0.0], [1.0, 0.0]) == pytest.approx(1.0)
        assert cosine_similarity([1.0, 0.0], [0.0, 1.0]) == pytest.approx(0.0)

    def test_entropy_uniform_is_log_k(self):
        assert entropy([0.25] * 4) == pytest.approx(np.log(4))
        assert normalized_entropy([0.25] * 4) == pytest.approx(1.0)
        assert normalized_entropy([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.0, abs=1e-9)

    def test_normalize_distribution_handles_zeros_and_negatives(self):
        out = normalize_distribution(np.array([-1.0, 0.0, 0.0]))
        np.testing.assert_allclose(out.sum(), 1.0)
        out = normalize_distribution(np.array([0.0, 0.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            js_divergence([0.5, 0.5], [0.3, 0.3, 0.4])

    def test_batched_divergence(self):
        p = np.array([[0.9, 0.1], [0.5, 0.5]])
        q = np.array([[0.9, 0.1], [0.1, 0.9]])
        divs = js_divergence(p, q, axis=1)
        assert divs.shape == (2,)
        assert divs[0] == pytest.approx(0.0, abs=1e-12)
        assert divs[1] > 0


def make_trajectory(rows):
    return np.array(rows, dtype=np.float64)


class TestTrajectoryStatistics:
    def test_divergence_layer_finds_first_mismatch(self):
        traj = make_trajectory([[0.8, 0.2], [0.6, 0.4], [0.3, 0.7]])
        assert divergence_layer(traj, true_class=0) == 2
        assert divergence_layer(traj, true_class=1) == 0

    def test_divergence_layer_never_diverging(self):
        traj = make_trajectory([[0.9, 0.1], [0.8, 0.2]])
        assert divergence_layer(traj, 0) == 2

    def test_commitment_depth(self):
        traj = make_trajectory([[0.8, 0.2], [0.4, 0.6], [0.3, 0.7], [0.2, 0.8]])
        assert commitment_depth(traj, predicted_class=1) == pytest.approx(0.75)
        assert commitment_depth(traj, predicted_class=0) == pytest.approx(0.0)

    def test_confidence_trajectory(self):
        traj = make_trajectory([[0.8, 0.2], [0.3, 0.7]])
        np.testing.assert_allclose(confidence_trajectory(traj, 1), [0.2, 0.7])

    def test_entropy_profile_shape_and_range(self):
        traj = make_trajectory([[0.5, 0.5], [1.0, 0.0]])
        profile = entropy_profile(traj)
        assert profile.shape == (2,)
        assert profile[0] == pytest.approx(1.0)
        assert profile[1] == pytest.approx(0.0, abs=1e-9)

    def test_trajectory_similarity_self_is_one(self):
        traj = make_trajectory([[0.5, 0.5], [0.9, 0.1]])
        assert trajectory_similarity(traj, traj) == pytest.approx(1.0)
        assert trajectory_divergence(traj, traj) == pytest.approx(0.0, abs=1e-12)

    def test_layer_stability(self):
        static = make_trajectory([[0.6, 0.4]] * 4)
        assert layer_stability(static) == pytest.approx(1.0)
        flipping = make_trajectory([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert layer_stability(flipping) < 0.2

    def test_stack_divergence_matches_loop(self):
        rng = np.random.default_rng(0)
        traj = rng.dirichlet(np.ones(3), size=4)
        stack = rng.dirichlet(np.ones(3), size=(5, 4))
        batch = trajectory_divergence_to_stack(traj, stack)
        loop = np.array([trajectory_divergence(traj, member) for member in stack])
        np.testing.assert_allclose(batch, loop, atol=1e-12)

    def test_pairwise_divergences_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(1)
        stack = rng.dirichlet(np.ones(3), size=(4, 2))
        matrix = pairwise_trajectory_divergences(stack)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)

    def test_out_of_range_class_rejected(self):
        traj = make_trajectory([[0.5, 0.5]])
        with pytest.raises(ShapeError):
            divergence_layer(traj, 5)
        with pytest.raises(ShapeError):
            commitment_depth(traj, -1)


class TestCalibrationMetrics:
    def test_perfectly_calibrated_predictions(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 0])
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0)
        assert brier_score(probs, labels) == pytest.approx(0.0)

    def test_overconfident_wrong_predictions(self):
        probs = np.array([[1.0, 0.0]] * 4)
        labels = np.array([1, 1, 1, 1])
        assert expected_calibration_error(probs, labels) == pytest.approx(1.0)
        assert brier_score(probs, labels) == pytest.approx(2.0)

    def test_reliability_diagram_bins(self):
        probs = np.array([[0.55, 0.45], [0.95, 0.05]])
        labels = np.array([0, 0])
        bins = reliability_diagram(probs, labels, num_bins=10)
        assert len(bins) == 10
        assert sum(b.count for b in bins) == 2

    def test_empty_inputs(self):
        assert expected_calibration_error(np.zeros((0, 2)), np.zeros(0, dtype=int)) == 0.0
        assert brier_score(np.zeros((0, 2)), np.zeros(0, dtype=int)) == 0.0
