"""Numerical gradient checks for every layer's backward pass.

Each check compares the analytic gradient (backward pass) against a central
finite-difference estimate of d(sum of outputs * fixed random weighting)/dx —
both for inputs and for parameters.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DenseBlock,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    TransitionLayer,
)

EPS = 1e-5
TOL = 1e-5


def numeric_grad(fn, x, eps=EPS):
    """Central-difference gradient of scalar-valued fn with respect to array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = fn()
        x[idx] = original - eps
        minus = fn()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer, x, seed=0):
    """Assert the analytic input gradient matches finite differences."""
    rng = np.random.default_rng(seed)
    out = layer.forward(x)
    weighting = rng.normal(size=out.shape)

    analytic = layer.backward(weighting)

    def objective():
        return float(np.sum(layer.forward(x) * weighting))

    numeric = numeric_grad(objective, x)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-5)


def check_param_gradients(layer, x, seed=0):
    """Assert every trainable parameter's gradient matches finite differences."""
    rng = np.random.default_rng(seed)
    out = layer.forward(x)
    weighting = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.forward(x)
    layer.backward(weighting)

    for param in layer.parameters():
        analytic = param.grad.copy()

        def objective():
            return float(np.sum(layer.forward(x) * weighting))

        numeric = numeric_grad(objective, param.data)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-5)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestActivationGradients:
    @pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh, Softmax])
    def test_activation_input_gradient(self, layer_cls, rng):
        # Offset away from zero so ReLU's kink does not break finite differences.
        x = rng.normal(size=(4, 6)) + 0.1 * np.sign(rng.normal(size=(4, 6)))
        check_input_gradient(layer_cls(), x)


class TestDenseGradients:
    def test_dense_input_and_param_gradients(self, rng):
        layer = Dense(5, 3, rng=1)
        x = rng.normal(size=(4, 5))
        check_input_gradient(layer, x)
        check_param_gradients(layer, x)

    def test_dense_without_bias(self, rng):
        layer = Dense(4, 2, use_bias=False, rng=1)
        x = rng.normal(size=(3, 4))
        check_param_gradients(layer, x)


class TestConvGradients:
    def test_conv_input_and_param_gradients(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, stride=1, padding=1, rng=1)
        x = rng.normal(size=(2, 2, 5, 5))
        check_input_gradient(layer, x)
        check_param_gradients(layer, x)

    def test_strided_conv_gradients(self, rng):
        layer = Conv2D(1, 2, kernel_size=3, stride=2, padding=0, rng=1)
        x = rng.normal(size=(2, 1, 7, 7))
        check_input_gradient(layer, x)


class TestPoolingGradients:
    def test_maxpool_input_gradient(self, rng):
        layer = MaxPool2D(2)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_gradient(layer, x)

    def test_maxpool_padded_input_gradient(self, rng):
        layer = MaxPool2D(3, stride=2, padding=1)
        x = rng.normal(size=(2, 2, 7, 7))
        check_input_gradient(layer, x)

    def test_maxpool_padded_all_negative_input_gradient(self, rng):
        # Pre-fix, padded zeros won the max over all-negative windows, so the
        # boundary gradients vanished into the (cropped) padding.
        layer = MaxPool2D(2, stride=2, padding=1)
        x = -1.0 - rng.random(size=(2, 2, 6, 6))
        check_input_gradient(layer, x)

    def test_avgpool_input_gradient(self, rng):
        layer = AvgPool2D(2)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_gradient(layer, x)

    @pytest.mark.parametrize("count_include_pad", [True, False])
    def test_avgpool_padded_input_gradient(self, rng, count_include_pad):
        layer = AvgPool2D(3, stride=2, padding=1, count_include_pad=count_include_pad)
        x = rng.normal(size=(2, 2, 7, 7))
        check_input_gradient(layer, x)

    def test_global_avgpool_input_gradient(self, rng):
        layer = GlobalAvgPool2D()
        x = rng.normal(size=(3, 4, 5, 5))
        check_input_gradient(layer, x)


class TestNormalizationGradients:
    def test_batchnorm1d_gradients(self, rng):
        layer = BatchNorm1D(6)
        x = rng.normal(size=(8, 6))
        check_input_gradient(layer, x)
        check_param_gradients(layer, x)

    def test_batchnorm2d_gradients(self, rng):
        layer = BatchNorm2D(3)
        x = rng.normal(size=(4, 3, 4, 4))
        check_input_gradient(layer, x)


class TestShapeLayersGradients:
    def test_flatten_gradient(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        check_input_gradient(layer, x)


class TestCompositeGradients:
    def test_sequential_gradient(self, rng):
        model = Sequential([Dense(6, 5, rng=1), ReLU(), Dense(5, 3, rng=2)])
        x = rng.normal(size=(4, 6))
        check_input_gradient(model, x)
        check_param_gradients(model, x)

    def test_residual_block_gradient_identity_shortcut(self, rng):
        block = ResidualBlock(3, 3, stride=1, use_batchnorm=False, rng=1)
        x = rng.normal(size=(2, 3, 5, 5))
        check_input_gradient(block, x)
        check_param_gradients(block, x)

    def test_residual_block_gradient_projection_shortcut(self, rng):
        block = ResidualBlock(2, 4, stride=2, use_batchnorm=False, rng=1)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_gradient(block, x)

    def test_dense_block_gradient(self, rng):
        block = DenseBlock(2, growth_rate=2, num_units=2, use_batchnorm=False, rng=1)
        x = rng.normal(size=(2, 2, 4, 4))
        check_input_gradient(block, x)
        check_param_gradients(block, x)

    def test_transition_layer_gradient(self, rng):
        layer = TransitionLayer(4, 2, use_batchnorm=False, rng=1)
        x = rng.normal(size=(2, 4, 6, 6))
        check_input_gradient(layer, x)
