"""Pytest hooks for the benchmark harness.

The actual Table I cell runner lives in :mod:`table1_harness` (a plain module,
importable by the benchmark files with an absolute import) so the suite works
both from the repository root (``pytest benchmarks``) and from inside the
``benchmarks/`` directory.  This conftest only contributes the terminal
summary that prints the reproduced table.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from table1_harness import _TABLE1_RESULTS


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLE1_RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced Table I (ratios per injected defect)")
    header = (
        f"{'model':10s} {'inject':7s} {'ITD':>7s} {'UTD':>7s} {'SD':>7s}   "
        f"{'dominant':9s} {'match':5s}  {'acc':>6s} {'faulty':>6s}   paper (ITD/UTD/SD)"
    )
    terminalreporter.write_line(header)
    terminalreporter.write_line("-" * len(header))
    for row in _TABLE1_RESULTS:
        paper = row["paper_ratios"]
        paper_text = "/".join(f"{v:.3f}" for v in paper) if paper else "-"
        terminalreporter.write_line(
            f"{row['model']:10s} {row['injected_defect'].upper():7s} "
            f"{row['ratio_itd']:7.3f} {row['ratio_utd']:7.3f} {row['ratio_sd']:7.3f}   "
            f"{row['dominant'].upper():9s} {'yes' if row['diagonal_correct'] else 'NO':5s}  "
            f"{row['test_accuracy']:6.3f} {row['num_faulty_cases']:6d}   {paper_text}"
        )
