"""Figure 1: the DeepMorph pipeline, benchmarked stage by stage and end to end.

The paper's Figure 1 is the system-overview diagram (instrument → learn
patterns → extract footprints → reason about defects); these benchmarks time
each stage of that pipeline plus the end-to-end diagnosis on a LeNet / UTD
scenario, so the cost profile of the figure's boxes is measurable.
"""

import pytest

from repro.core import (
    DeepMorph,
    FootprintExtractor,
    PatternLibrary,
    SoftmaxInstrumentedModel,
    find_faulty_cases,
)
from repro.data import SyntheticMNIST
from repro.defects import UnreliableTrainingData
from repro.models import LeNet
from repro.optim import Adam
from repro.training import Trainer


@pytest.fixture(scope="module")
def utd_scenario():
    """A trained LeNet with an injected UTD defect plus its data splits."""
    generator = SyntheticMNIST()
    train, production = generator.splits(60, 30, rng=0)
    corrupted, _ = UnreliableTrainingData(source_class=3, target_class=5, fraction=0.5).apply(
        train, rng=1
    )
    model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=7)
    Trainer(model, Adam(model.parameters(), lr=0.01), rng=2).fit(corrupted, epochs=10, batch_size=32)
    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production)
    return model, corrupted, production, faulty_inputs, faulty_labels


@pytest.fixture(scope="module")
def fitted_pipeline(utd_scenario):
    model, corrupted, _, _, _ = utd_scenario
    morph = DeepMorph(rng=3)
    morph.fit(model, corrupted)
    return morph


@pytest.mark.benchmark(group="figure1-pipeline")
def test_stage1_softmax_instrumentation(benchmark, utd_scenario):
    """Figure 1, stage 1: build + train the softmax-instrumented model."""
    model, corrupted, _, _, _ = utd_scenario

    def instrument():
        return SoftmaxInstrumentedModel(model, probe_epochs=12, rng=0).fit(corrupted)

    instrumented = benchmark.pedantic(instrument, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["num_probes"] = instrumented.num_layers
    assert instrumented.is_fitted


@pytest.mark.benchmark(group="figure1-pipeline")
def test_stage2_pattern_learning(benchmark, fitted_pipeline, utd_scenario):
    """Figure 1, stage 2: learn each class's execution pattern."""
    _, corrupted, _, _, _ = utd_scenario

    def learn():
        return PatternLibrary(fitted_pipeline.instrumented).fit(corrupted)

    library = benchmark.pedantic(learn, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["num_patterns"] = len(library.classes())
    assert library.is_fitted


@pytest.mark.benchmark(group="figure1-pipeline")
def test_stage3_footprint_extraction(benchmark, fitted_pipeline, utd_scenario):
    """Figure 1, stage 3: extract the faulty cases' data-flow footprints."""
    _, _, _, faulty_inputs, faulty_labels = utd_scenario
    extractor = FootprintExtractor(fitted_pipeline.instrumented)

    footprints = benchmark(extractor.extract, faulty_inputs, faulty_labels)
    benchmark.extra_info["num_faulty_cases"] = len(footprints)
    assert footprints


@pytest.mark.benchmark(group="figure1-pipeline")
def test_stage4_defect_reasoning(benchmark, fitted_pipeline, utd_scenario):
    """Figure 1, stage 4: score the footprint specifics and aggregate the report."""
    _, _, _, faulty_inputs, faulty_labels = utd_scenario
    footprints = [
        fp for fp in fitted_pipeline.extract_footprints(faulty_inputs, faulty_labels)
        if fp.is_misclassified
    ]
    specifics = fitted_pipeline.compute_specifics(footprints)
    classifier = fitted_pipeline.case_classifier
    context = classifier.build_context(
        specifics,
        num_classes=10,
        pattern_overlap=fitted_pipeline.patterns.pattern_overlap(),
        feature_quality=fitted_pipeline.patterns.feature_quality(),
        training_inconsistency=fitted_pipeline.patterns.training_inconsistency(),
    )

    report = benchmark(classifier.aggregate, specifics, context)
    benchmark.extra_info["ratios"] = {k.value: round(v, 4) for k, v in report.ratios.items()}


@pytest.mark.benchmark(group="figure1-pipeline")
def test_end_to_end_diagnosis(benchmark, utd_scenario):
    """Figure 1 end to end: fit DeepMorph and diagnose the production faulty cases."""
    model, corrupted, production, _, _ = utd_scenario

    def diagnose():
        morph = DeepMorph(rng=3)
        morph.fit(model, corrupted)
        return morph.diagnose_dataset(production)

    report = benchmark.pedantic(diagnose, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["dominant_defect"] = report.dominant_defect.value
    benchmark.extra_info["num_cases"] = report.num_cases
