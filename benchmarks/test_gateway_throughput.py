"""Concurrent-client benchmark: asyncio gateway vs thread-per-connection server.

The serving-layer claim of the gateway rework: under concurrent load, an
event loop + a small executor + replica shards sustain materially higher
request throughput than the legacy ``ThreadingHTTPServer`` — which pays for
every connection with an interpreter thread and funnels every request through
one service instance — while returning **bitwise-identical** ``DefectReport``
payloads.

The workload models production monitoring: many clients repeatedly submit
recurring production cases while a defect is investigated, so the
measurement isolates the serving layer — HTTP handling, dispatch, caching,
GIL contention across handler threads — rather than raw extraction compute,
which PR 2/3 already benchmark in isolation.  On this traffic the gateway's
layered caches pay in full: the first round warms the footprint cache (both
servers have one) and the gateway's response cache, after which the gateway
answers on the event loop at memory speed while the threading server re-runs
the whole per-request diagnosis pipeline on a fresh handler thread.

The gateway is also measured with its response cache disabled
(``gateway_nocache`` in the emitted record) so the event-loop-vs-threads
front-end difference stays visible on its own; the acceptance gate applies
to the gateway as deployed (cache on).

Results (throughput, p50/p99 latency per server, speedups) are written to
``BENCH_gateway.json`` and gated in CI by ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.core import DeepMorph
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.optim import Adam
from repro.serve import ArtifactRegistry, DiagnosisGateway, DiagnosisHTTPServer, DiagnosisService, ReplicaPool
from repro.training import Trainer

NUM_CLIENTS = 32
REQUESTS_PER_CLIENT = 12
NUM_CASES = 16
NUM_REPLICAS = 2
#: Acceptance floor on shared CI runners; locally the gateway measures ~2x+.
MIN_SPEEDUP = float(os.environ.get("BENCH_GATEWAY_MIN_SPEEDUP", "1.3"))
RESULT_PATH = os.environ.get("BENCH_GATEWAY_JSON", "BENCH_gateway.json")

SERVICE_KWARGS = dict(batch_wait_seconds=0.001, cache_size=4096, num_workers=1)


@pytest.fixture(scope="module")
def serving_scenario(tmp_path_factory):
    """A registered fitted model plus one production payload."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=10, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=20, n_test_per_class=12, rng=0)
    model = LeNet(
        input_shape=(1, 10, 10), num_classes=4,
        conv_channels=(4,), dense_units=(16,), kernel_size=3, rng=3,
    )
    Trainer(model, Adam(model.parameters(), lr=0.02), rng=1).fit(
        train, epochs=4, batch_size=16
    )
    model.eval()
    morph = DeepMorph(probe_epochs=2, rng=2).fit(model, train)

    registry_dir = tmp_path_factory.mktemp("gateway_bench_registry")
    ArtifactRegistry(registry_dir).register("bench", morph)

    inputs, labels = test.arrays()
    payload = json.dumps({
        "model": "bench",
        "inputs": inputs[:NUM_CASES].tolist(),
        "labels": labels[:NUM_CASES].tolist(),
    }).encode("utf-8")
    return registry_dir, payload


def _post_once(host: str, port: int, payload: bytes) -> bytes:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST", "/diagnose", body=payload, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        body = response.read()
        assert response.status == 200, body
        return body
    finally:
        connection.close()


def _hammer(host: str, port: int, payload: bytes):
    """NUM_CLIENTS keep-alive clients, each posting REQUESTS_PER_CLIENT times.

    Returns ``(wall_seconds, latencies, errors)``.
    """
    barrier = threading.Barrier(NUM_CLIENTS + 1)
    latencies = []
    errors = []
    lock = threading.Lock()

    def client() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        mine = []
        # Establish the keep-alive connection before the barrier so the
        # measured window starts with a warm fleet (how a load balancer holds
        # persistent upstream connections) rather than a thundering herd of
        # TCP handshakes.
        connection.connect()
        barrier.wait()
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                start = time.perf_counter()
                connection.request(
                    "POST", "/diagnose", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                mine.append(time.perf_counter() - start)
                if response.status != 200:
                    with lock:
                        errors.append(response.status)
        except Exception as error:  # noqa: BLE001 - recorded and failed below
            with lock:
                errors.append(repr(error))
        finally:
            connection.close()
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client) for _ in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, latencies, errors


def _quantile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _summarize(wall: float, latencies) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(latencies),
        "throughput_rps": len(latencies) / wall,
        "p50_ms": _quantile(ordered, 0.50) * 1e3,
        "p99_ms": _quantile(ordered, 0.99) * 1e3,
    }


def test_gateway_beats_threading_server_under_concurrency(serving_scenario):
    registry_dir, payload = serving_scenario

    service = DiagnosisService(registry_dir, **SERVICE_KWARGS)
    server = DiagnosisHTTPServer(service, port=0).start()
    pool = ReplicaPool.from_registry(
        registry_dir,
        num_replicas=NUM_REPLICAS,
        max_queue_per_replica=NUM_CLIENTS,  # admit the whole benchmark, shed nothing
        **SERVICE_KWARGS,
    )
    gateway = DiagnosisGateway(pool, port=0).start()
    nocache = DiagnosisGateway(pool, port=0, response_cache_size=0).start()
    try:
        # Parity first (and cache warm-up): the two front ends must return
        # bitwise-identical DefectReport payloads for the same request.
        via_threads = _post_once(server.host, server.port, payload)
        via_gateway = _post_once(gateway.host, gateway.port, payload)
        assert via_gateway == via_threads, (
            "gateway and threading server disagree on the same diagnosis request"
        )
        # Warm every replica (model residency + footprint cache), not just the
        # one the first request was routed to — sequential requests round-robin
        # across equally-idle replicas.
        for target in (gateway, nocache):
            for _ in range(NUM_REPLICAS):
                assert _post_once(target.host, target.port, payload) == via_threads
        assert _post_once(server.host, server.port, payload) == via_threads

        summaries = {}
        for label, host, port in (
            ("threading", server.host, server.port),
            ("gateway_nocache", nocache.host, nocache.port),
            ("gateway", gateway.host, gateway.port),
        ):
            wall, latencies, errors = _hammer(host, port, payload)
            assert not errors, f"{label} errors: {errors[:5]}"
            assert len(latencies) == NUM_CLIENTS * REQUESTS_PER_CLIENT
            summaries[label] = _summarize(wall, latencies)
            summary = summaries[label]
            print(
                f"\n{label:16s} {summary['throughput_rps']:8.1f} req/s   "
                f"p50 {summary['p50_ms']:6.2f} ms   p99 {summary['p99_ms']:6.2f} ms"
            )

        baseline_rps = summaries["threading"]["throughput_rps"]
        speedup = summaries["gateway"]["throughput_rps"] / baseline_rps
        nocache_speedup = summaries["gateway_nocache"]["throughput_rps"] / baseline_rps
        print(
            f"gateway vs threading speedup: x{speedup:.2f} "
            f"(response cache off: x{nocache_speedup:.2f})"
        )

        payload_record = {
            "clients": NUM_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cases_per_request": NUM_CASES,
            "replicas": NUM_REPLICAS,
            "gateway_vs_threading_speedup": speedup,
            "gateway_nocache_vs_threading_speedup": nocache_speedup,
            **summaries,
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload_record, handle, indent=2, sort_keys=True)

        assert speedup >= MIN_SPEEDUP, (
            f"async gateway only reached x{speedup:.2f} the threading server's "
            f"throughput at {NUM_CLIENTS} concurrent clients (floor: x{MIN_SPEEDUP})"
        )
    finally:
        nocache.shutdown()
        gateway.shutdown()
        pool.close()
        server.shutdown()
        service.close()
