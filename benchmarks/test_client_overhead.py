"""Micro-benchmark: RemoteDiagnoser client overhead vs a raw keep-alive socket.

The ``repro.api.RemoteDiagnoser`` wraps every request in schema serialization,
typed-error mapping, retry bookkeeping, and report parsing.  All of that must
stay cheap relative to the HTTP round trip itself — a typed client nobody can
afford to use would push callers back to hand-rolled ``http.client`` code and
ad-hoc dict checks, which is exactly what the API redesign removed.

The measurement posts the same small ``/diagnose`` payload repeatedly against
one asyncio gateway (response cache ON, so after warm-up the server side is a
memory lookup and the client-side work dominates the difference):

* ``raw``    — ``http.client.HTTPConnection`` with a pre-encoded body and no
  response parsing beyond ``read()`` (the floor: transport only);
* ``client`` — ``RemoteDiagnoser.diagnose_arrays`` (schema encode, send,
  decode, validate, typed report).

``client_vs_raw_efficiency`` = raw_seconds / client_seconds, so 1.0 means
"free" and the committed baseline gates how much overhead the client may add.
Results go to ``BENCH_client.json`` and are gated by ``check_regression.py``.
"""

from __future__ import annotations

import http.client
import json
import os
import time

import pytest

from repro.api import DiagnoserConfig, RemoteDiagnoser
from repro.core import DeepMorph
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.optim import Adam
from repro.serve import ArtifactRegistry, DiagnosisGateway, ReplicaPool
from repro.training import Trainer

WARMUP_REQUESTS = 5
MEASURED_REQUESTS = 200
NUM_CASES = 8
#: Floor on shared CI runners; locally the client measures ~0.34x raw (the
#: difference is the per-request schema encode the raw path pre-amortizes).
MIN_EFFICIENCY = float(os.environ.get("BENCH_CLIENT_MIN_EFFICIENCY", "0.15"))
RESULT_PATH = os.environ.get("BENCH_CLIENT_JSON", "BENCH_client.json")

#: The wire-codec comparison uses a fatter batch (still thin by production
#: standards) so the per-request array serialization is measurable.
WIRE_NUM_CASES = 32
#: Floor on the binary codec's efficiency advantage over the JSON codec.
MIN_BINARY_VS_JSON = float(os.environ.get("BENCH_WIRE_MIN_RATIO", "2.0"))
WIRE_RESULT_PATH = os.environ.get("BENCH_WIRE_JSON", "BENCH_wire.json")


@pytest.fixture(scope="module")
def gateway_scenario(tmp_path_factory):
    """A running gateway with one registered artifact plus the benchmark payload."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=10, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=20, n_test_per_class=12, rng=0)
    model = LeNet(
        input_shape=(1, 10, 10), num_classes=4,
        conv_channels=(4,), dense_units=(16,), kernel_size=3, rng=3,
    )
    Trainer(model, Adam(model.parameters(), lr=0.02), rng=1).fit(
        train, epochs=4, batch_size=16
    )
    model.eval()
    morph = DeepMorph(probe_epochs=2, rng=2).fit(model, train)

    registry_dir = tmp_path_factory.mktemp("client_bench_registry")
    ArtifactRegistry(registry_dir).register("bench", morph)

    inputs, labels = test.arrays()

    pool = ReplicaPool.from_registry(
        registry_dir, num_replicas=1, batch_wait_seconds=0.001, num_workers=1,
    )
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=64).start()
    try:
        yield gateway, inputs, labels
    finally:
        gateway.shutdown()
        pool.close()


def _measure_raw(gateway, payload: bytes) -> float:
    connection = http.client.HTTPConnection(gateway.host, gateway.port, timeout=60)
    try:
        for _ in range(WARMUP_REQUESTS):
            connection.request(
                "POST", "/diagnose", body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200, body
        start = time.perf_counter()
        for _ in range(MEASURED_REQUESTS):
            connection.request(
                "POST", "/diagnose", body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
        return time.perf_counter() - start
    finally:
        connection.close()


def _measure_client(gateway, inputs, labels) -> float:
    client = RemoteDiagnoser(
        gateway.url,
        config=DiagnoserConfig(max_retries=0),
        default_model="bench",
    )
    try:
        for _ in range(WARMUP_REQUESTS):
            report = client.diagnose_arrays(inputs, labels)
            assert report.num_cases >= 1
        start = time.perf_counter()
        for _ in range(MEASURED_REQUESTS):
            client.diagnose_arrays(inputs, labels)
        return time.perf_counter() - start
    finally:
        client.close()


def test_remote_client_overhead_vs_raw_socket(gateway_scenario):
    gateway, inputs_arr, labels_arr = gateway_scenario
    inputs = inputs_arr[:NUM_CASES].tolist()
    labels = labels_arr[:NUM_CASES].tolist()
    # The raw path posts the exact bytes the client would send, so both sides
    # hit the same response-cache entry after warm-up and the comparison
    # isolates client-side work (schema, typed errors, report parsing).
    payload = json.dumps({
        "schema": "v1", "model": "bench", "inputs": inputs, "labels": labels,
    }).encode("utf-8")

    # Parity guard: the typed client and the raw socket see the same answer.
    report = RemoteDiagnoser(gateway.url, default_model="bench").diagnose_arrays(
        inputs, labels
    )
    connection = http.client.HTTPConnection(gateway.host, gateway.port, timeout=60)
    try:
        connection.request(
            "POST", "/diagnose", body=payload, headers={"Content-Type": "application/json"}
        )
        raw_answer = json.loads(connection.getresponse().read())
    finally:
        connection.close()
    assert raw_answer == report.to_dict()

    raw_seconds = _measure_raw(gateway, payload)
    client_seconds = _measure_client(gateway, inputs, labels)

    efficiency = raw_seconds / client_seconds
    raw_rps = MEASURED_REQUESTS / raw_seconds
    client_rps = MEASURED_REQUESTS / client_seconds
    overhead_us = (client_seconds - raw_seconds) / MEASURED_REQUESTS * 1e6
    print(
        f"\nraw socket      {raw_rps:8.1f} req/s"
        f"\nRemoteDiagnoser {client_rps:8.1f} req/s"
        f"\nclient_vs_raw_efficiency {efficiency:.3f} "
        f"(overhead {overhead_us:+.1f} us/request)"
    )

    record = {
        "measured_requests": MEASURED_REQUESTS,
        "cases_per_request": NUM_CASES,
        "raw_rps": raw_rps,
        "client_rps": client_rps,
        "client_overhead_us_per_request": overhead_us,
        "client_vs_raw_efficiency": efficiency,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)

    assert efficiency >= MIN_EFFICIENCY, (
        f"RemoteDiagnoser reached only {efficiency:.2f}x the raw-socket rate "
        f"(floor: {MIN_EFFICIENCY}); client-side overhead has regressed"
    )


def _measure_codec(gateway, inputs, labels, codec: str) -> float:
    """Measured seconds for one RemoteDiagnoser posting numpy arrays via ``codec``."""
    client = RemoteDiagnoser(
        gateway.url,
        config=DiagnoserConfig(max_retries=0, wire_codec=codec),
        default_model="bench",
    )
    try:
        for _ in range(WARMUP_REQUESTS):
            report = client.diagnose_arrays(inputs, labels)
            assert report.num_cases >= 1
        start = time.perf_counter()
        for _ in range(MEASURED_REQUESTS):
            client.diagnose_arrays(inputs, labels)
        return time.perf_counter() - start
    finally:
        client.close()


def test_binary_codec_efficiency_vs_json(gateway_scenario):
    """The point of the binary wire format: skip the float→text→float tax.

    Both clients post the *same numpy batch* to the same warmed gateway (the
    response cache shares one entry across codecs, so the server side is a
    memory lookup either way); the JSON client pays ``tolist`` + ``dumps`` per
    request, the binary client a contiguous buffer copy.  The gated metric is
    the ratio of their ``client_vs_raw_efficiency`` values, which reduces to
    ``json_seconds / binary_seconds``.
    """
    gateway, inputs_arr, labels_arr = gateway_scenario
    inputs = inputs_arr[:WIRE_NUM_CASES]
    labels = labels_arr[:WIRE_NUM_CASES]

    # Parity guard: both codecs decode to the bitwise-same report.
    json_client = RemoteDiagnoser(gateway.url, default_model="bench")
    binary_client = RemoteDiagnoser(
        gateway.url, config=DiagnoserConfig(wire_codec="binary"), default_model="bench"
    )
    try:
        assert (
            json_client.diagnose_arrays(inputs, labels).to_dict()
            == binary_client.diagnose_arrays(inputs, labels).to_dict()
        )
    finally:
        json_client.close()
        binary_client.close()

    raw_payload = json.dumps({
        "schema": "v1", "model": "bench",
        "inputs": inputs.tolist(), "labels": labels.tolist(),
    }).encode("utf-8")
    raw_seconds = _measure_raw(gateway, raw_payload)
    json_seconds = _measure_codec(gateway, inputs, labels, "json")
    binary_seconds = _measure_codec(gateway, inputs, labels, "binary")

    json_efficiency = raw_seconds / json_seconds
    binary_efficiency = raw_seconds / binary_seconds
    ratio = json_seconds / binary_seconds
    print(
        f"\nraw socket    {MEASURED_REQUESTS / raw_seconds:8.1f} req/s"
        f"\njson client   {MEASURED_REQUESTS / json_seconds:8.1f} req/s"
        f" (efficiency {json_efficiency:.3f})"
        f"\nbinary client {MEASURED_REQUESTS / binary_seconds:8.1f} req/s"
        f" (efficiency {binary_efficiency:.3f})"
        f"\nbinary_vs_json_efficiency {ratio:.3f}"
    )

    record = {
        "measured_requests": MEASURED_REQUESTS,
        "cases_per_request": WIRE_NUM_CASES,
        "raw_rps": MEASURED_REQUESTS / raw_seconds,
        "json_client_rps": MEASURED_REQUESTS / json_seconds,
        "binary_client_rps": MEASURED_REQUESTS / binary_seconds,
        "json_client_vs_raw_efficiency": json_efficiency,
        "binary_client_vs_raw_efficiency": binary_efficiency,
        "binary_vs_json_efficiency": ratio,
    }
    with open(WIRE_RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)

    assert ratio >= MIN_BINARY_VS_JSON, (
        f"binary codec reached only {ratio:.2f}x the JSON client's efficiency "
        f"(floor: {MIN_BINARY_VS_JSON}); the raw-array transport advantage has regressed"
    )
