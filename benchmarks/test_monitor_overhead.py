"""Monitor-overhead benchmark: online drift monitoring must be nearly free.

The monitor (PR 10) taps the batching engine's drain loop: every freshly
extracted trajectory stack is offered to a per-model sliding window with a
non-blocking append, and drift is re-scored only every ``evaluate_every``
accepted cases.  The serving hot path therefore pays one ``try``-guarded
method call plus an array copy per extraction — the JS-divergence scoring
itself runs amortized, and a contended window *drops* the observation rather
than stalling the request.

This benchmark measures that claim the way ``test_obs_overhead.py`` measures
tracing and ``test_resilience_overhead.py`` measures chaos: identical
concurrent-client gateway workloads, monitor-on vs monitor-off.  Both phases
run with the response cache AND the footprint cache disabled so every request
walks the full extraction path the monitor taps — with caches on, monitored
and unmonitored throughput are indistinguishable by construction.  The ratio
``monitor_vs_plain_throughput`` is written to ``BENCH_monitor.json`` and
gated in CI by ``benchmarks/check_regression.py`` (baseline 0.90, i.e. <=10%
overhead, the gate's 30% tolerance absorbing runner noise).

Also recorded (not gated; absolute ns do not transfer between machines):

* ns per ``MonitorWindow.append`` of one 16-case stack — the per-drain cost;
* ms per ``DriftDetector.evaluate`` over a full window — the amortized cost.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core import DeepMorph
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.monitor import DriftDetector, MonitorWindow
from repro.optim import Adam
from repro.serve import ArtifactRegistry, DiagnosisGateway, ReplicaPool
from repro.training import Trainer

NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 12
NUM_CASES = 16
NUM_REPLICAS = 2
#: In-test floor: catastrophic overhead fails immediately; the committed
#: baseline in benchmarks/baselines/BENCH_monitor.json gates the rest.
MIN_RATIO = float(os.environ.get("BENCH_MONITOR_MIN_RATIO", "0.60"))
RESULT_PATH = os.environ.get("BENCH_MONITOR_JSON", "BENCH_monitor.json")

#: Caches off in BOTH phases: every request must reach extraction, where the
#: monitor tap lives, or the comparison measures nothing.
SERVICE_KWARGS = dict(batch_wait_seconds=0.001, cache_size=0, num_workers=1)


@pytest.fixture(scope="module")
def serving_scenario(tmp_path_factory):
    """A registered fitted model plus one production payload (tiny, fast)."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=10, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=20, n_test_per_class=12, rng=0)
    model = LeNet(
        input_shape=(1, 10, 10), num_classes=4,
        conv_channels=(4,), dense_units=(16,), kernel_size=3, rng=3,
    )
    Trainer(model, Adam(model.parameters(), lr=0.02), rng=1).fit(
        train, epochs=4, batch_size=16
    )
    model.eval()
    morph = DeepMorph(probe_epochs=2, rng=2).fit(model, train)

    registry_dir = tmp_path_factory.mktemp("monitor_bench_registry")
    ArtifactRegistry(registry_dir).register("bench", morph)

    inputs, labels = test.arrays()
    payload = json.dumps({
        "model": "bench",
        "inputs": inputs[:NUM_CASES].tolist(),
        "labels": labels[:NUM_CASES].tolist(),
    }).encode("utf-8")
    return registry_dir, payload, morph


def _post_once(host: str, port: int, payload: bytes) -> None:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST", "/diagnose", body=payload, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        body = response.read()
        assert response.status == 200, body
    finally:
        connection.close()


def _hammer(host: str, port: int, payload: bytes):
    """NUM_CLIENTS keep-alive clients; returns (wall_seconds, requests, errors)."""
    barrier = threading.Barrier(NUM_CLIENTS + 1)
    counts = []
    errors = []
    lock = threading.Lock()

    def client() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        done = 0
        connection.connect()
        barrier.wait()
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                connection.request(
                    "POST", "/diagnose", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                done += 1
                if response.status != 200:
                    with lock:
                        errors.append(response.status)
        except Exception as error:  # noqa: BLE001 - recorded and failed below
            with lock:
                errors.append(repr(error))
        finally:
            connection.close()
        with lock:
            counts.append(done)

    threads = [threading.Thread(target=client) for _ in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, sum(counts), errors


def _run_phase(registry_dir, payload, monitor: bool):
    """Gateway throughput for one configuration (caches disabled throughout)."""
    kwargs = dict(SERVICE_KWARGS)
    if monitor:
        kwargs.update(monitor=True, monitor_window=2048)
    pool = ReplicaPool.from_registry(
        registry_dir,
        num_replicas=NUM_REPLICAS,
        max_queue_per_replica=NUM_CLIENTS,
        **kwargs,
    )
    gateway = DiagnosisGateway(pool, port=0, response_cache_size=0).start()
    try:
        for _ in range(NUM_REPLICAS + 1):
            _post_once(gateway.host, gateway.port, payload)
        wall, requests, errors = _hammer(gateway.host, gateway.port, payload)
        assert not errors, f"{'monitor' if monitor else 'plain'} errors: {errors[:5]}"
        return requests / wall
    finally:
        gateway.shutdown()
        pool.shutdown()


def _append_ns(morph, iterations: int = 2_000) -> float:
    """ns per non-blocking window append of one NUM_CASES-row stack."""
    library = morph.patterns
    num_layers = library.patterns[library.classes()[0]].mean_trajectory.shape[0]
    stack = np.random.default_rng(0).random((NUM_CASES, num_layers, 4))
    classes = np.zeros(NUM_CASES, dtype=np.int64)
    window = MonitorWindow(max_cases=2048)
    start = time.perf_counter()
    for _ in range(iterations):
        window.append(stack, classes)
    return (time.perf_counter() - start) / iterations * 1e9


def _evaluate_ms(morph, iterations: int = 20) -> float:
    """ms per full-window drift evaluation (the amortized scoring cost)."""
    library = morph.patterns
    num_layers = library.patterns[library.classes()[0]].mean_trajectory.shape[0]
    rng = np.random.default_rng(1)
    window = MonitorWindow(max_cases=2048)
    stack = rng.dirichlet(np.ones(4), size=(2048, num_layers))
    window.append(stack, rng.integers(0, 4, size=2048))
    detector = DriftDetector(library)
    snapshot = window.snapshot()
    start = time.perf_counter()
    for _ in range(iterations):
        detector.evaluate(snapshot)
    return (time.perf_counter() - start) / iterations * 1e3


def test_monitor_overhead_is_bounded(serving_scenario):
    registry_dir, payload, morph = serving_scenario

    plain_rps = _run_phase(registry_dir, payload, monitor=False)
    monitored_rps = _run_phase(registry_dir, payload, monitor=True)

    ratio = monitored_rps / plain_rps
    append_ns = _append_ns(morph)
    evaluate_ms = _evaluate_ms(morph)
    print(
        f"\nplain {plain_rps:8.1f} req/s   monitored {monitored_rps:8.1f} req/s   "
        f"ratio x{ratio:.3f}   append {append_ns:8.1f} ns   evaluate {evaluate_ms:6.2f} ms"
    )

    record = {
        "clients": NUM_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "cases_per_request": NUM_CASES,
        "replicas": NUM_REPLICAS,
        "plain_throughput_rps": plain_rps,
        "monitored_throughput_rps": monitored_rps,
        "monitor_vs_plain_throughput": ratio,
        "window_append_ns": append_ns,
        "drift_evaluate_ms": evaluate_ms,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
    print(f"wrote {RESULT_PATH}")

    assert ratio >= MIN_RATIO, (
        f"online monitoring costs too much: x{ratio:.3f} < x{MIN_RATIO} "
        f"({plain_rps:.1f} -> {monitored_rps:.1f} req/s)"
    )
