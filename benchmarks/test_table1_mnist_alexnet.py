"""Table I, MNIST / AlexNet cell group (paper rows: AlexNet × {ITD, UTD, SD})."""

import pytest

from table1_harness import run_table1_cell


@pytest.mark.benchmark(group="table1-alexnet")
@pytest.mark.parametrize("defect", ["itd", "utd", "sd"])
def test_table1_alexnet(benchmark, defect):
    run_table1_cell(benchmark, "alexnet", defect)
