"""Benchmark of the loop-free, dtype-aware footprint-extraction fast path.

The claim of the extraction rework: replacing the per-kernel-offset Python
loops (``im2col``, the ``pool_activation`` block loop), skipping the argmax
materialization of inference-mode max pooling, and running the frozen
backbone in float32 makes end-to-end footprint extraction at least twice as
fast as the pre-PR loop-based float64 path — on the *same* fitted model, with
trajectories agreeing to well below the probes' diagnostic resolution.

The reference side reconstructs the pre-PR behaviour exactly: the retained
``im2col_reference``/``pool_activation_reference`` loop kernels, a max pool
that always materializes the column matrix and its argmax, and float64
end to end.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import SoftmaxInstrumentedModel
from repro.core import instrument as instrument_module
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.nn import functional as F

NUM_CASES = 160
REPEATS = 5
SMOKE_MIN_SPEEDUP = 1.4  # CI floor; locally this measures ~2.2x
PARITY_BOUND = 1e-5
RESULT_PATH = os.environ.get("BENCH_EXTRACTION_JSON", "BENCH_extraction.json")


def _maxpool2d_forward_pre_pr(x, kernel, stride, pad=0, return_argmax=True):
    """The seed max pool: loop-based im2col + unconditional argmax + max."""
    n, c, h, w = x.shape
    out_h = F.conv_output_size(h, kernel, stride, pad)
    out_w = F.conv_output_size(w, kernel, stride, pad)
    col = F.im2col_reference(x, kernel, kernel, stride, pad).reshape(
        n * out_h * out_w, c, kernel * kernel
    )
    argmax = col.argmax(axis=2)
    out = col.max(axis=2)
    return out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2), argmax


@pytest.fixture(scope="module")
def fitted_scenario():
    """A fitted instrumented model plus a production batch to extract."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=16, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=10, n_test_per_class=40, rng=0)
    model = LeNet(
        input_shape=(1, 16, 16), num_classes=4,
        conv_channels=(8, 16), dense_units=(32,), kernel_size=3, rng=3,
    )
    model.eval()
    instrumented = SoftmaxInstrumentedModel(model, probe_epochs=1, rng=0).fit(train)
    inputs, _ = test.arrays()
    return instrumented, inputs[:NUM_CASES]


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class _PrePrPath:
    """Context manager that swaps in the pre-PR loop kernels + float64."""

    def __init__(self, instrumented):
        self.instrumented = instrumented

    def __enter__(self):
        self._saved = (
            F.im2col, F.maxpool2d_forward,
            instrument_module.pool_activation, self.instrumented.inference_dtype,
        )
        F.im2col = F.im2col_reference
        F.maxpool2d_forward = _maxpool2d_forward_pre_pr
        instrument_module.pool_activation = instrument_module.pool_activation_reference
        self.instrumented.inference_dtype = np.dtype(np.float64)
        return self

    def __exit__(self, *exc):
        (F.im2col, F.maxpool2d_forward,
         instrument_module.pool_activation, self.instrumented.inference_dtype) = self._saved


def test_fast_path_beats_loop_based_reference(fitted_scenario):
    instrumented, inputs = fitted_scenario

    # Warm-up both sides so first-touch allocations skew neither.
    instrumented.layer_distributions(inputs[:4])
    fast_seconds = _best_of(lambda: instrumented.layer_distributions(inputs))
    fast_traj, fast_final = instrumented.layer_distributions(inputs)

    with _PrePrPath(instrumented):
        instrumented.layer_distributions(inputs[:4])
        ref_seconds = _best_of(lambda: instrumented.layer_distributions(inputs))
        ref_traj, ref_final = instrumented.layer_distributions(inputs)

    speedup = ref_seconds / max(fast_seconds, 1e-9)
    print(
        f"\npre-PR loop path: {ref_seconds * 1e3:7.1f} ms  "
        f"({inputs.shape[0] / ref_seconds:8.1f} cases/s)"
    )
    print(
        f"fast path:        {fast_seconds * 1e3:7.1f} ms  "
        f"({inputs.shape[0] / fast_seconds:8.1f} cases/s)  speedup x{speedup:.2f}"
    )

    payload = {
        "num_cases": int(inputs.shape[0]),
        "cases_per_sec_fast": inputs.shape[0] / fast_seconds,
        "cases_per_sec_reference": inputs.shape[0] / ref_seconds,
        "fast_vs_loop_speedup": speedup,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    # Same trajectories (to float32 resolution), radically different cost.
    assert np.max(np.abs(fast_traj - ref_traj)) < PARITY_BOUND
    assert np.max(np.abs(fast_final - ref_final)) < PARITY_BOUND
    assert speedup >= SMOKE_MIN_SPEEDUP, (
        f"extraction fast path only reached x{speedup:.2f} over the pre-PR "
        f"loop-based path (floor: x{SMOKE_MIN_SPEEDUP})"
    )


def test_per_case_latency_does_not_regress(fitted_scenario):
    """Serving extracts single cases too; the fast path must not lose there."""
    instrumented, inputs = fitted_scenario
    single = inputs[:32]

    instrumented.layer_distributions(single[:1])
    fast_seconds = _best_of(
        lambda: [instrumented.layer_distributions(single[i:i + 1]) for i in range(32)],
        repeats=3,
    )
    with _PrePrPath(instrumented):
        instrumented.layer_distributions(single[:1])
        ref_seconds = _best_of(
            lambda: [instrumented.layer_distributions(single[i:i + 1]) for i in range(32)],
            repeats=3,
        )

    ratio = ref_seconds / max(fast_seconds, 1e-9)
    print(
        f"\nper-case: pre-PR {ref_seconds * 1e3:6.1f} ms   "
        f"fast {fast_seconds * 1e3:6.1f} ms   x{ratio:.2f}"
    )
    # Per-case work is python-overhead-bound and timed at millisecond scale,
    # so shared-CI noise is large; only a 2x-or-worse regression (far outside
    # scheduler jitter — locally this measures ~x1.0) fails the gate.
    assert ratio > 0.5, f"fast path regressed per-case latency by x{1 / ratio:.2f}"
