"""Micro-benchmarks of the substrate and ablations of DeepMorph's design knobs.

These are not paper figures; they quantify the cost of the building blocks
(training throughput, probe inference, footprint statistics) and the effect of
the design choices DESIGN.md calls out (soft vs. hard evidence assignment,
late-layer emphasis).
"""

import numpy as np
import pytest

from repro.core import DeepMorph, DefectClassifierConfig, find_faulty_cases
from repro.data import SyntheticMNIST
from repro.defects import InsufficientTrainingData
from repro.models import LeNet, ResNet
from repro.optim import Adam
from repro.training import Trainer


@pytest.fixture(scope="module")
def mnist_batch():
    generator = SyntheticMNIST()
    data = generator.sample(20, rng=0)
    return data.inputs, data.labels


@pytest.fixture(scope="module")
def itd_scenario():
    generator = SyntheticMNIST()
    train, production = generator.splits(50, 25, rng=0)
    starved, _ = InsufficientTrainingData(affected_classes=[1, 4, 7], keep_fraction=0.1).apply(
        train, rng=1
    )
    model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=7)
    Trainer(model, Adam(model.parameters(), lr=0.01), rng=2).fit(starved, epochs=8, batch_size=32)
    return model, starved, production


@pytest.mark.benchmark(group="micro-substrate")
def test_lenet_forward_throughput(benchmark, mnist_batch):
    inputs, _ = mnist_batch
    model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
    model.eval()
    benchmark(model.forward, inputs)
    benchmark.extra_info["batch_size"] = int(inputs.shape[0])


@pytest.mark.benchmark(group="micro-substrate")
def test_resnet_forward_throughput(benchmark):
    model = ResNet(input_shape=(3, 16, 16), num_classes=10, base_channels=12,
                   block_counts=(2, 2, 2), rng=0)
    model.eval()
    inputs = np.random.default_rng(0).random((64, 3, 16, 16))
    benchmark(model.forward, inputs)
    benchmark.extra_info["batch_size"] = 64


@pytest.mark.benchmark(group="micro-substrate")
def test_lenet_training_step(benchmark, mnist_batch):
    inputs, labels = mnist_batch
    model = LeNet(input_shape=(1, 14, 14), num_classes=10, rng=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01), rng=0)
    benchmark(trainer.train_step, inputs[:32], labels[:32])


@pytest.mark.benchmark(group="micro-deepmorph")
def test_footprint_extraction_throughput(benchmark, itd_scenario, mnist_batch):
    model, starved, _ = itd_scenario
    inputs, labels = mnist_batch
    morph = DeepMorph(probe_epochs=6, rng=0)
    morph.fit(model, starved)
    benchmark(morph.extract_footprints, inputs, labels)
    benchmark.extra_info["num_inputs"] = int(inputs.shape[0])


@pytest.mark.benchmark(group="ablation-classifier")
@pytest.mark.parametrize("soft_assignment", [True, False], ids=["soft-evidence", "hard-votes"])
def test_ablation_soft_vs_hard_assignment(benchmark, itd_scenario, soft_assignment):
    """Ablation: soft evidence aggregation vs. hard per-case votes.

    Both variants must still rank the injected ITD defect first; the recorded
    ratios show how much smoother the soft assignment is.
    """
    model, starved, production = itd_scenario
    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production)
    config = DefectClassifierConfig(soft_assignment=soft_assignment)
    morph = DeepMorph(probe_epochs=6, classifier_config=config, rng=0)
    morph.fit(model, starved)

    report = benchmark.pedantic(
        morph.diagnose, args=(faulty_inputs, faulty_labels), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["ratios"] = {k.value: round(v, 4) for k, v in report.ratios.items()}
    benchmark.extra_info["dominant"] = report.dominant_defect.value


@pytest.mark.benchmark(group="ablation-classifier")
@pytest.mark.parametrize("emphasis", [0.0, 0.5, 1.0], ids=["uniform", "default", "late-heavy"])
def test_ablation_late_layer_emphasis(benchmark, itd_scenario, emphasis):
    """Ablation: how strongly pattern matching weights the later hidden layers."""
    model, starved, production = itd_scenario
    faulty_inputs, faulty_labels, _ = find_faulty_cases(model, production)
    morph = DeepMorph(probe_epochs=6, late_layer_emphasis=emphasis, rng=0)
    morph.fit(model, starved)

    report = benchmark.pedantic(
        morph.diagnose, args=(faulty_inputs, faulty_labels), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["late_layer_emphasis"] = emphasis
    benchmark.extra_info["ratios"] = {k.value: round(v, 4) for k, v in report.ratios.items()}
