"""Shared harness for the Table I benchmarks.

Every Table I cell group gets one benchmark.  Each benchmark runs the full
defect-injection experiment for its (model, defect) pair once (training a
model and probes is far too expensive for multi-round timing), records the
wall-clock time through pytest-benchmark's ``pedantic`` mode, and attaches the
reproduced ratios — the actual scientific output — to ``extra_info`` so the
benchmark report doubles as the reproduced table.

LeNet runs on the ``default`` experiment preset; the deeper models use the
``quick`` preset to keep the whole suite runnable on a laptop CPU in minutes.

This lives in a plain module (not ``conftest.py``) so the benchmark files can
``from table1_harness import run_table1_cell`` whether the suite is collected
from the repository root or the ``benchmarks/`` directory itself.
"""

from __future__ import annotations

from typing import Dict

from repro.defects import DefectType
from repro.experiments import ExperimentSettings, preset, run_cell
from repro.experiments.table1 import PAPER_TABLE1

#: Experiment preset per model family, chosen so the full benchmark suite
#: finishes in minutes on a CPU while LeNet runs at full default scale.
BENCH_SETTINGS: Dict[str, ExperimentSettings] = {
    "lenet": preset("default"),
    "alexnet": preset("quick"),
    "resnet": preset("quick"),
    "densenet": preset("quick"),
}

#: Reproduced Table I cells collected during the run, printed in the terminal
#: summary so the benchmark output contains the scientific result (pytest-
#: benchmark's console table shows timings only; extra_info needs JSON output).
_TABLE1_RESULTS: list = []


def run_table1_cell(benchmark, model: str, defect: str) -> None:
    """Run one Table I cell under pytest-benchmark and assert its shape claim."""
    settings = BENCH_SETTINGS[model].for_model(model)

    result = benchmark.pedantic(
        run_cell, args=(defect, settings), rounds=1, iterations=1, warmup_rounds=0
    )

    assert result.report is not None, "cell produced no faulty cases to diagnose"
    ratios = result.ratios()
    benchmark.extra_info["model"] = model
    benchmark.extra_info["dataset"] = settings.dataset
    benchmark.extra_info["injected_defect"] = defect
    benchmark.extra_info["ratio_itd"] = round(ratios["itd"], 4)
    benchmark.extra_info["ratio_utd"] = round(ratios["utd"], 4)
    benchmark.extra_info["ratio_sd"] = round(ratios["sd"], 4)
    benchmark.extra_info["dominant"] = result.report.dominant_defect.value
    benchmark.extra_info["test_accuracy"] = round(result.test_accuracy, 4)
    benchmark.extra_info["num_faulty_cases"] = result.num_faulty_cases
    benchmark.extra_info["paper_ratios"] = PAPER_TABLE1.get((model, defect))
    # The paper's headline claim for this cell: the injected defect receives
    # the largest ratio.  Recorded (not asserted) so one statistical miss at
    # benchmark scale does not abort the timing report; EXPERIMENTS.md tracks
    # the full paper-vs-measured comparison.
    benchmark.extra_info["diagonal_correct"] = bool(
        result.report.dominant_defect == DefectType.from_string(defect)
    )
    _TABLE1_RESULTS.append(dict(benchmark.extra_info))

    # Structural sanity: the report is a proper distribution over defect types.
    assert abs(sum(ratios.values()) - 1.0) < 1e-6
