"""Tracing-overhead benchmark: the observability layer must be ~free.

Two claims are measured and gated:

* **Disabled** tracing (the default) costs one method call and one attribute
  check per instrumented stage — the no-op span path.  Measured directly as
  ns/span below (recorded, not gated: absolute ns do not transfer between
  machines).
* **Enabled** tracing (``repro-serve --trace``: in-memory ring + span-derived
  histograms) must not materially reduce serving throughput.  Measured as
  gateway throughput traced vs untraced on the same concurrent-client
  workload as ``test_gateway_throughput.py``; the ratio
  ``traced_vs_untraced_throughput`` is written to ``BENCH_obs.json`` and
  gated in CI by ``benchmarks/check_regression.py`` against a conservative
  baseline (0.90, i.e. <=10% overhead, with the gate's 30% tolerance
  absorbing runner noise).

The traced phase also exports a small JSONL trace
(``BENCH_obs_trace.jsonl``) that CI uploads as an artifact — a real,
inspectable span tree from the exact commit under test (render it with
``repro-trace``).
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro import obs
from repro.core import DeepMorph
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.optim import Adam
from repro.serve import ArtifactRegistry, DiagnosisGateway, MetricsRegistry, ReplicaPool
from repro.training import Trainer

NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 12
NUM_CASES = 16
NUM_REPLICAS = 2
#: In-test floor: catastrophic overhead fails immediately; the committed
#: baseline in benchmarks/baselines/BENCH_obs.json gates the [0.63, 1.0] band.
MIN_RATIO = float(os.environ.get("BENCH_OBS_MIN_RATIO", "0.60"))
RESULT_PATH = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
TRACE_SAMPLE_PATH = os.environ.get("BENCH_OBS_TRACE", "BENCH_obs_trace.jsonl")

SERVICE_KWARGS = dict(batch_wait_seconds=0.001, cache_size=4096, num_workers=1)


@pytest.fixture(scope="module")
def serving_scenario(tmp_path_factory):
    """A registered fitted model plus one production payload (tiny, fast)."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=10, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=20, n_test_per_class=12, rng=0)
    model = LeNet(
        input_shape=(1, 10, 10), num_classes=4,
        conv_channels=(4,), dense_units=(16,), kernel_size=3, rng=3,
    )
    Trainer(model, Adam(model.parameters(), lr=0.02), rng=1).fit(
        train, epochs=4, batch_size=16
    )
    model.eval()
    morph = DeepMorph(probe_epochs=2, rng=2).fit(model, train)

    registry_dir = tmp_path_factory.mktemp("obs_bench_registry")
    ArtifactRegistry(registry_dir).register("bench", morph)

    inputs, labels = test.arrays()
    payload = json.dumps({
        "model": "bench",
        "inputs": inputs[:NUM_CASES].tolist(),
        "labels": labels[:NUM_CASES].tolist(),
    }).encode("utf-8")
    return registry_dir, payload


def _post_once(host: str, port: int, payload: bytes) -> None:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST", "/diagnose", body=payload, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        body = response.read()
        assert response.status == 200, body
    finally:
        connection.close()


def _hammer(host: str, port: int, payload: bytes):
    """NUM_CLIENTS keep-alive clients; returns (wall_seconds, requests, errors)."""
    barrier = threading.Barrier(NUM_CLIENTS + 1)
    counts = []
    errors = []
    lock = threading.Lock()

    def client() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        done = 0
        connection.connect()
        barrier.wait()
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                connection.request(
                    "POST", "/diagnose", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                done += 1
                if response.status != 200:
                    with lock:
                        errors.append(response.status)
        except Exception as error:  # noqa: BLE001 - recorded and failed below
            with lock:
                errors.append(repr(error))
        finally:
            connection.close()
        with lock:
            counts.append(done)

    threads = [threading.Thread(target=client) for _ in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, sum(counts), errors


def _noop_span_ns(iterations: int = 50_000) -> float:
    """ns per instrumented stage with tracing disabled (the default path)."""
    tracer = obs.Tracer(enabled=False)
    start = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("bench.noop"):
            pass
    return (time.perf_counter() - start) / iterations * 1e9


def test_tracing_overhead_is_bounded(serving_scenario):
    registry_dir, payload = serving_scenario
    assert not obs.get_tracer().enabled, "benchmark must start from the untraced default"

    pool = ReplicaPool.from_registry(
        registry_dir,
        num_replicas=NUM_REPLICAS,
        max_queue_per_replica=NUM_CLIENTS,
        **SERVICE_KWARGS,
    )
    gateway = DiagnosisGateway(pool, port=0).start()
    try:
        # Warm every replica and the response cache before either phase, so
        # the comparison isolates front-end + instrumentation cost.
        for _ in range(NUM_REPLICAS + 1):
            _post_once(gateway.host, gateway.port, payload)

        wall, requests, errors = _hammer(gateway.host, gateway.port, payload)
        assert not errors, f"untraced errors: {errors[:5]}"
        untraced_rps = requests / wall

        # The deployed --trace configuration: in-memory ring + per-stage
        # histograms (JSONL export is benchmarked separately below because a
        # per-span fsync-free file append is a deliberate opt-in cost).
        obs.configure(enabled=True, metrics=MetricsRegistry(), reset=True)
        try:
            _post_once(gateway.host, gateway.port, payload)  # traced warm-up
            wall, requests, errors = _hammer(gateway.host, gateway.port, payload)
            assert not errors, f"traced errors: {errors[:5]}"
            traced_rps = requests / wall

            # A small, real trace sample for the CI artifact.
            obs.configure(enabled=True, jsonl_path=TRACE_SAMPLE_PATH)
            for _ in range(3):
                _post_once(gateway.host, gateway.port, payload)
            obs.get_tracer().flush()
        finally:
            obs.configure(enabled=False, reset=True)

        ratio = traced_rps / untraced_rps
        noop_ns = _noop_span_ns()
        print(
            f"\nuntraced {untraced_rps:8.1f} req/s   traced {traced_rps:8.1f} req/s   "
            f"ratio x{ratio:.3f}   disabled-span {noop_ns:7.1f} ns"
        )

        sample_spans = obs.load_jsonl(TRACE_SAMPLE_PATH)
        assert sample_spans, "traced phase produced no JSONL sample"
        assert any(s.get("name") == "gateway.request" for s in sample_spans)

        record = {
            "clients": NUM_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cases_per_request": NUM_CASES,
            "replicas": NUM_REPLICAS,
            "untraced_throughput_rps": untraced_rps,
            "traced_throughput_rps": traced_rps,
            "traced_vs_untraced_throughput": ratio,
            "disabled_span_ns": noop_ns,
            "trace_sample_spans": len(sample_spans),
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)

        assert ratio >= MIN_RATIO, (
            f"tracing reduced gateway throughput to x{ratio:.2f} of untraced "
            f"(floor: x{MIN_RATIO})"
        )
    finally:
        gateway.shutdown()
        pool.close()
