"""Table I, MNIST / LeNet cell group (paper rows: LeNet × {ITD, UTD, SD})."""

import pytest

from table1_harness import run_table1_cell


@pytest.mark.benchmark(group="table1-lenet")
@pytest.mark.parametrize("defect", ["itd", "utd", "sd"])
def test_table1_lenet(benchmark, defect):
    run_table1_cell(benchmark, "lenet", defect)
