"""CI perf-regression gate over the committed BENCH_*.json baselines.

Every throughput benchmark in this suite emits a ``BENCH_<name>.json`` record
into the working directory.  This script compares the gated metrics of each
record against the committed baseline in ``benchmarks/baselines/`` and fails
(exit code 1) when a metric drops more than ``--tolerance`` (default 30%)
below its baseline value.

Gated metrics are *ratios* (batched-vs-loop, gateway-vs-threading, ...)
rather than absolute cases/sec: ratios compare two measurements taken on the
same machine in the same process, so they transfer between a laptop and a
shared CI runner, while absolute throughput does not.  The committed
baselines are deliberately conservative CI-class values — see
``benchmarks/baselines/README.md`` — so the gate catches real architectural
regressions (a speedup collapsing toward 1x) instead of runner noise.

Usage::

    python benchmarks/check_regression.py            # gate current dir vs baselines
    python benchmarks/check_regression.py --update   # rewrite baselines from current
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: file name -> gated metric keys (higher is better for every one of them).
GATES = {
    "BENCH_gateway.json": [
        "gateway_vs_threading_speedup",
    ],
    "BENCH_diagnosis.json": [
        "batched_vs_loop_speedup",
    ],
    "BENCH_extraction.json": [
        "fast_vs_loop_speedup",
    ],
    "BENCH_serve.json": [
        "batched_vs_loop_speedup",
        "cache_warm_vs_cold_speedup",
    ],
    "BENCH_client.json": [
        "client_vs_raw_efficiency",
    ],
    "BENCH_wire.json": [
        "binary_vs_json_efficiency",
    ],
    "BENCH_obs.json": [
        "traced_vs_untraced_throughput",
    ],
    "BENCH_resilience.json": [
        "armed_vs_disarmed_throughput",
    ],
    "BENCH_monitor.json": [
        "monitor_vs_plain_throughput",
    ],
}

DEFAULT_TOLERANCE = 0.30


def load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(current_dir: Path, baseline_dir: Path, tolerance: float) -> int:
    failures = []
    width = max(len(name) for gates in GATES.values() for name in gates)
    for file_name, keys in sorted(GATES.items()):
        current_path = current_dir / file_name
        baseline_path = baseline_dir / file_name
        if not baseline_path.exists():
            failures.append(f"{file_name}: baseline missing at {baseline_path}")
            continue
        if not current_path.exists():
            failures.append(
                f"{file_name}: no current record at {current_path} — did the benchmark run?"
            )
            continue
        current, baseline = load(current_path), load(baseline_path)
        print(f"{file_name}:")
        for key in keys:
            if key not in baseline:
                failures.append(f"{file_name}: baseline lacks gated key {key!r}")
                continue
            if key not in current:
                failures.append(f"{file_name}: current record lacks gated key {key!r}")
                continue
            floor = float(baseline[key]) * (1.0 - tolerance)
            value = float(current[key])
            verdict = "ok" if value >= floor else "REGRESSION"
            print(
                f"  {key:<{width}}  current {value:8.2f}   baseline {float(baseline[key]):8.2f}"
                f"   floor {floor:8.2f}   {verdict}"
            )
            if value < floor:
                failures.append(
                    f"{file_name}: {key} = {value:.2f} dropped below "
                    f"{floor:.2f} ({(1.0 - tolerance) * 100:.0f}% of baseline "
                    f"{float(baseline[key]):.2f})"
                )
    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf-regression gate passed.")
    return 0


def update(current_dir: Path, baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    missing = []
    for file_name, keys in sorted(GATES.items()):
        current_path = current_dir / file_name
        if not current_path.exists():
            missing.append(file_name)
            continue
        record = load(current_path)
        snapshot = {key: record[key] for key in keys if key in record}
        with open(baseline_dir / file_name, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated {baseline_dir / file_name}: {snapshot}")
    if missing:
        print(f"skipped (no current record): {', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly-emitted BENCH_*.json records",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(__file__).resolve().parent / "baselines",
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline before failing (default 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from the current records instead of gating",
    )
    args = parser.parse_args(argv)
    if args.update:
        return update(args.current_dir, args.baseline_dir)
    return check(args.current_dir, args.baseline_dir, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
