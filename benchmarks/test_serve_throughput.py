"""Micro-benchmark of the serving layer's batched, cached footprint extraction.

The serving claim: coalescing diagnosis requests into vectorized extraction
batches beats the naive per-case loop (one instrumented forward pass per
production case), and the footprint cache makes repeated cases almost free.
The speedup comes from amortizing per-call overhead — eval-mode toggling,
per-layer probe dispatch, python loop setup — over the batch dimension of the
underlying matrix products.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import DeepMorph, FootprintExtractor
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.optim import Adam
from repro.serve import BatchingEngine, FootprintCache
from repro.training import Trainer

NUM_CASES = 48
RESULT_PATH = os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")


def _record(**metrics) -> None:
    """Merge metrics into the shared BENCH_serve.json perf record."""
    existing = {}
    if os.path.exists(RESULT_PATH):
        with open(RESULT_PATH, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    existing.update(metrics)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def fitted_scenario():
    """A small trained LeNet with a fitted DeepMorph and a production batch."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=10, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=20, n_test_per_class=12, rng=0)
    model = LeNet(
        input_shape=(1, 10, 10), num_classes=4,
        conv_channels=(4,), dense_units=(16,), kernel_size=3, rng=3,
    )
    Trainer(model, Adam(model.parameters(), lr=0.02), rng=1).fit(
        train, epochs=4, batch_size=16
    )
    model.eval()
    morph = DeepMorph(probe_epochs=2, rng=2).fit(model, train)
    inputs, _ = test.arrays()
    return morph, inputs[:NUM_CASES]


def test_batched_extraction_beats_per_case_loop(fitted_scenario):
    morph, inputs = fitted_scenario
    extractor = FootprintExtractor(morph.instrumented)

    # Warm-up (first-touch allocations should not skew either side).
    extractor.extract_arrays(inputs[:2])

    start = time.perf_counter()
    per_case = [extractor.extract_arrays(inputs[i:i + 1]) for i in range(inputs.shape[0])]
    per_case_seconds = time.perf_counter() - start

    engine = BatchingEngine(
        lambda key, groups: extractor.extract_coalesced(groups), cache=None
    )
    start = time.perf_counter()
    batched_traj, batched_final = engine.extract("bench@v1", inputs)
    batched_seconds = time.perf_counter() - start

    # Same numbers (to float32 extraction resolution — BLAS sgemm results
    # move at ~1e-7 with batch composition), radically different cost.
    np.testing.assert_allclose(
        np.concatenate([traj for traj, _ in per_case]), batched_traj, atol=1e-6
    )
    speedup = per_case_seconds / max(batched_seconds, 1e-9)
    print(
        f"\nper-case loop: {per_case_seconds * 1e3:8.1f} ms  "
        f"({inputs.shape[0] / per_case_seconds:7.1f} cases/s)"
    )
    print(
        f"batched:       {batched_seconds * 1e3:8.1f} ms  "
        f"({inputs.shape[0] / batched_seconds:7.1f} cases/s)  speedup x{speedup:.1f}"
    )
    _record(
        num_cases=int(inputs.shape[0]),
        cases_per_sec_batched=inputs.shape[0] / batched_seconds,
        cases_per_sec_per_case=inputs.shape[0] / per_case_seconds,
        batched_vs_loop_speedup=speedup,
    )
    assert batched_seconds < per_case_seconds, (
        f"batched extraction ({batched_seconds:.4f}s) should beat the per-case "
        f"loop ({per_case_seconds:.4f}s) on {inputs.shape[0]} cases"
    )


def test_cache_makes_repeated_cases_cheap(fitted_scenario):
    morph, inputs = fitted_scenario
    extractor = FootprintExtractor(morph.instrumented)
    engine = BatchingEngine(
        lambda key, groups: extractor.extract_coalesced(groups),
        cache=FootprintCache(maxsize=4 * NUM_CASES),
    )

    start = time.perf_counter()
    cold_traj, _ = engine.extract("bench@v1", inputs)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm_traj, _ = engine.extract("bench@v1", inputs)
    warm_seconds = time.perf_counter() - start

    np.testing.assert_array_equal(cold_traj, warm_traj)
    stats = engine.stats()
    assert stats["cases_extracted"] == inputs.shape[0]
    assert stats["cases_from_cache"] == inputs.shape[0]
    print(
        f"\ncold: {cold_seconds * 1e3:7.1f} ms   warm (cached): {warm_seconds * 1e3:7.1f} ms"
    )
    _record(
        cold_ms=cold_seconds * 1e3,
        warm_ms=warm_seconds * 1e3,
        cache_warm_vs_cold_speedup=cold_seconds / max(warm_seconds, 1e-9),
    )
    assert warm_seconds < cold_seconds, "a fully cached batch must beat extraction"
