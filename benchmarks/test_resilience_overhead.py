"""Resilience-overhead benchmark: the safety net must be ~free when idle.

The resilience layer (PR 8) threads four mechanisms through the hot path of
every request: a deadline contextvar bound and checked per request, a fault
injector consulted at five compiled-in sites, per-replica health accounting
on every lease release, and (client-side) a circuit-breaker gate per call.
All of them are designed so the *disarmed* path — no deadline header, no
chaos armed, healthy replicas, closed breaker — costs an attribute check or
one branch per site.

This benchmark measures that claim the same way ``test_obs_overhead.py``
measures tracing: gateway throughput on the identical concurrent-client
workload, compared against the committed pre-resilience anchor.  Since the
safety net cannot be compiled out, the measured ratio is **armed-but-idle
chaos vs disarmed chaos** — the injector enabled with a never-firing plan
(probability 0) against the default disabled injector.  The ratio
``armed_vs_disarmed_throughput`` is written to ``BENCH_resilience.json`` and
gated in CI by ``benchmarks/check_regression.py`` (baseline 0.90, i.e.
<=10% overhead, the gate's 30% tolerance absorbing runner noise).

Also recorded (not gated; absolute ns do not transfer between machines):

* ns per disarmed ``FaultInjector.inject`` call — the per-site cost;
* ns per ``CircuitBreaker.allow`` + ``record_success`` pair — the per-call
  client cost;
* ns per deadline bind/check/unbind cycle — the per-request cost.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.core import DeepMorph
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet
from repro.optim import Adam
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    bind_deadline,
    check_deadline,
    configure_chaos,
    unbind_deadline,
)
from repro.serve import ArtifactRegistry, DiagnosisGateway, ReplicaPool
from repro.training import Trainer

NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 12
NUM_CASES = 16
NUM_REPLICAS = 2
#: In-test floor: catastrophic overhead fails immediately; the committed
#: baseline in benchmarks/baselines/BENCH_resilience.json gates the rest.
MIN_RATIO = float(os.environ.get("BENCH_RESILIENCE_MIN_RATIO", "0.60"))
RESULT_PATH = os.environ.get("BENCH_RESILIENCE_JSON", "BENCH_resilience.json")

SERVICE_KWARGS = dict(batch_wait_seconds=0.001, cache_size=4096, num_workers=1)


@pytest.fixture(scope="module")
def serving_scenario(tmp_path_factory):
    """A registered fitted model plus one production payload (tiny, fast)."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=10, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=20, n_test_per_class=12, rng=0)
    model = LeNet(
        input_shape=(1, 10, 10), num_classes=4,
        conv_channels=(4,), dense_units=(16,), kernel_size=3, rng=3,
    )
    Trainer(model, Adam(model.parameters(), lr=0.02), rng=1).fit(
        train, epochs=4, batch_size=16
    )
    model.eval()
    morph = DeepMorph(probe_epochs=2, rng=2).fit(model, train)

    registry_dir = tmp_path_factory.mktemp("resilience_bench_registry")
    ArtifactRegistry(registry_dir).register("bench", morph)

    inputs, labels = test.arrays()
    payload = json.dumps({
        "model": "bench",
        "inputs": inputs[:NUM_CASES].tolist(),
        "labels": labels[:NUM_CASES].tolist(),
    }).encode("utf-8")
    return registry_dir, payload


def _post_once(host: str, port: int, payload: bytes) -> None:
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST", "/diagnose", body=payload, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        body = response.read()
        assert response.status == 200, body
    finally:
        connection.close()


def _hammer(host: str, port: int, payload: bytes):
    """NUM_CLIENTS keep-alive clients; returns (wall_seconds, requests, errors)."""
    barrier = threading.Barrier(NUM_CLIENTS + 1)
    counts = []
    errors = []
    lock = threading.Lock()

    def client() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        done = 0
        connection.connect()
        barrier.wait()
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                connection.request(
                    "POST", "/diagnose", body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                done += 1
                if response.status != 200:
                    with lock:
                        errors.append(response.status)
        except Exception as error:  # noqa: BLE001 - recorded and failed below
            with lock:
                errors.append(repr(error))
        finally:
            connection.close()
        with lock:
            counts.append(done)

    threads = [threading.Thread(target=client) for _ in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, sum(counts), errors


def _disarmed_inject_ns(iterations: int = 200_000) -> float:
    """ns per compiled-in site visit with the injector disarmed (the default)."""
    injector = FaultInjector(enabled=False)
    start = time.perf_counter()
    for _ in range(iterations):
        injector.inject("replica.dispatch")
    return (time.perf_counter() - start) / iterations * 1e9


def _breaker_cycle_ns(iterations: int = 100_000) -> float:
    """ns per closed-breaker allow + record_success pair (the happy path)."""
    breaker = CircuitBreaker(failure_threshold=5, reset_seconds=5.0)
    start = time.perf_counter()
    for _ in range(iterations):
        breaker.allow()
        breaker.record_success()
    return (time.perf_counter() - start) / iterations * 1e9


def _deadline_cycle_ns(iterations: int = 100_000) -> float:
    """ns per bind + check + unbind cycle (one request's deadline cost)."""
    deadline = Deadline.after(3600.0)
    start = time.perf_counter()
    for _ in range(iterations):
        token = bind_deadline(deadline)
        check_deadline("bench")
        unbind_deadline(token)
    return (time.perf_counter() - start) / iterations * 1e9


def test_resilience_overhead_is_bounded(serving_scenario):
    registry_dir, payload = serving_scenario

    pool = ReplicaPool.from_registry(
        registry_dir,
        num_replicas=NUM_REPLICAS,
        max_queue_per_replica=NUM_CLIENTS,
        **SERVICE_KWARGS,
    )
    gateway = DiagnosisGateway(pool, port=0).start()
    try:
        # Warm every replica and the response cache before either phase, so
        # the comparison isolates the front-end + resilience bookkeeping.
        for _ in range(NUM_REPLICAS + 1):
            _post_once(gateway.host, gateway.port, payload)

        configure_chaos(None)  # belt and braces: the disarmed default
        wall, requests, errors = _hammer(gateway.host, gateway.port, payload)
        assert not errors, f"disarmed errors: {errors[:5]}"
        disarmed_rps = requests / wall

        # Armed but idle: every site pays the full draw path (lock + seeded
        # rng) yet no fault ever fires — the worst honest case of carrying
        # the chaos machinery through production traffic.
        configure_chaos(
            [FaultPlan(site="replica.dispatch", mode="delay", probability=0.0)],
            seed=11,
        )
        try:
            _post_once(gateway.host, gateway.port, payload)  # armed warm-up
            wall, requests, errors = _hammer(gateway.host, gateway.port, payload)
            assert not errors, f"armed errors: {errors[:5]}"
            armed_rps = requests / wall
        finally:
            configure_chaos(None)

        ratio = armed_rps / disarmed_rps
        inject_ns = _disarmed_inject_ns()
        breaker_ns = _breaker_cycle_ns()
        deadline_ns = _deadline_cycle_ns()
        print(
            f"\ndisarmed {disarmed_rps:8.1f} req/s   armed-idle {armed_rps:8.1f} req/s   "
            f"ratio x{ratio:.3f}   disarmed-inject {inject_ns:6.1f} ns   "
            f"breaker {breaker_ns:6.1f} ns   deadline {deadline_ns:6.1f} ns"
        )

        record = {
            "clients": NUM_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cases_per_request": NUM_CASES,
            "replicas": NUM_REPLICAS,
            "disarmed_throughput_rps": disarmed_rps,
            "armed_idle_throughput_rps": armed_rps,
            "armed_vs_disarmed_throughput": ratio,
            "disarmed_inject_ns": inject_ns,
            "breaker_cycle_ns": breaker_ns,
            "deadline_cycle_ns": deadline_ns,
        }
        with open(RESULT_PATH, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
        print(f"wrote {RESULT_PATH}")

        assert ratio >= MIN_RATIO, (
            f"armed-but-idle chaos costs too much: x{ratio:.3f} < x{MIN_RATIO} "
            f"({disarmed_rps:.1f} -> {armed_rps:.1f} req/s)"
        )
    finally:
        gateway.shutdown()
        pool.shutdown()
