"""Table I, CIFAR-10 / ResNet cell group (paper rows: ResNet × {ITD, UTD, SD})."""

import pytest

from table1_harness import run_table1_cell


@pytest.mark.benchmark(group="table1-resnet")
@pytest.mark.parametrize("defect", ["itd", "utd", "sd"])
def test_table1_resnet(benchmark, defect):
    run_table1_cell(benchmark, "resnet", defect)
