"""Table I, CIFAR-10 / DenseNet cell group (paper rows: DenseNet × {ITD, UTD, SD})."""

import pytest

from table1_harness import run_table1_cell


@pytest.mark.benchmark(group="table1-densenet")
@pytest.mark.parametrize("defect", ["itd", "utd", "sd"])
def test_table1_densenet(benchmark, defect):
    run_table1_cell(benchmark, "densenet", defect)
