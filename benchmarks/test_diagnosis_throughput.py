"""Benchmark of the batched diagnosis core against the per-case reference path.

The claim of the diagnosis rework: stacking all N faulty-case trajectories
into one ``(N, L, C)`` array, judging them against every class execution
pattern through broadcasted JS-divergence kernels, and scoring every case in
a single ``(N, F) @ (F, D)`` matrix product makes end-to-end diagnosis (given
already-extracted footprints) at least three times faster than the retained
per-case path — while matching it to ``1e-12``.

The reference side is the per-case implementation kept for exactly this
purpose: :func:`repro.core.compute_specifics` (one footprint at a time
against the library) feeding ``DefectCaseClassifier.aggregate_reference``
(one matrix-vector product and softmax per case).

The measured rates and the batched-vs-loop ratio are written to
``BENCH_diagnosis.json`` so CI can archive the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import (
    DefectCaseClassifier,
    DiagnosisContext,
    FootprintExtractor,
    PatternLibrary,
    SoftmaxInstrumentedModel,
    compute_specifics,
    compute_specifics_batch,
)
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import LeNet

NUM_CASES = 256
REPEATS = 3
MIN_SPEEDUP = 3.0  # acceptance floor at N=256; locally this measures far higher
PARITY_BOUND = 1e-12
RESULT_PATH = os.environ.get("BENCH_DIAGNOSIS_JSON", "BENCH_diagnosis.json")


@pytest.fixture(scope="module")
def diagnosis_scenario():
    """A fitted pattern library plus N=256 labeled faulty-case footprints."""
    generator = SyntheticImageClassification(SyntheticConfig(
        num_classes=4, image_size=16, channels=1, templates_per_class=2,
        blobs_per_template=2, bars_per_template=1, noise_std=0.05,
        max_shift=1, distractor_bars=0, seed=5,
    ))
    train, test = generator.splits(n_train_per_class=10, n_test_per_class=64, rng=0)
    model = LeNet(
        input_shape=(1, 16, 16), num_classes=4,
        conv_channels=(8, 16), dense_units=(32,), kernel_size=3, rng=3,
    )
    model.eval()
    instrumented = SoftmaxInstrumentedModel(model, probe_epochs=1, rng=0).fit(train)
    library = PatternLibrary(instrumented).fit(train)

    inputs, _ = test.arrays()
    inputs = inputs[:NUM_CASES]
    assert inputs.shape[0] == NUM_CASES
    trajectories, final_probs = instrumented.layer_distributions(inputs)
    # Force every case to be "faulty": the true label is deliberately set to a
    # class other than the prediction, which is all diagnosis requires.
    labels = (final_probs.argmax(axis=1) + 1) % 4
    footprints = FootprintExtractor(instrumented).from_arrays(
        trajectories, final_probs, labels
    )
    context = DiagnosisContext(
        error_concentration=0.4,
        pattern_overlap=library.pattern_overlap(),
        feature_quality=library.feature_quality(),
        training_inconsistency=library.training_inconsistency(),
    )
    return library, footprints, context


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_diagnosis_beats_per_case_reference(diagnosis_scenario):
    library, footprints, context = diagnosis_scenario
    classifier = DefectCaseClassifier()

    def batched():
        specifics = compute_specifics_batch(footprints, library)
        return classifier.aggregate(specifics, context=context)

    def reference():
        specifics = [compute_specifics(fp, library) for fp in footprints]
        return classifier.aggregate_reference(specifics, context=context)

    # Warm-up both sides so lazily-built pattern indexes and first-touch
    # allocations skew neither measurement.
    report_batched = batched()
    report_reference = reference()

    batched_seconds = _best_of(batched)
    reference_seconds = _best_of(reference)
    speedup = reference_seconds / max(batched_seconds, 1e-9)

    n = len(footprints)
    print(
        f"\nper-case reference: {reference_seconds * 1e3:7.1f} ms  "
        f"({n / reference_seconds:8.1f} cases/s)"
    )
    print(
        f"batched core:       {batched_seconds * 1e3:7.1f} ms  "
        f"({n / batched_seconds:8.1f} cases/s)  speedup x{speedup:.2f}"
    )

    payload = {
        "num_cases": n,
        "cases_per_sec_batched": n / batched_seconds,
        "cases_per_sec_reference": n / reference_seconds,
        "batched_vs_loop_speedup": speedup,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    # Same diagnosis, radically different cost.
    for defect, ratio in report_reference.ratios.items():
        assert abs(report_batched.ratios[defect] - ratio) <= PARITY_BOUND
        assert report_batched.counts[defect] == report_reference.counts[defect]
    assert speedup >= MIN_SPEEDUP, (
        f"batched diagnosis only reached x{speedup:.2f} over the per-case "
        f"reference at N={n} (floor: x{MIN_SPEEDUP})"
    )


def test_batched_specifics_match_reference_case_by_case(diagnosis_scenario):
    """Field-level parity of every specifics value on the real fitted library."""
    library, footprints, _ = diagnosis_scenario
    batched = compute_specifics_batch(footprints, library)
    for fp, spec in zip(footprints, batched):
        reference = compute_specifics(fp, library)
        for key, value in reference.as_dict().items():
            assert abs(float(spec.as_dict()[key]) - float(value)) <= PARITY_BOUND, key
