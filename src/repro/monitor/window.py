"""Bounded sliding window of served trajectory stacks.

The window is the monitor's only contact with the serving hot path, so it
follows the same discipline as :mod:`repro.obs`: appends never block and
never raise.  Storage is a preallocated ring — count-based expiry happens by
overwriting the oldest rows, time-based expiry by masking rows older than
``max_age_seconds`` out of every snapshot.  When an append cannot be taken
(lock contention with a concurrent snapshot, a closed window, rows whose
shape disagrees with the ring) the rows are dropped and counted; strict
callers — the offline ``repro-monitor`` trace replay, tests — use
:meth:`MonitorWindow.append_strict` to turn those drops into a typed
:class:`~repro.exceptions.MonitorOverflowError` instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..exceptions import MonitorOverflowError

__all__ = ["MonitorWindow", "WindowSnapshot"]


@dataclass(frozen=True)
class WindowSnapshot:
    """Point-in-time copy of the window contents, oldest row first.

    Attributes
    ----------
    stack:
        ``(N, L, C)`` float64 trajectories currently inside the window.
    class_ids:
        ``(N,)`` predicted class of each trajectory.
    timestamps:
        ``(N,)`` monotonic observation times.
    appended_total:
        Rows ever accepted into the window (including since-expired ones).
    dropped_total:
        Rows the window refused (contention, closed, shape mismatch).
    """

    stack: np.ndarray
    class_ids: np.ndarray
    timestamps: np.ndarray
    appended_total: int
    dropped_total: int

    @property
    def cases(self) -> int:
        return int(self.class_ids.shape[0])


class MonitorWindow:
    """Ring-buffered sliding window over served trajectory stacks.

    Parameters
    ----------
    max_cases:
        Ring capacity; once full, new rows overwrite the oldest ones
        (count-based expiry).
    max_age_seconds:
        Rows older than this are excluded from snapshots and evicted on the
        next append (time-based expiry); ``None`` disables the age bound.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_cases: int = 2048,
        max_age_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_cases < 1:
            raise ValueError(f"max_cases must be >= 1, got {max_cases}")
        if max_age_seconds is not None and max_age_seconds <= 0:
            raise ValueError(f"max_age_seconds must be positive, got {max_age_seconds}")
        self.max_cases = int(max_cases)
        self.max_age_seconds = None if max_age_seconds is None else float(max_age_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._stack: Optional[np.ndarray] = None  # (max_cases, L, C), lazily shaped
        self._classes: Optional[np.ndarray] = None
        self._times: Optional[np.ndarray] = None
        self._next = 0  # ring write cursor
        self._count = 0  # live rows
        self._appended_total = 0
        self._dropped_total = 0
        self._closed = False

    # -- hot path -----------------------------------------------------------------

    def append(
        self,
        trajectories: np.ndarray,
        class_ids: np.ndarray,
        timestamp: Optional[float] = None,
    ) -> int:
        """Offer a ``(m, L, C)`` stack to the window; returns rows accepted.

        Never blocks and never raises: if the lock is held by a concurrent
        snapshot, the window is closed, or the rows do not match the ring's
        shape, the rows are dropped and counted instead.
        """
        trajectories = np.asarray(trajectories)
        class_ids = np.asarray(class_ids).reshape(-1)
        rows = int(trajectories.shape[0]) if trajectories.ndim == 3 else -1
        if rows < 0 or class_ids.shape[0] != rows:
            self._dropped_total += max(rows, class_ids.shape[0], 1)
            return 0
        if rows == 0:
            return 0
        if not self._lock.acquire(blocking=False):
            self._dropped_total += rows
            return 0
        try:
            return self._append_locked(trajectories, class_ids, timestamp)
        finally:
            self._lock.release()

    def append_strict(
        self,
        trajectories: np.ndarray,
        class_ids: np.ndarray,
        timestamp: Optional[float] = None,
    ) -> int:
        """Append that raises :class:`MonitorOverflowError` on any drop.

        Used by offline replay and tests, where silently losing observations
        would corrupt the analysis; the serving path uses :meth:`append`.
        """
        before = self._dropped_total
        accepted = self.append(trajectories, class_ids, timestamp)
        dropped = self._dropped_total - before
        if dropped:
            raise MonitorOverflowError(
                f"monitor window dropped {dropped} observation(s)", dropped=dropped
            )
        return accepted

    def _append_locked(
        self, trajectories: np.ndarray, class_ids: np.ndarray, timestamp: Optional[float]
    ) -> int:
        if self._closed:
            self._dropped_total += trajectories.shape[0]
            return 0
        if self._stack is None:
            shape = (self.max_cases,) + trajectories.shape[1:]
            self._stack = np.empty(shape, dtype=np.float64)
            self._classes = np.empty(self.max_cases, dtype=np.int64)
            self._times = np.empty(self.max_cases, dtype=np.float64)
        elif trajectories.shape[1:] != self._stack.shape[1:]:
            self._dropped_total += trajectories.shape[0]
            return 0
        now = self._clock() if timestamp is None else float(timestamp)
        self._expire_locked(now)
        rows = int(trajectories.shape[0])
        if rows > self.max_cases:
            # Only the newest max_cases rows can survive anyway.
            trajectories = trajectories[-self.max_cases:]
            class_ids = class_ids[-self.max_cases:]
            rows = self.max_cases
        positions = (self._next + np.arange(rows)) % self.max_cases
        self._stack[positions] = trajectories
        self._classes[positions] = class_ids
        self._times[positions] = now
        self._next = int((self._next + rows) % self.max_cases)
        self._count = min(self._count + rows, self.max_cases)
        self._appended_total += rows
        return rows

    # -- read side ----------------------------------------------------------------

    def _ordered_indices_locked(self) -> np.ndarray:
        start = (self._next - self._count) % self.max_cases
        return (start + np.arange(self._count)) % self.max_cases

    def _expire_locked(self, now: float) -> None:
        if self.max_age_seconds is None or self._count == 0:
            return
        indices = self._ordered_indices_locked()
        fresh = self._times[indices] > now - self.max_age_seconds
        # Rows are time-ordered, so expiry only ever trims the oldest prefix.
        self._count = int(np.count_nonzero(fresh))

    def snapshot(self) -> WindowSnapshot:
        """Copy of the current (non-expired) contents, oldest first."""
        with self._lock:
            self._expire_locked(self._clock())
            if self._stack is None or self._count == 0:
                empty_stack = np.empty((0, 0, 0), dtype=np.float64)
                return WindowSnapshot(
                    stack=empty_stack,
                    class_ids=np.empty(0, dtype=np.int64),
                    timestamps=np.empty(0, dtype=np.float64),
                    appended_total=self._appended_total,
                    dropped_total=self._dropped_total,
                )
            indices = self._ordered_indices_locked()
            return WindowSnapshot(
                stack=self._stack[indices].copy(),
                class_ids=self._classes[indices].copy(),
                timestamps=self._times[indices].copy(),
                appended_total=self._appended_total,
                dropped_total=self._dropped_total,
            )

    def stats(self) -> Dict[str, Union[int, float, None]]:
        """Cheap counters for metrics/payloads (no array copies)."""
        with self._lock:
            self._expire_locked(self._clock())
            return {
                "cases": int(self._count),
                "max_cases": self.max_cases,
                "max_age_seconds": self.max_age_seconds,
                "appended_total": int(self._appended_total),
                "dropped_total": int(self._dropped_total),
            }

    @property
    def dropped_total(self) -> int:
        return int(self._dropped_total)

    def clear(self) -> None:
        """Discard the contents (counters survive)."""
        with self._lock:
            self._count = 0
            self._next = 0

    def close(self) -> None:
        """Refuse all further appends (they drop and count)."""
        with self._lock:
            self._closed = True

    def __len__(self) -> int:
        return int(self._count)
