"""MonitorSink — the serving layer's tap into the monitoring subsystem.

One sink instance watches one service's traffic across all of its models.
Two taps feed it, with no double counting:

* ``observe_extracted`` — called from the batching engine's drain with the
  **freshly extracted** ``(trajectories, final_probs)`` of each model group.
  These rows feed the drift window (cache-hit repeats of the same payload
  never re-enter it, so a hot cached request cannot swamp the window).
* ``observe_labeled`` — called from ``DiagnosisService.diagnose`` with every
  request's labeled arrays.  These feed the misclassification counters and
  the per-model :class:`~repro.monitor.update.PatternUpdater` buffers.

Both taps follow the obs discipline: they never raise and never block — any
internal failure bumps an error counter and the request proceeds untouched.

The sink is deliberately ignorant of :mod:`repro.serve` (cycle-free): the
pattern libraries, metrics registry, update runner, and updater factory are
all injected as plain callables/duck-typed objects by whoever wires it up.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Protocol

import numpy as np

from ..core.patterns import PatternLibrary
from ..obs import span as obs_span
from .alerts import LEVEL_OK, AlertManager, level_severity
from .drift import DriftDetector, DriftReport, DriftThresholds
from .update import PatternUpdater
from .window import MonitorWindow

__all__ = ["MonitorSink", "MetricsLike"]


class _CounterLike(Protocol):
    def inc(self, amount: float = 1.0) -> None: ...


class _GaugeLike(Protocol):
    def set(self, value: float) -> None: ...


class MetricsLike(Protocol):
    """The slice of ``repro.serve.metrics.MetricsRegistry`` the sink uses."""

    def counter(self, name: str, description: str = "") -> _CounterLike: ...

    def gauge(self, name: str, description: str = "") -> _GaugeLike: ...


class _NoopInstrument:
    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None


class _NoopMetrics:
    def counter(self, name: str, description: str = "") -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, description: str = "") -> _NoopInstrument:
        return _NOOP_INSTRUMENT


_NOOP_INSTRUMENT = _NoopInstrument()


class _ModelMonitor:
    """Per-model window + detector + optional updater."""

    __slots__ = ("window", "detector", "updater", "last_report", "since_evaluation")

    def __init__(
        self,
        window: MonitorWindow,
        detector: DriftDetector,
        updater: Optional[PatternUpdater],
    ) -> None:
        self.window = window
        self.detector = detector
        self.updater = updater
        self.last_report: Optional[DriftReport] = None
        self.since_evaluation = 0


class MonitorSink:
    """Collect served traffic into windows, score drift, manage alerts.

    Parameters
    ----------
    library_resolver:
        ``model_key -> PatternLibrary`` for the artifact currently serving
        that key (injected by the service; keeps this module serve-free).
    window_cases / window_max_age_seconds:
        Sliding-window bounds (count- and time-based expiry).
    thresholds / ewma_alpha / min_cases:
        Drift scoring knobs (see :class:`DriftDetector`).
    evaluate_every:
        Run a drift evaluation automatically after this many freshly
        observed cases per model (0 disables; endpoints can still refresh).
    updater_factory:
        Optional ``model_key -> PatternUpdater`` enabling incremental
        pattern updates from labeled traffic.
    update_runner:
        Callable executing the (potentially slow) update application —
        typically a worker-pool submit; defaults to inline execution.
    metrics:
        Duck-typed metrics registry; gauges/counters land on ``/metrics``.
    """

    def __init__(
        self,
        library_resolver: Callable[[str], PatternLibrary],
        window_cases: int = 2048,
        window_max_age_seconds: Optional[float] = 600.0,
        thresholds: Optional[DriftThresholds] = None,
        ewma_alpha: float = 0.3,
        min_cases: int = 8,
        evaluate_every: int = 64,
        alert_cooldown_seconds: float = 60.0,
        updater_factory: Optional[Callable[[str], Optional[PatternUpdater]]] = None,
        update_runner: Optional[Callable[[Callable[[], None]], None]] = None,
        metrics: Optional[MetricsLike] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._resolve_library = library_resolver
        self.window_cases = int(window_cases)
        self.window_max_age_seconds = window_max_age_seconds
        self.thresholds = thresholds or DriftThresholds()
        self.ewma_alpha = float(ewma_alpha)
        self.min_cases = int(min_cases)
        self.evaluate_every = int(evaluate_every)
        self._updater_factory = updater_factory
        self._update_runner = update_runner or (lambda fn: fn())
        self._clock = clock
        self.metrics = metrics or _NoopMetrics()
        self.alerts = AlertManager(
            cooldown_seconds=alert_cooldown_seconds,
            clock=clock,
            on_event=lambda alert: self._alert_events.inc(),
        )
        self._lock = threading.Lock()
        self._models: Dict[str, _ModelMonitor] = {}

        metric = self.metrics
        self._observed = metric.counter(
            "monitor.observed_cases", "Freshly extracted cases fed to the drift window"
        )
        self._labeled = metric.counter(
            "monitor.labeled_cases", "Labeled cases fed to the update buffers"
        )
        self._misclassified = metric.counter(
            "monitor.misclassified_cases", "Labeled cases the model got wrong"
        )
        self._dropped = metric.counter(
            "monitor.dropped_cases", "Observations the window refused (non-blocking)"
        )
        self._errors = metric.counter(
            "monitor.errors", "Internal monitor failures swallowed off the hot path"
        )
        self._evaluations = metric.counter(
            "monitor.evaluations", "Drift evaluations performed"
        )
        self._alert_events = metric.counter(
            "monitor.alert_events", "Fired (non-suppressed) alert escalations"
        )
        self._updates = metric.counter(
            "monitor.updates_applied", "partial_fit updates folded into libraries"
        )
        self._gauge_window = metric.gauge(
            "monitor.window_cases", "Live cases in the most recently fed window"
        )
        self._gauge_raw = metric.gauge(
            "monitor.drift_raw", "Aggregate drift score of the last evaluation"
        )
        self._gauge_ewma = metric.gauge(
            "monitor.drift_ewma", "EWMA-smoothed aggregate drift score"
        )
        self._gauge_level = metric.gauge(
            "monitor.alert_level", "Worst alert level (0=ok, 1=warn, 2=critical)"
        )
        self._gauge_pending = metric.gauge(
            "monitor.update_pending_cases", "Labeled cases buffered for the next update"
        )

    # -- model state --------------------------------------------------------------

    def _model(self, model_key: str) -> _ModelMonitor:
        state = self._models.get(model_key)
        if state is not None:
            return state
        with self._lock:
            state = self._models.get(model_key)
            if state is None:
                window = MonitorWindow(
                    max_cases=self.window_cases,
                    max_age_seconds=self.window_max_age_seconds,
                    clock=self._clock,
                )
                detector = DriftDetector(
                    self._resolve_library(model_key),
                    thresholds=self.thresholds,
                    ewma_alpha=self.ewma_alpha,
                    min_cases=self.min_cases,
                )
                updater = self._updater_factory(model_key) if self._updater_factory else None
                state = _ModelMonitor(window, detector, updater)
                self._models[model_key] = state
        return state

    # -- serving-path taps (never raise) ------------------------------------------

    def observe_extracted(
        self, model_key: str, trajectories: np.ndarray, final_probs: np.ndarray
    ) -> None:
        """Feed freshly extracted cases into the drift window (engine drain tap)."""
        try:
            with obs_span("monitor.update", {"model": model_key, "stage": "window"}):
                state = self._model(model_key)
                predicted = np.asarray(final_probs).argmax(axis=1)
                before = state.window.dropped_total
                accepted = state.window.append(trajectories, predicted)
                self._observed.inc(accepted)
                dropped = state.window.dropped_total - before
                if dropped:
                    self._dropped.inc(dropped)
                self._gauge_window.set(len(state.window))
                if self.evaluate_every > 0:
                    state.since_evaluation += accepted
                    if state.since_evaluation >= self.evaluate_every:
                        state.since_evaluation = 0
                        self._evaluate_state(model_key, state)
        except Exception:
            self._errors.inc()

    def observe_labeled(
        self,
        model_key: str,
        trajectories: np.ndarray,
        final_probs: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        """Feed labeled request arrays into the update path (diagnose tap)."""
        try:
            with obs_span("monitor.update", {"model": model_key, "stage": "labeled"}):
                state = self._model(model_key)
                labels = np.asarray(labels).reshape(-1)
                predicted = np.asarray(final_probs).argmax(axis=1)
                self._labeled.inc(labels.shape[0])
                self._misclassified.inc(int(np.count_nonzero(predicted != labels)))
                updater = state.updater
                if updater is None:
                    return
                updater.add(trajectories, final_probs, labels)
                self._gauge_pending.set(updater.pending_cases)
                if updater.ready():
                    self._update_runner(lambda: self._apply_update(updater))
        except Exception:
            self._errors.inc()

    def _apply_update(self, updater: PatternUpdater) -> None:
        try:
            result = updater.maybe_apply()
            if result is not None:
                self._updates.inc()
                self._gauge_pending.set(updater.pending_cases)
        except Exception:
            self._errors.inc()

    # -- evaluation and reporting --------------------------------------------------

    def evaluate(self, model_key: str) -> DriftReport:
        """Score ``model_key``'s window now and update its alert state."""
        state = self._model(model_key)
        return self._evaluate_state(model_key, state)

    def _evaluate_state(self, model_key: str, state: _ModelMonitor) -> DriftReport:
        report = state.detector.evaluate(state.window.snapshot())
        state.last_report = report
        self._evaluations.inc()
        if not report.insufficient:
            if report.aggregate_raw is not None:
                self._gauge_raw.set(report.aggregate_raw)
            if report.aggregate_ewma is not None:
                self._gauge_ewma.set(report.aggregate_ewma)
            ewma = report.aggregate_ewma
            message = (
                f"aggregate drift ewma={ewma:.3f}" if ewma is not None else "no drift score"
            )
            self.alerts.update(f"{model_key}:drift", report.level, message)
        self._gauge_level.set(level_severity(self.alerts.worst_level()))
        return report

    def refresh(self) -> None:
        """Re-evaluate every model's window (used by ``/monitor?refresh=1``)."""
        for model_key in list(self._models):
            try:
                self.evaluate(model_key)
            except Exception:
                self._errors.inc()

    def payload(self) -> Dict[str, object]:
        """The ``GET /monitor`` document: windows, drift, alerts, updates."""
        with self._lock:
            models = dict(self._models)
        model_payloads: Dict[str, Dict[str, object]] = {}
        for model_key, state in models.items():
            model_payloads[model_key] = {
                "window": state.window.stats(),
                "drift": state.last_report.as_dict() if state.last_report else None,
                "update": state.updater.stats() if state.updater else None,
            }
        worst = self.alerts.worst_level()
        return {
            "enabled": True,
            "level": worst,
            "level_severity": level_severity(worst),
            "thresholds": self.thresholds.as_dict(),
            "models": model_payloads,
            "alerts": self.alerts.snapshot(),
        }

    def worst_level(self) -> str:
        return self.alerts.worst_level()

    @staticmethod
    def disabled_payload() -> Dict[str, object]:
        """The ``GET /monitor`` document when monitoring is off."""
        return {"enabled": False, "level": LEVEL_OK, "models": {}, "alerts": {}}
