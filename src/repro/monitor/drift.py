"""JS-divergence drift detection against a fitted pattern library.

Each evaluation scores a window of served trajectories against the library's
class means using the batched PR-3 kernel
(:meth:`~repro.core.patterns.PatternLibrary.batch_pattern_matches`): every
case's JS divergence to the mean of its *predicted* class, normalized by that
class's training dispersion.  A score of ~1 means live cases sit about as far
from the class mean as the training members themselves did; healthy traffic
scores near or below 1, drifted traffic climbs well above it.

Raw scores are smoothed with per-class EWMA baselines, and levels come from
hysteresis thresholds: escalation is immediate when the EWMA crosses a
threshold, clearing requires dropping a ``hysteresis`` fraction *below* it —
so a score hovering at the threshold cannot flap the alert.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.patterns import PatternLibrary
from ..obs import span as obs_span
from .alerts import LEVEL_CRITICAL, LEVEL_OK, LEVEL_WARN, level_severity
from .window import WindowSnapshot

__all__ = ["DriftThresholds", "ClassDriftScore", "DriftReport", "DriftDetector"]


@dataclass(frozen=True)
class DriftThresholds:
    """Warn/critical thresholds on the normalized drift score, with hysteresis."""

    warn: float = 2.0
    critical: float = 4.0
    hysteresis: float = 0.1

    def __post_init__(self) -> None:
        if self.warn <= 0:
            raise ValueError(f"warn threshold must be positive, got {self.warn}")
        if self.critical < self.warn:
            raise ValueError(
                f"critical threshold ({self.critical}) must be >= warn ({self.warn})"
            )
        if not 0 <= self.hysteresis < 1:
            raise ValueError(f"hysteresis must be in [0, 1), got {self.hysteresis}")

    def resolve(self, score: float, previous: str = LEVEL_OK) -> str:
        """Level for ``score`` given the ``previous`` level (hysteresis applied)."""
        if score >= self.critical:
            return LEVEL_CRITICAL
        if previous == LEVEL_CRITICAL and score >= self.critical * (1 - self.hysteresis):
            return LEVEL_CRITICAL
        if score >= self.warn:
            return LEVEL_WARN
        if previous != LEVEL_OK and score >= self.warn * (1 - self.hysteresis):
            return LEVEL_WARN
        return LEVEL_OK

    def as_dict(self) -> Dict[str, float]:
        return {"warn": self.warn, "critical": self.critical, "hysteresis": self.hysteresis}


@dataclass(frozen=True)
class ClassDriftScore:
    """Drift of one predicted class inside the evaluated window."""

    class_id: int
    cases: int
    raw: float
    ewma: float
    level: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "class_id": self.class_id,
            "cases": self.cases,
            "raw": round(self.raw, 6),
            "ewma": round(self.ewma, 6),
            "level": self.level,
        }


@dataclass(frozen=True)
class DriftReport:
    """One drift evaluation over a window snapshot."""

    window_cases: int
    scored_cases: int
    unmatched_cases: int  # predicted classes with no library pattern
    per_class: Tuple[ClassDriftScore, ...]
    aggregate_raw: Optional[float]
    aggregate_ewma: Optional[float]
    level: str
    thresholds: DriftThresholds
    insufficient: bool = False  # too few cases to score; levels carried over

    def as_dict(self) -> Dict[str, object]:
        return {
            "window_cases": self.window_cases,
            "scored_cases": self.scored_cases,
            "unmatched_cases": self.unmatched_cases,
            "per_class": [score.as_dict() for score in self.per_class],
            "aggregate_raw": None if self.aggregate_raw is None else round(self.aggregate_raw, 6),
            "aggregate_ewma": None
            if self.aggregate_ewma is None
            else round(self.aggregate_ewma, 6),
            "level": self.level,
            "thresholds": self.thresholds.as_dict(),
            "insufficient": self.insufficient,
        }


class DriftDetector:
    """Stateful drift scorer for one model's served traffic.

    Parameters
    ----------
    library:
        The fitted :class:`PatternLibrary` live traffic is judged against.
    thresholds:
        Warn/critical levels on the EWMA-smoothed normalized score.
    ewma_alpha:
        Smoothing weight of the newest evaluation (1.0 disables smoothing).
    min_cases:
        Snapshots with fewer cases are not scored (levels carry over) — a
        couple of early requests must not page anyone.
    """

    def __init__(
        self,
        library: PatternLibrary,
        thresholds: Optional[DriftThresholds] = None,
        ewma_alpha: float = 0.3,
        min_cases: int = 8,
        eps: float = 1e-9,
    ) -> None:
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if min_cases < 1:
            raise ValueError(f"min_cases must be >= 1, got {min_cases}")
        self.library = library
        self.thresholds = thresholds or DriftThresholds()
        self.ewma_alpha = float(ewma_alpha)
        self.min_cases = int(min_cases)
        self.eps = float(eps)
        self._lock = threading.Lock()
        self._class_ewma: Dict[int, float] = {}
        self._class_level: Dict[int, str] = {}
        self._aggregate_ewma: Optional[float] = None
        self._level = LEVEL_OK

    @property
    def level(self) -> str:
        return self._level

    def reset(self) -> None:
        """Forget all EWMA baselines and levels."""
        with self._lock:
            self._class_ewma.clear()
            self._class_level.clear()
            self._aggregate_ewma = None
            self._level = LEVEL_OK

    def _smooth(self, previous: Optional[float], raw: float) -> float:
        if previous is None:
            return raw
        return self.ewma_alpha * raw + (1 - self.ewma_alpha) * previous

    def evaluate(self, snapshot: WindowSnapshot) -> DriftReport:
        """Score one window snapshot and advance the EWMA/level state."""
        with obs_span("monitor.drift", {"cases": snapshot.cases}):
            return self._evaluate(snapshot)

    def _evaluate(self, snapshot: WindowSnapshot) -> DriftReport:
        with self._lock:
            if snapshot.cases < self.min_cases:
                return self._carry_over_locked(snapshot)
            matches = self.library.batch_pattern_matches(snapshot.stack)
            lookup = matches.column_lookup()
            class_ids = snapshot.class_ids
            in_range = (class_ids >= 0) & (class_ids < lookup.shape[0])
            columns = np.where(in_range, lookup[np.clip(class_ids, 0, lookup.shape[0] - 1)], -1)
            valid = columns >= 0
            scored = int(np.count_nonzero(valid))
            if scored == 0:
                return self._carry_over_locked(snapshot, unmatched=snapshot.cases)
            rows = np.nonzero(valid)[0]
            own_divergence = matches.divergences[rows, columns[rows]]
            scale = matches.dispersions[columns[rows]] + self.eps
            scores = own_divergence / scale

            per_class = []
            for class_value in np.unique(class_ids[rows]):
                class_id = int(class_value)
                class_scores = scores[class_ids[rows] == class_value]
                raw = float(class_scores.mean())
                ewma = self._smooth(self._class_ewma.get(class_id), raw)
                previous = self._class_level.get(class_id, LEVEL_OK)
                level = self.thresholds.resolve(ewma, previous)
                self._class_ewma[class_id] = ewma
                self._class_level[class_id] = level
                per_class.append(
                    ClassDriftScore(
                        class_id=class_id,
                        cases=int(class_scores.shape[0]),
                        raw=raw,
                        ewma=ewma,
                        level=level,
                    )
                )

            aggregate_raw = float(scores.mean())
            aggregate_ewma = self._smooth(self._aggregate_ewma, aggregate_raw)
            self._aggregate_ewma = aggregate_ewma
            # The reported level is the worst of the aggregate and any single
            # class — drift concentrated in one class must not be averaged
            # away by healthy traffic elsewhere.
            level = self.thresholds.resolve(aggregate_ewma, self._level)
            for score in per_class:
                if level_severity(score.level) > level_severity(level):
                    level = score.level
            self._level = level
            return DriftReport(
                window_cases=snapshot.cases,
                scored_cases=scored,
                unmatched_cases=snapshot.cases - scored,
                per_class=tuple(per_class),
                aggregate_raw=aggregate_raw,
                aggregate_ewma=aggregate_ewma,
                level=level,
                thresholds=self.thresholds,
            )

    def _carry_over_locked(self, snapshot: WindowSnapshot, unmatched: int = 0) -> DriftReport:
        return DriftReport(
            window_cases=snapshot.cases,
            scored_cases=0,
            unmatched_cases=unmatched,
            per_class=(),
            aggregate_raw=None,
            aggregate_ewma=self._aggregate_ewma,
            level=self._level,
            thresholds=self.thresholds,
            insufficient=snapshot.cases < self.min_cases,
        )
