"""ok / warn / critical alert states with event cooldowns.

The alert manager is the monitor's notification edge: drift evaluations (and
anything else that wants a managed state) report a level per named alert, and
the manager tracks transitions.  *State* always reflects the latest report —
an operator reading ``/monitor`` sees the truth — but *events* (the things
that would page someone) are rate-limited: an alert that flaps between ok and
warn fires at most one event per ``cooldown_seconds``, with suppressed
escalations counted instead of dropped silently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "LEVEL_OK",
    "LEVEL_WARN",
    "LEVEL_CRITICAL",
    "LEVELS",
    "level_severity",
    "Alert",
    "AlertManager",
]

LEVEL_OK = "ok"
LEVEL_WARN = "warn"
LEVEL_CRITICAL = "critical"
LEVELS = (LEVEL_OK, LEVEL_WARN, LEVEL_CRITICAL)

_SEVERITY = {LEVEL_OK: 0, LEVEL_WARN: 1, LEVEL_CRITICAL: 2}


def level_severity(level: str) -> int:
    """Numeric rank of a level (ok=0, warn=1, critical=2) for gauges/compares."""
    return _SEVERITY[level]


@dataclass
class Alert:
    """Mutable state of one named alert."""

    name: str
    level: str = LEVEL_OK
    message: str = ""
    since: float = 0.0  # when the current level was entered
    last_change: float = 0.0
    last_event: Optional[float] = None  # last *fired* escalation
    events_total: int = 0
    suppressed_total: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "level": self.level,
            "message": self.message,
            "since": self.since,
            "last_change": self.last_change,
            "events_total": self.events_total,
            "suppressed_total": self.suppressed_total,
        }


@dataclass
class _ManagedAlert:
    alert: Alert
    history: List[str] = field(default_factory=list)


class AlertManager:
    """Track named alert levels; fire cooldown-limited events on escalation.

    An *escalation* is any transition to a strictly higher severity (ok→warn,
    warn→critical, ok→critical).  Escalations within ``cooldown_seconds`` of
    the previous fired event are suppressed (counted, state still updated).
    De-escalations update state immediately and never fire events.
    """

    def __init__(
        self,
        cooldown_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        on_event: Optional[Callable[[Alert], None]] = None,
    ) -> None:
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._alerts: Dict[str, _ManagedAlert] = {}

    def update(self, name: str, level: str, message: str = "") -> Alert:
        """Report the current level of ``name``; returns the managed alert."""
        if level not in _SEVERITY:
            raise ValueError(f"unknown alert level {level!r}; expected one of {LEVELS}")
        fire: Optional[Alert] = None
        with self._lock:
            now = self._clock()
            managed = self._alerts.get(name)
            if managed is None:
                managed = _ManagedAlert(Alert(name=name, since=now, last_change=now))
                self._alerts[name] = managed
            alert = managed.alert
            alert.message = message
            if level != alert.level:
                escalated = _SEVERITY[level] > _SEVERITY[alert.level]
                alert.level = level
                alert.since = now
                alert.last_change = now
                managed.history.append(level)
                if escalated:
                    if (
                        alert.last_event is None
                        or now - alert.last_event >= self.cooldown_seconds
                    ):
                        alert.events_total += 1
                        alert.last_event = now
                        fire = alert
                    else:
                        alert.suppressed_total += 1
        if fire is not None and self._on_event is not None:
            self._on_event(fire)
        return alert

    def get(self, name: str) -> Optional[Alert]:
        with self._lock:
            managed = self._alerts.get(name)
            return managed.alert if managed else None

    def active(self) -> List[Alert]:
        """Alerts currently above ok, most severe first."""
        with self._lock:
            alerts = [m.alert for m in self._alerts.values() if m.alert.level != LEVEL_OK]
        return sorted(alerts, key=lambda a: -_SEVERITY[a.level])

    def worst_level(self) -> str:
        """The most severe current level across all alerts (ok when none)."""
        with self._lock:
            worst = LEVEL_OK
            for managed in self._alerts.values():
                if _SEVERITY[managed.alert.level] > _SEVERITY[worst]:
                    worst = managed.alert.level
            return worst

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All alert states keyed by name (for ``/monitor`` payloads)."""
        with self._lock:
            return {name: m.alert.as_dict() for name, m in self._alerts.items()}
