"""repro.monitor — online drift monitoring for live diagnosis traffic.

The paper's workflow is offline: fit a pattern library, diagnose a static
dataset.  This subsystem is the continuous-operation layer on top — the
auxiliary-monitoring instrument running alongside the measurement core:

* :mod:`repro.monitor.window` — bounded sliding window of served trajectory
  stacks (ring storage, count- and time-based expiry, never blocks the
  serving path).
* :mod:`repro.monitor.drift` — JS-divergence drift scoring of each window
  against the fitted pattern library's class means (batched kernels, EWMA
  baselines, hysteresis thresholds).
* :mod:`repro.monitor.update` — incremental ``partial_fit`` pattern updates
  from labeled traffic, snapshotted as immutable registry versions so
  rollback is a one-line resolve.
* :mod:`repro.monitor.alerts` — ok/warn/critical alert states with event
  cooldowns.
* :mod:`repro.monitor.sink` — the :class:`MonitorSink` the serving layer
  taps from its batching drain and ``diagnose`` path.

Like :mod:`repro.obs` and :mod:`repro.resilience`, this package imports
nothing from :mod:`repro.serve` — the serving layer injects its registries
and pattern libraries through duck-typed seams, keeping the dependency graph
cycle-free.
"""

from __future__ import annotations

from .alerts import (
    LEVEL_CRITICAL,
    LEVEL_OK,
    LEVEL_WARN,
    LEVELS,
    Alert,
    AlertManager,
    level_severity,
)
from .drift import ClassDriftScore, DriftDetector, DriftReport, DriftThresholds
from .sink import MetricsLike, MonitorSink
from .update import PatternUpdater, RegistryLike, UpdateResult
from .window import MonitorWindow, WindowSnapshot

__all__ = [
    "MonitorWindow",
    "WindowSnapshot",
    "DriftThresholds",
    "DriftDetector",
    "DriftReport",
    "ClassDriftScore",
    "PatternUpdater",
    "UpdateResult",
    "RegistryLike",
    "AlertManager",
    "Alert",
    "LEVELS",
    "LEVEL_OK",
    "LEVEL_WARN",
    "LEVEL_CRITICAL",
    "level_severity",
    "MonitorSink",
    "MetricsLike",
]
