"""Incremental pattern updates from live labeled traffic.

:class:`PatternUpdater` buffers labeled ``(trajectories, final_probs,
labels)`` observations served by the diagnosis stack and periodically folds
them into its model's :class:`~repro.core.patterns.PatternLibrary` via
:meth:`~repro.core.patterns.PatternLibrary.partial_fit_arrays` — no second
forward pass, Welford-merged statistics equivalent to a full refit.

Every applied update is snapshotted through an artifact registry (duck-typed:
anything with ``register(name, morph, metadata=...)``, in practice
:class:`repro.serve.ArtifactRegistry`) as a **new immutable version**.  The
serving layer keeps resolving ``version=None`` to the latest snapshot, so an
update rolls forward automatically — and rolling *back* after a bad update is
a one-line resolve of the previous version, whose artifact bytes were never
touched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from ..core.diagnosis import DeepMorph
from ..obs import span as obs_span

__all__ = ["PatternUpdater", "UpdateResult", "RegistryLike"]


class RegistryLike(Protocol):
    """The one registry method the updater needs (keeps monitor cycle-free)."""

    def register(
        self, name: str, morph: DeepMorph, version: Optional[str] = None,
        metadata: Optional[Dict] = None,
    ) -> object: ...


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one applied pattern update."""

    model: str
    cases: int
    classes: Tuple[int, ...]
    registered: Optional[Dict]  # manifest record of the snapshot, if registered
    applied_at: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "cases": self.cases,
            "classes": list(self.classes),
            "registered": self.registered,
            "applied_at": self.applied_at,
        }


class PatternUpdater:
    """Buffer labeled observations; periodically ``partial_fit`` + snapshot.

    The updater owns its *own* :class:`DeepMorph` instance (typically loaded
    fresh from the registry), never the one the serving layer is answering
    requests with — serving state (cached per-model contexts, footprint
    caches) stays immutable, and an update only becomes visible by
    registering a new artifact version.

    Parameters
    ----------
    morph:
        The fitted DeepMorph whose pattern library absorbs the updates.
    name:
        Registry name updates are snapshotted under.
    registry:
        Optional registry the snapshots are registered with; ``None`` keeps
        updates in-memory only.
    min_cases:
        :meth:`maybe_apply` folds the buffer once it holds at least this
        many labeled cases.
    max_buffer_cases:
        Hard bound on buffered cases; beyond it the oldest chunks are
        discarded (counted in :attr:`discarded_total`).
    """

    def __init__(
        self,
        morph: DeepMorph,
        name: str,
        registry: Optional[RegistryLike] = None,
        min_cases: int = 256,
        max_buffer_cases: int = 65536,
    ) -> None:
        if min_cases < 1:
            raise ValueError(f"min_cases must be >= 1, got {min_cases}")
        if max_buffer_cases < min_cases:
            raise ValueError(
                f"max_buffer_cases ({max_buffer_cases}) must be >= min_cases ({min_cases})"
            )
        self.morph = morph
        self.name = name
        self.registry = registry
        self.min_cases = int(min_cases)
        self.max_buffer_cases = int(max_buffer_cases)
        self._lock = threading.Lock()
        self._chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._pending = 0
        self.discarded_total = 0
        self.applied_total = 0
        self.cases_applied_total = 0
        self.last_result: Optional[UpdateResult] = None

    # -- buffering ----------------------------------------------------------------

    def add(
        self, trajectories: np.ndarray, final_probs: np.ndarray, labels: np.ndarray
    ) -> int:
        """Buffer one labeled chunk; returns the pending case count."""
        trajectories = np.asarray(trajectories)
        final_probs = np.asarray(final_probs)
        labels = np.asarray(labels).reshape(-1)
        rows = int(labels.shape[0])
        if rows == 0:
            return self._pending
        with self._lock:
            self._chunks.append((trajectories.copy(), final_probs.copy(), labels.copy()))
            self._pending += rows
            while self._pending > self.max_buffer_cases and len(self._chunks) > 1:
                oldest = self._chunks.pop(0)
                dropped = int(oldest[2].shape[0])
                self._pending -= dropped
                self.discarded_total += dropped
            return self._pending

    @property
    def pending_cases(self) -> int:
        return int(self._pending)

    def ready(self) -> bool:
        """Whether the buffer holds enough cases for an update."""
        return self._pending >= self.min_cases

    # -- applying -----------------------------------------------------------------

    def maybe_apply(self, metadata: Optional[Dict] = None) -> Optional[UpdateResult]:
        """Apply the buffered update if :meth:`ready`, else do nothing."""
        if not self.ready():
            return None
        return self.apply(metadata=metadata)

    def apply(self, metadata: Optional[Dict] = None) -> Optional[UpdateResult]:
        """Fold the buffered cases into the library and snapshot the artifact.

        Returns ``None`` when the buffer is empty.  The registry write (when
        configured) happens outside the buffer lock but inside the updater's
        application path, so concurrent ``apply`` calls serialize on the
        buffer swap and each snapshot sees a consistent library.
        """
        with self._lock:
            if not self._chunks:
                return None
            chunks, self._chunks = self._chunks, []
            self._pending = 0
        if len(chunks) == 1:
            trajectories, final_probs, labels = chunks[0]
        else:
            trajectories = np.concatenate([c[0] for c in chunks], axis=0)
            final_probs = np.concatenate([c[1] for c in chunks], axis=0)
            labels = np.concatenate([c[2] for c in chunks], axis=0)
        with obs_span(
            "monitor.update", {"model": self.name, "cases": int(labels.shape[0])}
        ):
            library = self.morph.patterns
            library.partial_fit_arrays(trajectories, final_probs, labels)
            classes = tuple(int(c) for c in np.unique(labels) if c in library.patterns)
            registered: Optional[Dict] = None
            if self.registry is not None:
                manifest = {
                    "monitor": {
                        "kind": "partial_fit",
                        "cases": int(labels.shape[0]),
                        "classes": list(classes),
                    }
                }
                manifest.update(metadata or {})
                record = self.registry.register(self.name, self.morph, metadata=manifest)
                as_dict = getattr(record, "as_dict", None)
                registered = as_dict() if callable(as_dict) else None
        result = UpdateResult(
            model=self.name,
            cases=int(labels.shape[0]),
            classes=classes,
            registered=registered,
            applied_at=time.time(),
        )
        with self._lock:
            self.applied_total += 1
            self.cases_applied_total += result.cases
            self.last_result = result
        return result

    def stats(self) -> Dict[str, object]:
        """Counters and the last result for ``/monitor`` payloads."""
        with self._lock:
            return {
                "model": self.name,
                "pending_cases": int(self._pending),
                "min_cases": self.min_cases,
                "applied_total": self.applied_total,
                "cases_applied_total": self.cases_applied_total,
                "discarded_total": self.discarded_total,
                "last_result": self.last_result.as_dict() if self.last_result else None,
            }
