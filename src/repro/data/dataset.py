"""Dataset abstractions.

A :class:`Dataset` is an indexable collection of ``(input, label)`` pairs
with a known class count.  :class:`ArrayDataset` (numpy-array backed) is the
concrete type used throughout the library; views (:class:`Subset`) and
combinators (:func:`concat_datasets`, :func:`train_test_split`,
:func:`stratified_split`) build the training/production splits the DeepMorph
experiments need without copying image data.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DatasetError, ShapeError
from ..rng import RngLike, ensure_rng

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "concat_datasets",
    "train_test_split",
    "stratified_split",
    "class_counts",
    "class_indices",
]


class Dataset:
    """Abstract indexable dataset of ``(input, label)`` pairs."""

    @property
    def num_classes(self) -> int:
        raise NotImplementedError

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Shape of a single input, excluding the batch dimension."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize the whole dataset as ``(inputs, labels)`` arrays."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tuple[np.ndarray, int]]:
        for i in range(len(self)):
            yield self[i]


class ArrayDataset(Dataset):
    """Dataset backed by in-memory numpy arrays.

    Parameters
    ----------
    inputs:
        Array of shape ``(n, ...)``.
    labels:
        Integer array of shape ``(n,)`` with values in ``[0, num_classes)``.
    num_classes:
        Total number of classes.  Must be given explicitly (it cannot be
        inferred reliably from labels when a defect removed whole classes).
    class_names:
        Optional human-readable names, one per class.
    name:
        Dataset name used in reports.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        num_classes: int,
        class_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
    ):
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
        if inputs.shape[0] != labels.shape[0]:
            raise ShapeError(
                f"inputs and labels disagree on size: {inputs.shape[0]} vs {labels.shape[0]}"
            )
        if num_classes <= 0:
            raise DatasetError(f"num_classes must be positive, got {num_classes}")
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise DatasetError(
                f"labels must lie in [0, {num_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        if class_names is not None and len(class_names) != num_classes:
            raise DatasetError(
                f"class_names has {len(class_names)} entries but num_classes={num_classes}"
            )

        self._inputs = inputs
        self._labels = labels.astype(np.int64)
        self._num_classes = int(num_classes)
        self.class_names = list(class_names) if class_names is not None else [
            str(i) for i in range(num_classes)
        ]
        self.name = name

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return tuple(self._inputs.shape[1:])

    @property
    def inputs(self) -> np.ndarray:
        return self._inputs

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    def __len__(self) -> int:
        return int(self._inputs.shape[0])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self._inputs[index], int(self._labels[index])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._inputs, self._labels

    def select(self, indices: np.ndarray, name: Optional[str] = None) -> "ArrayDataset":
        """A new dataset containing only the rows at ``indices`` (copies)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(
            self._inputs[indices],
            self._labels[indices],
            self._num_classes,
            class_names=self.class_names,
            name=name or f"{self.name}[selected]",
        )

    def with_labels(self, labels: np.ndarray, name: Optional[str] = None) -> "ArrayDataset":
        """A new dataset with the same inputs and replaced labels (used by UTD injection)."""
        return ArrayDataset(
            self._inputs,
            np.asarray(labels),
            self._num_classes,
            class_names=self.class_names,
            name=name or f"{self.name}[relabeled]",
        )

    def __repr__(self) -> str:
        return (
            f"ArrayDataset(name={self.name!r}, n={len(self)}, "
            f"input_shape={self.input_shape}, classes={self.num_classes})"
        )


class Subset(Dataset):
    """A zero-copy view of a subset of another dataset."""

    def __init__(self, base: Dataset, indices: Sequence[int], name: Optional[str] = None):
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(base)):
            raise DatasetError(
                f"subset indices out of range for dataset of size {len(base)}"
            )
        self.base = base
        self.indices = indices
        self.name = name or f"subset({getattr(base, 'name', 'dataset')})"

    @property
    def num_classes(self) -> int:
        return self.base.num_classes

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.base.input_shape

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.base[int(self.indices[index])]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        inputs, labels = self.base.arrays()
        return inputs[self.indices], labels[self.indices]


def concat_datasets(datasets: Sequence[ArrayDataset], name: str = "concat") -> ArrayDataset:
    """Concatenate array datasets with identical shape and class count."""
    if not datasets:
        raise DatasetError("cannot concatenate an empty list of datasets")
    first = datasets[0]
    for ds in datasets[1:]:
        if ds.input_shape != first.input_shape:
            raise DatasetError(
                f"input shapes differ: {ds.input_shape} vs {first.input_shape}"
            )
        if ds.num_classes != first.num_classes:
            raise DatasetError(
                f"class counts differ: {ds.num_classes} vs {first.num_classes}"
            )
    inputs = np.concatenate([ds.inputs for ds in datasets], axis=0)
    labels = np.concatenate([ds.labels for ds in datasets], axis=0)
    return ArrayDataset(inputs, labels, first.num_classes, class_names=first.class_names, name=name)


def class_indices(labels: np.ndarray, num_classes: int) -> Dict[int, np.ndarray]:
    """Map each class id to the indices of its examples."""
    labels = np.asarray(labels)
    return {c: np.nonzero(labels == c)[0] for c in range(num_classes)}


def class_counts(dataset: Dataset) -> np.ndarray:
    """Number of examples per class."""
    _, labels = dataset.arrays()
    counts = np.zeros(dataset.num_classes, dtype=np.int64)
    for c in range(dataset.num_classes):
        counts[c] = int(np.sum(labels == c))
    return counts


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: RngLike = None,
    shuffle: bool = True,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Random train/test split.

    Raises :class:`~repro.exceptions.DatasetError` if either side would be empty.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    n = len(dataset)
    n_test = int(round(n * test_fraction))
    if n_test == 0 or n_test == n:
        raise DatasetError(
            f"split of {n} examples with test_fraction={test_fraction} produces an empty side"
        )
    indices = np.arange(n)
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    return (
        dataset.select(train_idx, name=f"{dataset.name}[train]"),
        dataset.select(test_idx, name=f"{dataset.name}[test]"),
    )


def stratified_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: RngLike = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Train/test split that preserves the per-class proportions."""
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    generator = ensure_rng(rng)
    _, labels = dataset.arrays()
    train_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for c, idx in class_indices(labels, dataset.num_classes).items():
        if idx.size == 0:
            continue
        shuffled = idx.copy()
        generator.shuffle(shuffled)
        n_test = int(round(idx.size * test_fraction))
        n_test = min(max(n_test, 1), idx.size - 1) if idx.size > 1 else 0
        test_parts.append(shuffled[:n_test])
        train_parts.append(shuffled[n_test:])
    train_idx = np.concatenate(train_parts) if train_parts else np.array([], dtype=np.int64)
    test_idx = np.concatenate(test_parts) if test_parts else np.array([], dtype=np.int64)
    if train_idx.size == 0 or test_idx.size == 0:
        raise DatasetError("stratified split produced an empty side")
    generator.shuffle(train_idx)
    generator.shuffle(test_idx)
    return (
        dataset.select(train_idx, name=f"{dataset.name}[train]"),
        dataset.select(test_idx, name=f"{dataset.name}[test]"),
    )
