"""Input transforms (normalization, augmentation, corruption).

Transforms operate on batches of NCHW images and return new arrays.  They are
used for preprocessing (``Normalize``), light augmentation during synthetic
dataset generation, and distribution-shift simulation in the ITD experiments
(``GaussianNoise``, ``RandomTranslation``).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..rng import RngLike, ensure_rng

__all__ = [
    "Transform",
    "Compose",
    "Normalize",
    "GaussianNoise",
    "RandomHorizontalFlip",
    "RandomTranslation",
    "Cutout",
    "PerImageStandardize",
]


class Transform:
    """Base class of batch transforms."""

    def __call__(self, images: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class Compose(Transform):
    """Apply several transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms: List[Transform] = list(transforms)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images)
        return images


def _check_nchw(images: np.ndarray) -> np.ndarray:
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ShapeError(f"transforms expect NCHW batches, got shape {images.shape}")
    return images


class Normalize(Transform):
    """Channel-wise ``(x - mean) / std`` normalization."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        mean = np.asarray(mean, dtype=np.float64)
        std = np.asarray(std, dtype=np.float64)
        if mean.shape != std.shape:
            raise ConfigurationError(f"mean and std shapes differ: {mean.shape} vs {std.shape}")
        if np.any(std <= 0):
            raise ConfigurationError("std must be strictly positive")
        self.mean = mean
        self.std = std

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        if images.shape[1] != self.mean.shape[0]:
            raise ShapeError(
                f"Normalize built for {self.mean.shape[0]} channels, got {images.shape[1]}"
            )
        return (images - self.mean[None, :, None, None]) / self.std[None, :, None, None]


class PerImageStandardize(Transform):
    """Standardize each image to zero mean and unit variance."""

    def __init__(self, eps: float = 1e-8):
        self.eps = float(eps)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        mean = images.mean(axis=(1, 2, 3), keepdims=True)
        std = images.std(axis=(1, 2, 3), keepdims=True)
        return (images - mean) / (std + self.eps)


class GaussianNoise(Transform):
    """Add i.i.d. Gaussian pixel noise."""

    def __init__(self, std: float = 0.05, rng: RngLike = None):
        if std < 0:
            raise ConfigurationError(f"std must be non-negative, got {std}")
        self.std = float(std)
        self._rng = ensure_rng(rng)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        if self.std == 0:
            return images.copy()
        return images + self._rng.normal(0.0, self.std, size=images.shape)


class RandomHorizontalFlip(Transform):
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, rng: RngLike = None):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must lie in [0, 1], got {p}")
        self.p = float(p)
        self._rng = ensure_rng(rng)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images).copy()
        flips = self._rng.random(images.shape[0]) < self.p
        images[flips] = images[flips, :, :, ::-1]
        return images


class RandomTranslation(Transform):
    """Shift each image by up to ``max_shift`` pixels in each direction (zero fill)."""

    def __init__(self, max_shift: int = 2, rng: RngLike = None):
        if max_shift < 0:
            raise ConfigurationError(f"max_shift must be non-negative, got {max_shift}")
        self.max_shift = int(max_shift)
        self._rng = ensure_rng(rng)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images)
        if self.max_shift == 0:
            return images.copy()
        out = np.zeros_like(images)
        shifts = self._rng.integers(-self.max_shift, self.max_shift + 1, size=(images.shape[0], 2))
        h, w = images.shape[2], images.shape[3]
        for i, (dy, dx) in enumerate(shifts):
            src_y = slice(max(0, -dy), min(h, h - dy))
            dst_y = slice(max(0, dy), min(h, h + dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = images[i, :, src_y, src_x]
        return out


class Cutout(Transform):
    """Zero out a random square patch of each image."""

    def __init__(self, size: int = 4, rng: RngLike = None):
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size}")
        self.size = int(size)
        self._rng = ensure_rng(rng)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = _check_nchw(images).copy()
        h, w = images.shape[2], images.shape[3]
        for i in range(images.shape[0]):
            cy = int(self._rng.integers(0, h))
            cx = int(self._rng.integers(0, w))
            y0, y1 = max(0, cy - self.size // 2), min(h, cy + self.size // 2 + 1)
            x0, x1 = max(0, cx - self.size // 2), min(w, cx + self.size // 2 + 1)
            images[i, :, y0:y1, x0:x1] = 0.0
        return images
