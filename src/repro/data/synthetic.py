"""Synthetic image-classification datasets.

The paper evaluates on MNIST and CIFAR-10.  Those corpora are not available in
this offline environment, so this module provides parametric synthetic
replacements (see DESIGN.md, "Reproduction strategy and substitutions"):

* Every class is defined by a small set of **prototype templates** — images
  composed of class-specific Gaussian blobs and oriented bars.  Templates give
  the class a learnable, spatially-structured signature (what digit strokes /
  object shapes provide in the real datasets).
* Every sample is a randomly chosen template with per-sample jitter: random
  translation, intensity scaling, occlusion, and pixel noise.  Jitter creates
  genuine intra-class variability, which is what makes the three injected
  defects behave like they do on real data:

  - removing training data of a class (ITD) leaves parts of that class's
    variability unseen, so production inputs from the class get misclassified;
  - mislabeling part of a class (UTD) teaches the network a systematic wrong
    mapping for that region of input space;
  - removing convolution layers (SD) removes the capacity needed to extract
    the spatial signatures at all.

``SyntheticMNIST`` (1×14×14 by default) and ``SyntheticCIFAR`` (3×16×16 by
default) mirror the two corpora used in the paper; both have 10 classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng, spawn
from .dataset import ArrayDataset

__all__ = [
    "SyntheticConfig",
    "SyntheticImageClassification",
    "SyntheticMNIST",
    "SyntheticCIFAR",
    "make_prototypes",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of a synthetic image-classification task.

    Attributes
    ----------
    num_classes:
        Number of target classes (10 for both paper datasets).
    image_size:
        Side length of the square images.
    channels:
        1 for MNIST-like grayscale, 3 for CIFAR-like color.
    templates_per_class:
        Number of distinct prototype templates per class (intra-class modes).
    blobs_per_template:
        Number of Gaussian blobs composing each template.
    bars_per_template:
        Number of oriented bars composing each template.
    noise_std:
        Standard deviation of additive pixel noise.
    max_shift:
        Maximum per-sample translation in pixels.
    intensity_jitter:
        Half-width of the multiplicative intensity jitter interval.
    distractor_bars:
        Number of class-independent clutter bars drawn at random positions in
        every sample.  Clutter makes the task require genuine spatial feature
        extraction (a structurally weak model cannot ignore it), which is what
        keeps the structure-defect experiments meaningful.
    distractor_amplitude:
        Intensity of the clutter bars relative to the class strokes.
    seed:
        Seed that fixes the class prototypes (sampling uses a separate RNG).
    """

    num_classes: int = 10
    image_size: int = 14
    channels: int = 1
    templates_per_class: int = 3
    blobs_per_template: int = 3
    bars_per_template: int = 2
    noise_std: float = 0.10
    max_shift: int = 2
    intensity_jitter: float = 0.25
    distractor_bars: int = 1
    distractor_amplitude: float = 0.35
    seed: int = 2021

    def __post_init__(self):
        if self.num_classes < 2:
            raise ConfigurationError(f"need at least 2 classes, got {self.num_classes}")
        if self.image_size < 8:
            raise ConfigurationError(f"image_size must be >= 8, got {self.image_size}")
        if self.channels not in (1, 3):
            raise ConfigurationError(f"channels must be 1 or 3, got {self.channels}")
        if self.templates_per_class < 1:
            raise ConfigurationError("templates_per_class must be >= 1")
        if self.blobs_per_template < 0 or self.bars_per_template < 0:
            raise ConfigurationError("blob/bar counts must be non-negative")
        if self.blobs_per_template + self.bars_per_template == 0:
            raise ConfigurationError("templates need at least one blob or bar")
        if self.noise_std < 0:
            raise ConfigurationError(f"noise_std must be non-negative, got {self.noise_std}")
        if self.max_shift < 0:
            raise ConfigurationError(f"max_shift must be non-negative, got {self.max_shift}")
        if not 0.0 <= self.intensity_jitter < 1.0:
            raise ConfigurationError(
                f"intensity_jitter must lie in [0, 1), got {self.intensity_jitter}"
            )
        if self.distractor_bars < 0:
            raise ConfigurationError(
                f"distractor_bars must be non-negative, got {self.distractor_bars}"
            )
        if self.distractor_amplitude < 0:
            raise ConfigurationError(
                f"distractor_amplitude must be non-negative, got {self.distractor_amplitude}"
            )


def _draw_blob(canvas: np.ndarray, cy: float, cx: float, sigma: float, amplitude: float) -> None:
    """Add a Gaussian blob to a 2-D canvas in place."""
    size = canvas.shape[0]
    ys, xs = np.mgrid[0:size, 0:size]
    canvas += amplitude * np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * sigma ** 2))


def _draw_bar(
    canvas: np.ndarray, cy: float, cx: float, angle: float, length: float,
    thickness: float, amplitude: float,
) -> None:
    """Add an oriented soft-edged bar to a 2-D canvas in place."""
    size = canvas.shape[0]
    ys, xs = np.mgrid[0:size, 0:size]
    dy, dx = ys - cy, xs - cx
    along = dy * np.sin(angle) + dx * np.cos(angle)
    across = -dy * np.cos(angle) + dx * np.sin(angle)
    mask = np.exp(-(across ** 2) / (2.0 * thickness ** 2)) * (np.abs(along) <= length / 2.0)
    canvas += amplitude * mask


def make_prototypes(config: SyntheticConfig) -> np.ndarray:
    """Build the class prototype templates for ``config``.

    Returns an array of shape
    ``(num_classes, templates_per_class, channels, image_size, image_size)``
    with values roughly in ``[0, 1]``.  Prototypes are a pure function of the
    config (including its seed), so train and production splits generated from
    the same config share the same class definitions.
    """
    rng = ensure_rng(config.seed)
    size = config.image_size
    prototypes = np.zeros(
        (config.num_classes, config.templates_per_class, config.channels, size, size),
        dtype=np.float64,
    )

    for cls in range(config.num_classes):
        # Class identity: the *positions/orientations* of its strokes.
        class_rng = ensure_rng(int(rng.integers(0, 2**31 - 1)))
        blob_centers = class_rng.uniform(size * 0.2, size * 0.8,
                                         size=(config.blobs_per_template, 2))
        bar_params = class_rng.uniform(0, 1, size=(config.bars_per_template, 4))
        channel_weights = class_rng.uniform(0.35, 1.0, size=(config.channels,))

        for tpl in range(config.templates_per_class):
            tpl_rng = ensure_rng(int(class_rng.integers(0, 2**31 - 1)))
            canvas = np.zeros((size, size), dtype=np.float64)

            for b in range(config.blobs_per_template):
                jitter = tpl_rng.uniform(-1.0, 1.0, size=2)
                cy, cx = blob_centers[b] + jitter
                sigma = tpl_rng.uniform(size * 0.07, size * 0.14)
                _draw_blob(canvas, cy, cx, sigma, amplitude=1.0)

            for b in range(config.bars_per_template):
                py, px, pangle, plen = bar_params[b]
                cy = size * (0.25 + 0.5 * py) + tpl_rng.uniform(-1.0, 1.0)
                cx = size * (0.25 + 0.5 * px) + tpl_rng.uniform(-1.0, 1.0)
                angle = pangle * np.pi + tpl_rng.uniform(-0.15, 0.15)
                length = size * (0.3 + 0.4 * plen)
                _draw_bar(canvas, cy, cx, angle, length,
                          thickness=size * 0.05, amplitude=0.9)

            peak = canvas.max()
            if peak > 0:
                canvas = canvas / peak

            for ch in range(config.channels):
                prototypes[cls, tpl, ch] = canvas * channel_weights[ch]

    return prototypes


class SyntheticImageClassification:
    """Sampler for a synthetic image-classification task.

    The generator owns the class prototypes (fixed by the config seed) and
    produces arbitrarily many i.i.d. samples from them.
    """

    def __init__(self, config: SyntheticConfig):
        self.config = config
        self.prototypes = make_prototypes(config)

    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.config.channels, self.config.image_size, self.config.image_size)

    def sample_class(self, cls: int, n: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` samples of class ``cls`` as an ``(n, C, H, W)`` array."""
        if not 0 <= cls < self.num_classes:
            raise ConfigurationError(
                f"class {cls} out of range for {self.num_classes} classes"
            )
        if n < 0:
            raise ConfigurationError(f"cannot sample a negative count: {n}")
        cfg = self.config
        generator = ensure_rng(rng)
        size = cfg.image_size
        out = np.zeros((n, cfg.channels, size, size), dtype=np.float64)

        for i in range(n):
            tpl = int(generator.integers(0, cfg.templates_per_class))
            image = self.prototypes[cls, tpl].copy()

            # Per-sample translation.
            if cfg.max_shift > 0:
                dy = int(generator.integers(-cfg.max_shift, cfg.max_shift + 1))
                dx = int(generator.integers(-cfg.max_shift, cfg.max_shift + 1))
                image = np.roll(np.roll(image, dy, axis=1), dx, axis=2)

            # Class-independent clutter bars: present in every class, so they
            # carry no label information and must be ignored by the model.
            for _ in range(cfg.distractor_bars):
                clutter = np.zeros((size, size), dtype=np.float64)
                _draw_bar(
                    clutter,
                    cy=float(generator.uniform(0.15 * size, 0.85 * size)),
                    cx=float(generator.uniform(0.15 * size, 0.85 * size)),
                    angle=float(generator.uniform(0.0, np.pi)),
                    length=size * float(generator.uniform(0.25, 0.5)),
                    thickness=size * 0.04,
                    amplitude=cfg.distractor_amplitude,
                )
                image = image + clutter[None, :, :]

            # Per-sample intensity scaling.
            if cfg.intensity_jitter > 0:
                scale = 1.0 + generator.uniform(-cfg.intensity_jitter, cfg.intensity_jitter)
                image = image * scale

            # Pixel noise.
            if cfg.noise_std > 0:
                image = image + generator.normal(0.0, cfg.noise_std, size=image.shape)

            out[i] = np.clip(image, 0.0, 1.5)

        return out

    def sample(
        self, n_per_class: int, rng: RngLike = None, shuffle: bool = True, name: str = "synthetic"
    ) -> ArrayDataset:
        """Draw a balanced dataset with ``n_per_class`` samples of every class."""
        if n_per_class <= 0:
            raise ConfigurationError(f"n_per_class must be positive, got {n_per_class}")
        generator = ensure_rng(rng)
        class_rngs = spawn(generator, self.num_classes)

        inputs: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for cls in range(self.num_classes):
            inputs.append(self.sample_class(cls, n_per_class, rng=class_rngs[cls]))
            labels.append(np.full(n_per_class, cls, dtype=np.int64))

        x = np.concatenate(inputs, axis=0)
        y = np.concatenate(labels, axis=0)
        if shuffle:
            order = np.arange(x.shape[0])
            generator.shuffle(order)
            x, y = x[order], y[order]
        return ArrayDataset(x, y, self.num_classes, name=name)

    def splits(
        self,
        n_train_per_class: int,
        n_test_per_class: int,
        rng: RngLike = None,
        name: str = "synthetic",
    ) -> Tuple[ArrayDataset, ArrayDataset]:
        """Independent training and production (test) splits from the same prototypes."""
        generator = ensure_rng(rng)
        train_rng, test_rng = spawn(generator, 2)
        train = self.sample(n_train_per_class, rng=train_rng, name=f"{name}-train")
        test = self.sample(n_test_per_class, rng=test_rng, name=f"{name}-test")
        return train, test


class SyntheticMNIST(SyntheticImageClassification):
    """Synthetic stand-in for MNIST: 10 classes of grayscale stroke images."""

    def __init__(
        self,
        image_size: int = 14,
        templates_per_class: int = 4,
        noise_std: float = 0.10,
        max_shift: int = 2,
        distractor_bars: int = 1,
        distractor_amplitude: float = 0.28,
        seed: int = 2021,
    ):
        super().__init__(SyntheticConfig(
            num_classes=10,
            image_size=image_size,
            channels=1,
            templates_per_class=templates_per_class,
            blobs_per_template=2,
            bars_per_template=3,
            noise_std=noise_std,
            max_shift=max_shift,
            distractor_bars=distractor_bars,
            distractor_amplitude=distractor_amplitude,
            seed=seed,
        ))


class SyntheticCIFAR(SyntheticImageClassification):
    """Synthetic stand-in for CIFAR-10: 10 classes of colored blob/bar images."""

    def __init__(
        self,
        image_size: int = 16,
        templates_per_class: int = 4,
        noise_std: float = 0.12,
        max_shift: int = 2,
        distractor_bars: int = 1,
        distractor_amplitude: float = 0.28,
        seed: int = 2021,
    ):
        super().__init__(SyntheticConfig(
            num_classes=10,
            image_size=image_size,
            channels=3,
            templates_per_class=templates_per_class,
            blobs_per_template=3,
            bars_per_template=2,
            noise_std=noise_std,
            max_shift=max_shift,
            distractor_bars=distractor_bars,
            distractor_amplitude=distractor_amplitude,
            seed=seed,
        ))
