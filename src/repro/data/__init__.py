"""Datasets, loaders, transforms, and synthetic corpus generators."""

from .dataset import (
    ArrayDataset,
    Dataset,
    Subset,
    class_counts,
    class_indices,
    concat_datasets,
    stratified_split,
    train_test_split,
)
from .loader import DataLoader, batch_iterator
from .synthetic import (
    SyntheticCIFAR,
    SyntheticConfig,
    SyntheticImageClassification,
    SyntheticMNIST,
    make_prototypes,
)
from .transforms import (
    Compose,
    Cutout,
    GaussianNoise,
    Normalize,
    PerImageStandardize,
    RandomHorizontalFlip,
    RandomTranslation,
    Transform,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "concat_datasets",
    "train_test_split",
    "stratified_split",
    "class_counts",
    "class_indices",
    "DataLoader",
    "batch_iterator",
    "SyntheticConfig",
    "SyntheticImageClassification",
    "SyntheticMNIST",
    "SyntheticCIFAR",
    "make_prototypes",
    "Transform",
    "Compose",
    "Normalize",
    "PerImageStandardize",
    "GaussianNoise",
    "RandomHorizontalFlip",
    "RandomTranslation",
    "Cutout",
]
