"""Mini-batch iteration over datasets."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..rng import RngLike, ensure_rng
from .dataset import Dataset

__all__ = ["DataLoader", "batch_iterator"]


def batch_iterator(
    inputs: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    shuffle: bool = False,
    rng: RngLike = None,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(inputs, labels)`` mini-batches from arrays.

    A functional alternative to :class:`DataLoader` for code that already has
    materialized arrays (e.g. probe training inside the instrumented model).
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    if inputs.shape[0] != labels.shape[0]:
        # Fancy indexing would silently truncate to the shorter array.
        raise ShapeError(
            f"inputs and labels disagree on length: "
            f"{inputs.shape[0]} vs {labels.shape[0]}"
        )
    n = inputs.shape[0]
    order = np.arange(n)
    if shuffle:
        ensure_rng(rng).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        if drop_last and idx.shape[0] < batch_size:
            break
        yield inputs[idx], labels[idx]


class DataLoader:
    """Iterate over a :class:`~repro.data.dataset.Dataset` in mini-batches.

    Each full iteration re-shuffles (when ``shuffle=True``) with an
    independent draw from the loader's own generator, so epochs differ but the
    whole sequence is reproducible from the seed.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: RngLike = None,
    ):
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = ensure_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        inputs, labels = self.dataset.arrays()
        yield from batch_iterator(
            inputs,
            labels,
            self.batch_size,
            shuffle=self.shuffle,
            rng=self._rng,
            drop_last=self.drop_last,
        )

    def __repr__(self) -> str:
        return (
            f"DataLoader(dataset={getattr(self.dataset, 'name', 'dataset')!r}, "
            f"batch_size={self.batch_size}, shuffle={self.shuffle})"
        )
