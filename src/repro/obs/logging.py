"""Structured JSON logging stamped with trace/span/request identity.

Every record formatted by :class:`JsonLogFormatter` is one JSON object with
the active ``trace_id``/``span_id``/``request_id`` (when bound in the
emitting context) plus any extras passed via ``logger.info(..., extra={
"fields": {...}})``.  That makes log lines joinable against exported spans:
grep a request id in the JSONL trace and the log stream and you see the same
request from both sides.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Dict, Optional

from .trace import current_request_id, current_span

__all__ = ["JsonLogFormatter", "get_logger", "configure_logging"]

_LOGGER_PREFIX = "repro"


class JsonLogFormatter(logging.Formatter):
    """Formats records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = current_span()
        if span is not None and span.is_recording:
            payload["trace_id"] = span.trace_id
            payload["span_id"] = span.span_id
        request_id = current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                payload.setdefault(str(key), value)
        if record.exc_info and record.exc_info[1] is not None:
            error = record.exc_info[1]
            payload["error"] = f"{type(error).__name__}: {error}"
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("serve.gateway")``)."""
    if name.startswith(_LOGGER_PREFIX):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LOGGER_PREFIX}.{name}")


def configure_logging(
    level: int = logging.INFO, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install the JSON formatter on the ``repro`` root logger (idempotent).

    Replaces any handler this function previously installed rather than
    stacking duplicates, so tests and repeated CLI invocations stay clean.
    """
    root = logging.getLogger(_LOGGER_PREFIX)
    root.setLevel(level)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root


def log_event(logger: logging.Logger, message: str, **fields: object) -> None:
    """Emit an info record with structured ``fields`` (joinable on request id)."""
    logger.info(message, extra={"fields": dict(fields)})


__all__.append("log_event")
