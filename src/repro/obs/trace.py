"""Span-based tracing for the serving stack.

A request through the scale-out stack crosses an asyncio event loop, an
executor thread, the batching engine's drain thread, and (for remote callers)
a process boundary.  Aggregate metrics (:mod:`repro.serve.metrics`) say *how
much* time the stack spends; they cannot say *where one request's* time went.
This module provides the attribution layer:

* :class:`Span` — one timed stage of one request: monotonic wall time
  (``time.perf_counter``), thread CPU time (``time.thread_time``), free-form
  attributes, a status, and a parent link, grouped under a shared trace id.
* :class:`Tracer` — creates spans and fans finished spans out to exporters.
  **Disabled by default**: a disabled tracer returns a shared no-op span, so
  the cost of an un-traced callsite is one method call and one attribute
  check.
* ``contextvars`` propagation — the active span and the active request id
  live in context variables, so nesting works unchanged across ``await``
  boundaries and, via :func:`copy_context`, across executor threads.  Threads
  the library owns (the batching engine) cross the boundary explicitly by
  capturing :meth:`Tracer.current_context` at submit time.

The module is deliberately stdlib-only and imports nothing from the serving
stack, so every layer (core, serve, api, cli) can instrument itself without
import cycles.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from typing import Dict, List, Mapping, NamedTuple, Optional, Union

__all__ = [
    "SpanContext",
    "SpanStatus",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "current_span",
    "current_context",
    "new_request_id",
    "bind_request_id",
    "unbind_request_id",
    "current_request_id",
    "sanitize_trace_id",
]

AttributeValue = Union[str, int, float, bool, None]
Attributes = Dict[str, AttributeValue]

#: The innermost active span of the current execution context.
_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: The request id of the current execution context (set by the HTTP front
#: ends and the Diagnoser facade; stamped onto spans and structured logs).
_current_request_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)

_HEX = frozenset("0123456789abcdef")


class SpanContext(NamedTuple):
    """The minimal, immutable identity of a span (what crosses boundaries)."""

    trace_id: str
    span_id: str

    def header_value(self) -> str:
        """Wire form for the ``X-Trace-Parent`` header: ``<trace_id>-<span_id>``."""
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_header_value(cls, value: Optional[str]) -> "Optional[SpanContext]":
        """Parse an ``X-Trace-Parent`` header; ``None`` on anything malformed."""
        if not value:
            return None
        trace_id, separator, span_id = value.strip().lower().partition("-")
        if not separator:
            return None
        trace_id = sanitize_trace_id(trace_id)
        if trace_id is None or not span_id or len(span_id) > 32 or not set(span_id) <= _HEX:
            return None
        return cls(trace_id, span_id)


def sanitize_trace_id(value: Optional[str]) -> Optional[str]:
    """A client-supplied trace id, or ``None`` if it is unusable.

    Accepts lowercase hex up to 32 chars — the format this tracer generates —
    so a hostile header cannot inject log/JSON structure through the id.
    """
    if not value:
        return None
    candidate = value.strip().lower()
    if not candidate or len(candidate) > 32 or not set(candidate) <= _HEX:
        return None
    return candidate


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def new_request_id() -> str:
    """A fresh request id (16 hex chars; same alphabet as trace ids)."""
    return uuid.uuid4().hex[:16]


def bind_request_id(request_id: str) -> "contextvars.Token[Optional[str]]":
    """Bind the request id of the current context; returns the reset token."""
    return _current_request_id.set(str(request_id))


def unbind_request_id(token: "contextvars.Token[Optional[str]]") -> None:
    _current_request_id.reset(token)


def current_request_id() -> Optional[str]:
    """The request id bound to the current context, if any."""
    return _current_request_id.get()


def current_span() -> "Optional[Span]":
    """The innermost active span of the current context, if any."""
    return _current_span.get()


def current_context() -> Optional[SpanContext]:
    """The :class:`SpanContext` of the active span, or ``None``."""
    active = _current_span.get()
    return active.context() if active is not None else None


class SpanStatus:
    """Terminal statuses of a span (plain strings so exports stay JSON-native)."""

    UNSET = "unset"
    OK = "ok"
    ERROR = "error"


class Span:
    """One timed, attributed stage of one request.

    Spans are context managers: entering makes the span the context's current
    span (so children parent themselves automatically), exiting records any
    in-flight exception, stops both clocks, and exports the span.  Both
    clocks are monotonic — ``perf_counter`` for wall time, ``thread_time``
    for CPU time — so durations survive wall-clock jumps; ``start_time`` is
    a separate epoch timestamp kept for display only.
    """

    __slots__ = (
        "name",
        "kind",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "status",
        "error",
        "start_time",
        "start_monotonic",
        "duration_seconds",
        "cpu_seconds",
        "_tracer",
        "_start_cpu",
        "_token",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Optional[Mapping[str, AttributeValue]] = None,
        kind: str = "internal",
    ) -> None:
        self._tracer = tracer
        self.name = str(name)
        self.kind = str(kind)
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attributes: Attributes = dict(attributes) if attributes else {}
        request_id = _current_request_id.get()
        if request_id is not None and "request_id" not in self.attributes:
            self.attributes["request_id"] = request_id
        self.status = SpanStatus.UNSET
        self.error: Optional[str] = None
        self.start_time = time.time()
        self.start_monotonic = time.perf_counter()
        self._start_cpu = time.thread_time()
        self.duration_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self._finished = False

    # -- identity ----------------------------------------------------------------

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def is_recording(self) -> bool:
        return not self._finished

    # -- mutation ----------------------------------------------------------------

    def set_attribute(self, key: str, value: AttributeValue) -> "Span":
        self.attributes[str(key)] = value
        return self

    def set_attributes(self, attributes: Mapping[str, AttributeValue]) -> "Span":
        for key, value in attributes.items():
            self.attributes[str(key)] = value
        return self

    def record_error(self, error: BaseException) -> "Span":
        self.status = SpanStatus.ERROR
        self.error = f"{type(error).__name__}: {error}"
        return self

    def finish(self) -> None:
        """Stop the clocks, default the status to OK, and export (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self.duration_seconds = time.perf_counter() - self.start_monotonic
        # Thread CPU time is only meaningful when the span finishes on the
        # thread it started on (every context-managed span does).
        self.cpu_seconds = max(0.0, time.thread_time() - self._start_cpu)
        if self.status == SpanStatus.UNSET:
            self.status = SpanStatus.OK
        self._tracer._export(self)

    # -- context management ------------------------------------------------------

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc is not None and isinstance(exc, BaseException):
            self.record_error(exc)
        self.finish()

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-native record of a finished (or in-flight) span."""
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "start_monotonic": self.start_monotonic,
            "duration_seconds": self.duration_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        duration = (
            f", duration={self.duration_seconds * 1e3:.2f}ms"
            if self.duration_seconds is not None
            else ""
        )
        return f"Span({self.name!r}, trace={self.trace_id[:8]}{duration})"


class _NoopSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    name = ""
    kind = "noop"
    trace_id = ""
    span_id = ""
    parent_id = None
    attributes: Attributes = {}
    status = SpanStatus.UNSET
    error = None
    duration_seconds = None
    cpu_seconds = None
    is_recording = False

    def context(self) -> Optional[SpanContext]:
        return None

    def set_attribute(self, key: str, value: AttributeValue) -> "_NoopSpan":
        return self

    def set_attributes(self, attributes: Mapping[str, AttributeValue]) -> "_NoopSpan":
        return self

    def record_error(self, error: BaseException) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None

    def to_dict(self) -> Dict[str, object]:
        return {}

    def __repr__(self) -> str:
        return "Span(<noop>)"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and fans finished spans out to registered exporters.

    The process-wide instance (:func:`get_tracer`) starts **disabled**;
    :func:`repro.obs.configure` flips it on and installs exporters.  The
    enabled flag and the exporter list are mutated in place rather than the
    tracer being replaced, so components that captured the tracer (or call
    :func:`get_tracer` at request time) all observe reconfiguration.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._exporters: List[object] = []
        self._lock = threading.Lock()

    # -- exporters ---------------------------------------------------------------

    def add_exporter(self, exporter: object) -> bool:
        """Register an exporter; dedupes on ``dedupe_key`` (when present).

        Returns whether the exporter was added (``False`` when an exporter
        with the same non-None key is already registered).
        """
        key = getattr(exporter, "dedupe_key", None)
        with self._lock:
            if key is not None:
                for existing in self._exporters:
                    if getattr(existing, "dedupe_key", None) == key:
                        return False
            self._exporters.append(exporter)
            return True

    def exporters(self) -> List[object]:
        with self._lock:
            return list(self._exporters)

    def clear_exporters(self) -> None:
        with self._lock:
            doomed, self._exporters = self._exporters, []
        for exporter in doomed:
            close = getattr(exporter, "close", None)
            if callable(close):
                close()

    def flush(self) -> None:
        """Flush every exporter that supports it (JSONL files, notably)."""
        for exporter in self.exporters():
            flush = getattr(exporter, "flush", None)
            if callable(flush):
                flush()

    # -- span creation -----------------------------------------------------------

    def span(
        self,
        name: str,
        attributes: Optional[Mapping[str, AttributeValue]] = None,
        parent: Optional[SpanContext] = None,
        trace_id: Optional[str] = None,
        kind: str = "internal",
    ) -> Union[Span, _NoopSpan]:
        """Start a span (use as a context manager).

        Parent resolution: an explicit ``parent`` context wins (the batching
        engine crossing its thread boundary), then the context's current
        span, then a fresh root — optionally under a caller-supplied
        ``trace_id`` (an HTTP front end joining a client's trace).  Disabled
        tracers return the shared no-op span.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is not None:
            resolved_trace, parent_id = parent.trace_id, parent.span_id
        else:
            active = _current_span.get()
            if active is not None:
                resolved_trace, parent_id = active.trace_id, active.span_id
            else:
                resolved_trace, parent_id = trace_id or new_trace_id(), None
        return Span(self, name, resolved_trace, parent_id, attributes, kind=kind)

    def current_context(self) -> Optional[SpanContext]:
        """The active span's context (``None`` when disabled or outside a span)."""
        if not self.enabled:
            return None
        return current_context()

    # -- export ------------------------------------------------------------------

    def _export(self, finished: Span) -> None:
        record = finished.to_dict()
        for exporter in self.exporters():
            try:
                exporter.export(record)  # type: ignore[attr-defined]
            except Exception:  # noqa: BLE001,S110 - tracing must never break serving
                pass

    # -- operational views -------------------------------------------------------

    def debug_payload(self, recent: int = 20, slow: int = 10) -> Dict[str, object]:
        """The ``GET /debug/traces`` document: recent + slow-sampled traces."""
        payload: Dict[str, object] = {"enabled": self.enabled, "recent": [], "slow": []}
        for exporter in self.exporters():
            traces = getattr(exporter, "recent_traces", None)
            slow_traces = getattr(exporter, "slow_traces", None)
            if callable(traces) and callable(slow_traces):
                payload["recent"] = traces(recent)
                payload["slow"] = slow_traces(slow)
                break
        return payload

    def __repr__(self) -> str:
        return f"Tracer(enabled={self.enabled}, exporters={len(self.exporters())})"


#: The process-wide tracer every component uses by default.  Mutated (never
#: replaced) by :func:`repro.obs.configure`.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until :func:`repro.obs.configure`)."""
    return _GLOBAL_TRACER


def span(
    name: str,
    attributes: Optional[Mapping[str, AttributeValue]] = None,
    parent: Optional[SpanContext] = None,
    trace_id: Optional[str] = None,
    kind: str = "internal",
) -> Union[Span, _NoopSpan]:
    """Shorthand for ``get_tracer().span(...)`` (the common callsite form)."""
    return _GLOBAL_TRACER.span(
        name, attributes=attributes, parent=parent, trace_id=trace_id, kind=kind
    )
