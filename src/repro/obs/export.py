"""Span exporters: in-memory ring buffer, JSONL file, metrics bridge.

Exporters receive finished spans as plain dicts (:meth:`Span.to_dict`) so
they never hold live span objects and can serialize without touching the
tracer.  All three are thread-safe — spans finish on the event loop, on
executor threads, and on the batching engine's drain thread concurrently.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["InMemorySpanExporter", "JsonlSpanExporter", "MetricsSpanExporter"]

SpanRecord = Dict[str, object]


class InMemorySpanExporter:
    """Bounded ring buffer of completed traces, powering ``GET /debug/traces``.

    Spans arrive one at a time and out of order (children finish before the
    root).  They are buffered per ``trace_id`` until the trace *completes* —
    a root span (no parent) finishes, or a ``kind="request"`` server span
    finishes, which covers stitched cross-process traces whose server root
    has a client-side parent that will never be exported in this process.
    Completed traces land in a recent-ring; the slowest are additionally
    retained in a small top-K sample so a burst of fast requests cannot
    evict the outliers worth debugging.
    """

    def __init__(
        self,
        max_traces: int = 64,
        max_slow: int = 16,
        max_spans_per_trace: int = 512,
        max_pending_traces: int = 256,
    ) -> None:
        self.max_traces = int(max_traces)
        self.max_slow = int(max_slow)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self.max_pending_traces = int(max_pending_traces)
        self._lock = threading.Lock()
        self._pending: "Dict[str, List[SpanRecord]]" = {}
        self._recent: "Deque[Dict[str, object]]" = deque(maxlen=self.max_traces)
        self._slow: List[Tuple[float, Dict[str, object]]] = []

    # -- exporter protocol -------------------------------------------------------

    def export(self, record: SpanRecord) -> None:
        trace_id = record.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return
        with self._lock:
            bucket = self._pending.setdefault(trace_id, [])
            if len(bucket) < self.max_spans_per_trace:
                bucket.append(record)
            if record.get("parent_id") is None or record.get("kind") == "request":
                self._complete_locked(trace_id, record)
            elif len(self._pending) > self.max_pending_traces:
                # A trace whose root never finishes (crashed connection) must
                # not leak; drop the oldest pending bucket.
                oldest = next(iter(self._pending))
                if oldest != trace_id:
                    del self._pending[oldest]

    def _complete_locked(self, trace_id: str, root: SpanRecord) -> None:
        spans = self._pending.pop(trace_id, [])
        duration = root.get("duration_seconds")
        duration = float(duration) if isinstance(duration, (int, float)) else 0.0
        trace = {
            "trace_id": trace_id,
            "root": root.get("name"),
            "request_id": (root.get("attributes") or {}).get("request_id"),  # type: ignore[union-attr]
            "status": root.get("status"),
            "start_time": root.get("start_time"),
            "duration_seconds": duration,
            "num_spans": len(spans),
            "spans": spans,
        }
        self._recent.append(trace)
        self._slow.append((duration, trace))
        self._slow.sort(key=lambda item: item[0], reverse=True)
        del self._slow[self.max_slow :]

    # -- queries (used by Tracer.debug_payload) ----------------------------------

    def recent_traces(self, limit: int = 20) -> List[Dict[str, object]]:
        """Most recently completed traces, newest first."""
        with self._lock:
            traces = list(self._recent)
        return traces[::-1][: max(0, int(limit))]

    def slow_traces(self, limit: int = 10) -> List[Dict[str, object]]:
        """Slowest completed traces retained by the top-K sampler."""
        with self._lock:
            return [trace for _, trace in self._slow[: max(0, int(limit))]]

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def clear(self) -> None:
        with self._lock:
            self._pending.clear()
            self._recent.clear()
            self._slow.clear()


class JsonlSpanExporter:
    """Appends one JSON object per finished span to a file.

    The format is the input to ``repro-trace`` and the CI trace artifact.
    Lines are written under a lock and flushed per span so a crashed process
    still leaves a readable file.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")  # noqa: SIM115 - long-lived handle
        self._closed = False

    @property
    def dedupe_key(self) -> Tuple[str, str]:
        return ("jsonl", self.path)

    def export(self, record: SpanRecord) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()


class MetricsSpanExporter:
    """Derives per-stage latency histograms from spans into a metrics registry.

    Duck-typed over :class:`repro.serve.metrics.MetricsRegistry` (anything
    with ``histogram(name, description).observe(value)``) so :mod:`repro.obs`
    never imports the serving stack.  Every span named ``x.y`` feeds the
    histogram ``trace.x.y.seconds``, giving per-stage latency distributions
    for free wherever spans are placed.
    """

    def __init__(self, registry: object) -> None:
        self.registry = registry
        self._lock = threading.Lock()
        self._histograms: Dict[str, object] = {}

    @property
    def dedupe_key(self) -> Tuple[str, int]:
        return ("metrics", id(self.registry))

    def export(self, record: SpanRecord) -> None:
        name = record.get("name")
        duration = record.get("duration_seconds")
        if not isinstance(name, str) or not isinstance(duration, (int, float)):
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self.registry.histogram(  # type: ignore[attr-defined]
                    f"trace.{name}.seconds", f"span {name} wall time"
                )
                self._histograms[name] = histogram
        histogram.observe(float(duration))  # type: ignore[attr-defined]


def load_jsonl(path: str) -> List[SpanRecord]:
    """Read a JSONL trace file, skipping lines that fail to parse."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except ValueError:
                continue
            if isinstance(parsed, dict):
                records.append(parsed)
    return records


__all__.append("load_jsonl")
