"""repro.obs — tracing, per-stage profiling, and structured logs.

The observability layer for the serving stack (the instrumentation /
slow-control analogue of the reproduction):

* :mod:`repro.obs.trace` — ``Tracer``/``Span`` with monotonic wall + CPU
  clocks, ``contextvars`` propagation, and a near-zero-cost disabled path.
* :mod:`repro.obs.export` — bounded in-memory trace ring (``/debug/traces``),
  JSONL file export (``repro-trace``), and a bridge deriving per-stage
  latency histograms into a :class:`~repro.serve.metrics.MetricsRegistry`.
* :mod:`repro.obs.logging` — JSON log records stamped with the active
  trace/span/request ids.

Everything is off by default; call :func:`configure` (or pass ``--trace`` to
``repro-serve``) to turn the process-wide tracer on.
"""

from __future__ import annotations

import logging as _logging
from typing import Optional

from .export import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    MetricsSpanExporter,
    load_jsonl,
)
from .logging import JsonLogFormatter, configure_logging, get_logger, log_event
from .trace import (
    NOOP_SPAN,
    Span,
    SpanContext,
    SpanStatus,
    Tracer,
    bind_request_id,
    current_context,
    current_request_id,
    current_span,
    get_tracer,
    new_request_id,
    sanitize_trace_id,
    span,
    unbind_request_id,
)

__all__ = [
    "Span",
    "SpanContext",
    "SpanStatus",
    "Tracer",
    "NOOP_SPAN",
    "get_tracer",
    "span",
    "current_span",
    "current_context",
    "new_request_id",
    "bind_request_id",
    "unbind_request_id",
    "current_request_id",
    "sanitize_trace_id",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "MetricsSpanExporter",
    "load_jsonl",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
    "configure",
]


def configure(
    enabled: bool = True,
    jsonl_path: Optional[str] = None,
    metrics: Optional[object] = None,
    memory: bool = True,
    logs: bool = False,
    log_level: int = _logging.INFO,
    reset: bool = False,
) -> Tracer:
    """Configure the process-wide tracer in place and return it.

    The global tracer object is mutated, never replaced, so components that
    grabbed it before configuration observe the change.  ``reset=True`` first
    drops existing exporters (closing any open JSONL files) — tests use this
    to start clean.  ``metrics`` may be any registry with
    ``histogram(name, description).observe(value)``; exporters are deduped, so
    configuring twice with the same file path or registry is safe.
    """
    tracer = get_tracer()
    if reset:
        tracer.clear_exporters()
    tracer.enabled = bool(enabled)
    if enabled:
        has_memory = any(isinstance(e, InMemorySpanExporter) for e in tracer.exporters())
        if memory and not has_memory:
            tracer.add_exporter(InMemorySpanExporter())
        if jsonl_path:
            tracer.add_exporter(JsonlSpanExporter(jsonl_path))
        if metrics is not None:
            tracer.add_exporter(MetricsSpanExporter(metrics))
    if logs:
        configure_logging(level=log_level)
    return tracer
