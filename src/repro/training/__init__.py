"""Training loop, callbacks, and history."""

from .callbacks import Callback, EarlyStopping, EpochLogger, LambdaCallback, TargetAccuracyStopping
from .history import EpochRecord, History
from .trainer import Trainer, evaluate

__all__ = [
    "Trainer",
    "evaluate",
    "History",
    "EpochRecord",
    "Callback",
    "EarlyStopping",
    "TargetAccuracyStopping",
    "EpochLogger",
    "LambdaCallback",
]
