"""Training callbacks.

Callbacks observe the training loop: they receive the record of every finished
epoch and may request early termination.  They never mutate the model — that
keeps the trainer's control flow easy to reason about.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..exceptions import ConfigurationError
from .history import EpochRecord

__all__ = ["Callback", "EarlyStopping", "EpochLogger", "LambdaCallback", "TargetAccuracyStopping"]


class Callback:
    """Base class of training callbacks."""

    def on_train_begin(self) -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, record: EpochRecord) -> None:
        """Called after every epoch with that epoch's metrics."""

    def on_train_end(self) -> None:
        """Called once after the last epoch."""

    def should_stop(self) -> bool:
        """Whether training should terminate before the next epoch."""
        return False


class EarlyStopping(Callback):
    """Stop training when a monitored metric stops improving.

    Parameters
    ----------
    monitor:
        Metric name from :class:`~repro.training.history.EpochRecord`
        (``"val_loss"``, ``"train_loss"``, ``"val_accuracy"``, ...).
    patience:
        Number of consecutive non-improving epochs tolerated before stopping.
    mode:
        ``"min"`` for losses, ``"max"`` for accuracies.
    min_delta:
        Smallest change that counts as an improvement.
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 3,
        mode: str = "min",
        min_delta: float = 0.0,
    ):
        if patience < 0:
            raise ConfigurationError(f"patience must be non-negative, got {patience}")
        if mode not in ("min", "max"):
            raise ConfigurationError(f"mode must be 'min' or 'max', got {mode!r}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be non-negative, got {min_delta}")
        self.monitor = monitor
        self.patience = int(patience)
        self.mode = mode
        self.min_delta = float(min_delta)
        self._best: Optional[float] = None
        self._bad_epochs = 0
        self._stop = False

    def on_train_begin(self) -> None:
        self._best = None
        self._bad_epochs = 0
        self._stop = False

    def on_epoch_end(self, record: EpochRecord) -> None:
        value = record.as_dict().get(self.monitor)
        if value is None:
            return
        if self._best is None:
            self._best = value
            return
        improved = (
            value < self._best - self.min_delta
            if self.mode == "min"
            else value > self._best + self.min_delta
        )
        if improved:
            self._best = value
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
            if self._bad_epochs > self.patience:
                self._stop = True

    def should_stop(self) -> bool:
        return self._stop


class TargetAccuracyStopping(Callback):
    """Stop once training accuracy reaches a target (keeps CPU experiments short)."""

    def __init__(self, target: float = 0.99, monitor: str = "train_accuracy"):
        if not 0.0 < target <= 1.0:
            raise ConfigurationError(f"target must lie in (0, 1], got {target}")
        self.target = float(target)
        self.monitor = monitor
        self._stop = False

    def on_train_begin(self) -> None:
        self._stop = False

    def on_epoch_end(self, record: EpochRecord) -> None:
        value = record.as_dict().get(self.monitor)
        if value is not None and value >= self.target:
            self._stop = True

    def should_stop(self) -> bool:
        return self._stop


class EpochLogger(Callback):
    """Print a one-line summary of every epoch through a supplied print function."""

    def __init__(self, print_fn: Callable[[str], None] = print, every: int = 1):
        if every <= 0:
            raise ConfigurationError(f"every must be positive, got {every}")
        self.print_fn = print_fn
        self.every = int(every)

    def on_epoch_end(self, record: EpochRecord) -> None:
        if record.epoch % self.every != 0:
            return
        parts = [
            f"epoch {record.epoch:3d}",
            f"loss {record.train_loss:.4f}",
            f"acc {record.train_accuracy:.3f}",
        ]
        if record.val_loss is not None:
            parts.append(f"val_loss {record.val_loss:.4f}")
        if record.val_accuracy is not None:
            parts.append(f"val_acc {record.val_accuracy:.3f}")
        self.print_fn("  ".join(parts))


class LambdaCallback(Callback):
    """Adapter that turns plain functions into a callback."""

    def __init__(
        self,
        on_epoch_end: Optional[Callable[[EpochRecord], None]] = None,
        on_train_begin: Optional[Callable[[], None]] = None,
        on_train_end: Optional[Callable[[], None]] = None,
    ):
        self._on_epoch_end = on_epoch_end
        self._on_train_begin = on_train_begin
        self._on_train_end = on_train_end

    def on_train_begin(self) -> None:
        if self._on_train_begin is not None:
            self._on_train_begin()

    def on_epoch_end(self, record: EpochRecord) -> None:
        if self._on_epoch_end is not None:
            self._on_epoch_end(record)

    def on_train_end(self) -> None:
        if self._on_train_end is not None:
            self._on_train_end()
