"""Training history: per-epoch metric records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["EpochRecord", "History"]


@dataclass(frozen=True)
class EpochRecord:
    """Metrics observed during one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    val_loss: Optional[float] = None
    val_accuracy: Optional[float] = None
    learning_rate: Optional[float] = None

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "val_loss": self.val_loss,
            "val_accuracy": self.val_accuracy,
            "learning_rate": self.learning_rate,
        }


@dataclass
class History:
    """Ordered collection of :class:`EpochRecord` produced by a training run."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> EpochRecord:
        return self.records[index]

    @property
    def final(self) -> Optional[EpochRecord]:
        """The last epoch's record, or ``None`` if training never ran."""
        return self.records[-1] if self.records else None

    def metric(self, name: str) -> List[Optional[float]]:
        """The per-epoch series of one metric (``"train_loss"``, ``"val_accuracy"``, ...)."""
        return [record.as_dict()[name] for record in self.records]

    def best_epoch(self, metric: str = "val_accuracy", mode: str = "max") -> Optional[EpochRecord]:
        """The record with the best value of ``metric`` (ignoring missing values)."""
        candidates = [r for r in self.records if r.as_dict().get(metric) is not None]
        if not candidates:
            return None
        key = lambda r: r.as_dict()[metric]  # noqa: E731 - tiny accessor
        return max(candidates, key=key) if mode == "max" else min(candidates, key=key)

    def as_dicts(self) -> List[Dict[str, Optional[float]]]:
        """The whole history as a list of plain dictionaries (JSON-friendly)."""
        return [record.as_dict() for record in self.records]
