"""Mini-batch training loop for classifier models."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..data.loader import DataLoader
from ..exceptions import ConfigurationError, DatasetError
from ..nn.losses import Loss, SoftmaxCrossEntropy, get_loss
from ..nn.metrics import accuracy
from ..nn.module import Layer
from ..optim.optimizers import Optimizer, clip_gradients
from ..optim.schedules import Schedule
from ..rng import RngLike, ensure_rng
from .callbacks import Callback
from .history import EpochRecord, History

__all__ = ["Trainer", "evaluate"]


def evaluate(model, dataset: Dataset, batch_size: int = 256, loss: Optional[Loss] = None) -> Tuple[float, float]:
    """Return ``(loss, accuracy)`` of ``model`` on ``dataset`` in inference mode.

    ``model`` must expose ``predict_logits`` (every
    :class:`~repro.models.ClassifierModel` does).
    """
    if len(dataset) == 0:
        raise DatasetError("cannot evaluate on an empty dataset")
    loss = loss if loss is not None else SoftmaxCrossEntropy()
    inputs, labels = dataset.arrays()
    logits = model.predict_logits(inputs, batch_size=batch_size)
    return float(loss.forward(logits, labels)), accuracy(logits, labels)


class Trainer:
    """Trains a model with mini-batch gradient descent.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Layer` whose forward output are logits
        (in practice a :class:`~repro.models.ClassifierModel`).
    optimizer:
        The optimizer that owns the model's parameters.
    loss:
        Loss instance or registry name (default: fused softmax cross-entropy).
    schedule:
        Optional learning-rate schedule applied at the start of each epoch.
    grad_clip_norm:
        Optional global-norm gradient clipping.
    callbacks:
        Observers of the training loop (early stopping, logging, ...).
    rng:
        Seed or generator for batch shuffling.
    """

    def __init__(
        self,
        model: Layer,
        optimizer: Optimizer,
        loss: "str | Loss" = "cross_entropy",
        schedule: Optional[Schedule] = None,
        grad_clip_norm: Optional[float] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        rng: RngLike = None,
    ):
        if grad_clip_norm is not None and grad_clip_norm <= 0:
            raise ConfigurationError(f"grad_clip_norm must be positive, got {grad_clip_norm}")
        self.model = model
        self.optimizer = optimizer
        self.loss = get_loss(loss)
        self.schedule = schedule
        self.grad_clip_norm = grad_clip_norm
        self.callbacks: List[Callback] = list(callbacks or [])
        self._rng = ensure_rng(rng)

    # -- single steps ---------------------------------------------------------

    def train_step(self, inputs: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """One optimization step on a mini-batch; returns ``(loss, accuracy)``."""
        self.model.train(True)
        self.model.zero_grad()
        logits = self.model.forward(inputs)
        batch_loss = self.loss.forward(logits, labels)
        grad = self.loss.backward()
        self.model.backward(grad)
        if self.grad_clip_norm is not None:
            clip_gradients(self.model.parameters(), self.grad_clip_norm)
        self.optimizer.step()
        return float(batch_loss), accuracy(logits, labels)

    # -- full loop --------------------------------------------------------------

    def fit(
        self,
        train_data: Dataset,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[Dataset] = None,
        shuffle: bool = True,
    ) -> History:
        """Train for up to ``epochs`` epochs (callbacks may stop earlier)."""
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        if len(train_data) == 0:
            raise DatasetError("cannot train on an empty dataset")

        loader = DataLoader(
            train_data, batch_size=batch_size, shuffle=shuffle, rng=self._rng
        )
        history = History()

        for callback in self.callbacks:
            callback.on_train_begin()

        for epoch in range(epochs):
            if self.schedule is not None:
                self.optimizer.lr = self.schedule(epoch)

            losses: List[float] = []
            accuracies: List[float] = []
            weights: List[int] = []
            for batch_inputs, batch_labels in loader:
                batch_loss, batch_acc = self.train_step(batch_inputs, batch_labels)
                losses.append(batch_loss)
                accuracies.append(batch_acc)
                weights.append(batch_inputs.shape[0])

            total = float(sum(weights))
            train_loss = float(np.dot(losses, weights) / total)
            train_acc = float(np.dot(accuracies, weights) / total)

            val_loss = val_acc = None
            if validation_data is not None and len(validation_data) > 0:
                val_loss, val_acc = evaluate(self.model, validation_data, loss=self.loss)

            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_acc,
                val_loss=val_loss,
                val_accuracy=val_acc,
                learning_rate=self.optimizer.lr,
            )
            history.append(record)

            stop = False
            for callback in self.callbacks:
                callback.on_epoch_end(record)
                stop = stop or callback.should_stop()
            if stop:
                break

        for callback in self.callbacks:
            callback.on_train_end()

        self.model.eval()
        return history
