"""Numpy deep-learning substrate: layers, losses, metrics, initializers.

This package re-implements, from scratch and on top of numpy, the subset of a
deep-learning framework that the DeepMorph reproduction needs: layer-wise
forward/backward computation, parameter management, classification losses and
metrics.  It deliberately exposes every intermediate activation — the raw
material of data-flow footprints.
"""

from . import functional
from .dtype import (
    DEFAULT_DTYPE,
    as_compute,
    autocast,
    compute_dtype,
    resolve_dtype,
    set_compute_dtype,
)
from .initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    Initializer,
    Ones,
    RandomNormal,
    RandomUniform,
    Zeros,
    get_initializer,
)
from .layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    DenseBlock,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    TransitionLayer,
)
from .losses import Loss, MeanSquaredError, NegativeLogLikelihood, SoftmaxCrossEntropy, get_loss
from .metrics import (
    accuracy,
    confusion_matrix,
    error_cases,
    per_class_accuracy,
    precision_recall_f1,
    top_k_accuracy,
)
from .module import Layer, Parameter

__all__ = [
    "functional",
    "Layer",
    "Parameter",
    # dtype policy
    "DEFAULT_DTYPE",
    "autocast",
    "as_compute",
    "compute_dtype",
    "resolve_dtype",
    "set_compute_dtype",
    # layers
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "Sequential",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "ResidualBlock",
    "DenseBlock",
    "TransitionLayer",
    # initializers
    "Initializer",
    "Zeros",
    "Ones",
    "Constant",
    "RandomNormal",
    "RandomUniform",
    "GlorotUniform",
    "GlorotNormal",
    "HeNormal",
    "HeUniform",
    "get_initializer",
    # losses
    "Loss",
    "SoftmaxCrossEntropy",
    "NegativeLogLikelihood",
    "MeanSquaredError",
    "get_loss",
    # metrics
    "accuracy",
    "top_k_accuracy",
    "per_class_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "error_cases",
]
