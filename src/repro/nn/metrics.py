"""Classification metrics used by the trainer and the experiment harness."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "per_class_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "error_cases",
]


def _validate(predictions: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if predictions.shape[0] != labels.shape[0]:
        raise ShapeError(
            f"predictions and labels disagree on batch size: "
            f"{predictions.shape[0]} vs {labels.shape[0]}"
        )
    return predictions, labels


def _to_class_ids(predictions: np.ndarray) -> np.ndarray:
    """Accept either class-id vectors or probability/logit matrices."""
    if predictions.ndim == 2:
        return predictions.argmax(axis=1)
    if predictions.ndim == 1:
        return predictions
    raise ShapeError(f"predictions must be 1-D ids or 2-D scores, got shape {predictions.shape}")


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of examples whose predicted class matches the label."""
    predictions, labels = _validate(predictions, labels)
    if labels.size == 0:
        return 0.0
    return float(np.mean(_to_class_ids(predictions) == labels))


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of examples whose label is among the top-``k`` scored classes."""
    scores, labels = _validate(scores, labels)
    if scores.ndim != 2:
        raise ShapeError(f"top-k accuracy needs 2-D scores, got shape {scores.shape}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if labels.size == 0:
        return 0.0
    k = min(k, scores.shape[1])
    top_k = np.argsort(scores, axis=1)[:, -k:]
    return float(np.mean([labels[i] in top_k[i] for i in range(labels.shape[0])]))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[true, predicted]`` counts."""
    predictions, labels = _validate(predictions, labels)
    preds = _to_class_ids(predictions).astype(int)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(labels.astype(int), preds):
        matrix[true, pred] += 1
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Accuracy restricted to each true class (NaN-free: empty classes report 0)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    totals = matrix.sum(axis=1)
    correct = np.diag(matrix)
    with np.errstate(divide="ignore", invalid="ignore"):
        acc = np.where(totals > 0, correct / np.maximum(totals, 1), 0.0)
    return acc.astype(np.float64)


def precision_recall_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> Dict[str, np.ndarray]:
    """Per-class precision, recall, and F1 computed from the confusion matrix."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    true_pos = np.diag(matrix).astype(np.float64)
    pred_totals = matrix.sum(axis=0).astype(np.float64)
    true_totals = matrix.sum(axis=1).astype(np.float64)

    precision = np.where(pred_totals > 0, true_pos / np.maximum(pred_totals, 1), 0.0)
    recall = np.where(true_totals > 0, true_pos / np.maximum(true_totals, 1), 0.0)
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.maximum(denom, 1e-12), 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def error_cases(scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Indices of misclassified examples — the "faulty cases" DeepMorph diagnoses."""
    scores, labels = _validate(scores, labels)
    preds = _to_class_ids(scores)
    return np.nonzero(preds != labels)[0]
