"""Numerical primitives shared by the neural-network layers.

This module is the computational core of the substrate: pure functions over
numpy arrays with no state.  Layers in :mod:`repro.nn.layers` are thin
stateful wrappers that call into these functions for both the forward and the
backward pass.

Conventions
-----------
* Images are ``NCHW``: ``(batch, channels, height, width)``.
* Dense activations are ``(batch, features)``.
* All functions are float64-tolerant but default to float64 output when given
  float64 input; the layers standardize on float64 for gradient-check
  friendliness (the workloads are small by design).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "relu",
    "relu_grad",
    "leaky_relu",
    "leaky_relu_grad",
    "sigmoid",
    "sigmoid_grad",
    "tanh",
    "tanh_grad",
    "softmax",
    "log_softmax",
    "one_hot",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "pad_nchw",
    "conv_output_size",
]


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of :func:`relu` with respect to its input."""
    return grad_out * (x > 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    """Leaky ReLU: identity for positive values, ``negative_slope * x`` otherwise."""
    return np.where(x > 0.0, x, negative_slope * x)


def leaky_relu_grad(x: np.ndarray, grad_out: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    """Gradient of :func:`leaky_relu` with respect to its input."""
    return grad_out * np.where(x > 0.0, 1.0, negative_slope)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.result_type(x, np.float64))
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of sigmoid given its *output* ``y = sigmoid(x)``."""
    return grad_out * y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_grad(y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of tanh given its *output* ``y = tanh(x)``."""
    return grad_out * (1.0 - y * y)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a ``(n, num_classes)`` one-hot matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ShapeError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output size: input={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def pad_nchw(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int) -> np.ndarray:
    """Rearrange image patches into a matrix for convolution-as-matmul.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    ``(N * out_h * out_w, C * kernel_h * kernel_w)`` matrix where each row is
    one receptive field.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    img = pad_nchw(x, pad)
    col = np.zeros((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            col[:, :, ky, kx, :, :] = img[:, :, ky:y_max:stride, kx:x_max:stride]

    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    col: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add column gradients back to image space."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    col = col.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)

    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col[:, :, ky, kx, :, :]

    if pad == 0:
        return img
    return img[:, :, pad:-pad, pad:-pad]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """2-D convolution forward pass.

    Parameters
    ----------
    x:
        ``(N, C_in, H, W)`` input.
    weight:
        ``(C_out, C_in, KH, KW)`` filters.
    bias:
        Optional ``(C_out,)`` bias.

    Returns
    -------
    ``(output, col)`` where ``col`` is the im2col matrix cached for the
    backward pass.
    """
    if x.ndim != 4:
        raise ShapeError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d expects OIHW weights, got shape {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"input has {x.shape[1]} channels but weight expects {weight.shape[1]}"
        )
    n, _, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)

    col = im2col(x, kh, kw, stride, pad)
    w_mat = weight.reshape(c_out, -1).T  # (C_in*KH*KW, C_out)
    out = col @ w_mat
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return out, col


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    col: np.ndarray,
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-D convolution backward pass.

    Returns ``(grad_input, grad_weight, grad_bias)``.
    """
    c_out, c_in, kh, kw = weight.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_bias = grad_flat.sum(axis=0)
    grad_weight = (col.T @ grad_flat).T.reshape(c_out, c_in, kh, kw)
    grad_col = grad_flat @ weight.reshape(c_out, -1)
    grad_input = col2im(grad_col, x_shape, kh, kw, stride, pad)
    return grad_input, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, pad: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling forward pass.

    Returns ``(output, argmax)`` where ``argmax`` records, per output
    position, which element of the receptive field was selected (needed to
    route gradients in the backward pass).
    """
    if x.ndim != 4:
        raise ShapeError(f"maxpool2d expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)

    col = im2col(x, kernel, kernel, stride, pad).reshape(n * out_h * out_w, c, kernel * kernel)
    argmax = col.argmax(axis=2)
    out = col.max(axis=2)
    out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int = 0,
) -> np.ndarray:
    """Max pooling backward pass: route each gradient to its argmax position."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c)
    grad_col = np.zeros((n * out_h * out_w, c, kernel * kernel), dtype=grad_out.dtype)
    rows = np.arange(grad_col.shape[0])[:, None]
    cols = np.arange(c)[None, :]
    grad_col[rows, cols, argmax] = grad_flat
    grad_col = grad_col.reshape(n * out_h * out_w, c * kernel * kernel)
    return col2im(grad_col, x_shape, kernel, kernel, stride, pad)


def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int, pad: int = 0) -> np.ndarray:
    """Average pooling forward pass."""
    if x.ndim != 4:
        raise ShapeError(f"avgpool2d expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    col = im2col(x, kernel, kernel, stride, pad).reshape(n * out_h * out_w, c, kernel * kernel)
    out = col.mean(axis=2)
    return out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)


def avgpool2d_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int = 0,
) -> np.ndarray:
    """Average pooling backward pass: spread each gradient evenly over its window."""
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c)
    grad_col = np.repeat(grad_flat[:, :, None] / (kernel * kernel), kernel * kernel, axis=2)
    grad_col = grad_col.reshape(n * out_h * out_w, c * kernel * kernel)
    return col2im(grad_col, x_shape, kernel, kernel, stride, pad)
