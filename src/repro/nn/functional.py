"""Numerical primitives shared by the neural-network layers.

This module is the computational core of the substrate: pure functions over
numpy arrays with no state.  Layers in :mod:`repro.nn.layers` are thin
stateful wrappers that call into these functions for both the forward and the
backward pass.

Conventions
-----------
* Images are ``NCHW``: ``(batch, channels, height, width)``.
* Dense activations are ``(batch, features)``.
* Functions are dtype-preserving for float32/float64 input: the *caller*
  decides the precision (see :mod:`repro.nn.dtype`).  Training and
  gradient-check paths feed float64; the frozen-backbone extraction fast path
  feeds float32.
* The extraction hot paths (``im2col``, pooling) are loop-free, built on
  :func:`numpy.lib.stride_tricks.sliding_window_view`; ``col2im`` (backward
  only) keeps a deliberate per-kernel-offset loop of strided adds, the
  fastest safe form of an overlapping scatter-add (see its docstring).
  Every hot function has a ``*_reference`` twin implemented independently;
  the parity test suite pins the production path to them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..exceptions import ShapeError

__all__ = [
    "relu",
    "relu_grad",
    "leaky_relu",
    "leaky_relu_grad",
    "sigmoid",
    "sigmoid_grad",
    "tanh",
    "tanh_grad",
    "softmax",
    "log_softmax",
    "one_hot",
    "im2col",
    "col2im",
    "im2col_reference",
    "col2im_reference",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
    "pad_nchw",
    "conv_output_size",
]


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of :func:`relu` with respect to its input."""
    return grad_out * (x > 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    """Leaky ReLU: identity for positive values, ``negative_slope * x`` otherwise."""
    return np.where(x > 0.0, x, negative_slope * x)


def leaky_relu_grad(x: np.ndarray, grad_out: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    """Gradient of :func:`leaky_relu` with respect to its input."""
    return grad_out * np.where(x > 0.0, 1.0, negative_slope)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid (dtype-preserving for floats)."""
    x = np.asarray(x)
    dtype = x.dtype if x.dtype in (np.float32, np.float64) else np.float64
    out = np.empty(x.shape, dtype=dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos], dtype=dtype))
    ex = np.exp(x[~pos], dtype=dtype)
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of sigmoid given its *output* ``y = sigmoid(x)``."""
    return grad_out * y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_grad(y: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    """Gradient of tanh given its *output* ``y = tanh(x)``."""
    return grad_out * (1.0 - y * y)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as a ``(n, num_classes)`` one-hot matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ShapeError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------

def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution produces non-positive output size: input={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def pad_nchw(x: np.ndarray, pad: int, value: float = 0.0) -> np.ndarray:
    """Pad the two spatial dimensions of an NCHW tensor with ``value``."""
    if pad == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
        mode="constant", constant_values=value,
    )


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Rearrange image patches into a matrix for convolution-as-matmul.

    Loop-free: a :func:`~numpy.lib.stride_tricks.sliding_window_view` exposes
    every receptive field as a zero-copy view; the single ``reshape`` at the
    end performs the one unavoidable gather.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    pad_value:
        Fill value for the padded border.  Convolution and average pooling
        use ``0``; max pooling uses ``-inf`` so padding can never win a max.

    Returns
    -------
    ``(N * out_h * out_w, C * kernel_h * kernel_w)`` matrix where each row is
    one receptive field.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    img = pad_nchw(x, pad, value=pad_value)
    # (N, C, H', W', KH, KW) where (H', W') are the stride-1 window positions.
    windows = sliding_window_view(img, (kernel_h, kernel_w), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)


def col2im(
    col: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add column gradients back to image space.

    Unlike :func:`im2col`, this is an *overlapping* scatter-add, which a
    :func:`~numpy.lib.stride_tricks.sliding_window_view` cannot express safely
    (``+=`` through overlapping views is undefined).  The ``kernel_h ×
    kernel_w`` loop of vectorized strided adds is deliberate: the fully
    index-bucketed alternative (:func:`col2im_reference`) materializes an
    int64 index array larger than the gradient itself and measures ~2x slower
    at training scale.  col2im is only on the training/backward path —
    inference never calls it.  Gradient that lands in the padded border is
    cropped away (padding is a constant, it receives no gradient).
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    col = col.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)

    img = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=col.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col[:, :, ky, kx, :, :]

    if pad == 0:
        return img
    return img[:, :, pad:-pad, pad:-pad]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """2-D convolution forward pass.

    Parameters
    ----------
    x:
        ``(N, C_in, H, W)`` input.
    weight:
        ``(C_out, C_in, KH, KW)`` filters.
    bias:
        Optional ``(C_out,)`` bias.

    Returns
    -------
    ``(output, col)`` where ``col`` is the im2col matrix cached for the
    backward pass.  The matmul runs in the input's dtype: float64 parameters
    are narrowed to match a float32 input rather than widening the input.
    """
    if x.ndim != 4:
        raise ShapeError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d expects OIHW weights, got shape {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ShapeError(
            f"input has {x.shape[1]} channels but weight expects {weight.shape[1]}"
        )
    n, _, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, pad)
    out_w = conv_output_size(w, kw, stride, pad)

    col = im2col(x, kh, kw, stride, pad)
    w_mat = weight.reshape(c_out, -1).T  # (C_in*KH*KW, C_out)
    if w_mat.dtype != col.dtype:
        w_mat = w_mat.astype(col.dtype)
    out = col @ w_mat
    if bias is not None:
        out = out + (bias if bias.dtype == out.dtype else bias.astype(out.dtype))
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return out, col


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    col: np.ndarray,
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """2-D convolution backward pass.

    Returns ``(grad_input, grad_weight, grad_bias)``.
    """
    c_out, c_in, kh, kw = weight.shape
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_bias = grad_flat.sum(axis=0)
    grad_weight = (col.T @ grad_flat).T.reshape(c_out, c_in, kh, kw)
    grad_col = grad_flat @ weight.reshape(c_out, -1)
    grad_input = col2im(grad_col, x_shape, kh, kw, stride, pad)
    return grad_input, grad_weight, grad_bias


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def _check_pool_pad(kernel: int, pad: int) -> None:
    """Every pooling window must contain at least one real (non-padded) element."""
    if pad >= kernel:
        raise ShapeError(
            f"pooling padding must be smaller than the kernel, got pad={pad} "
            f"for kernel={kernel} (a window could consist entirely of padding)"
        )


def _window_real_counts(
    h: int, w: int, kernel: int, stride: int, pad: int, out_h: int, out_w: int
) -> np.ndarray:
    """Number of real (non-padded) elements in each pooling window.

    Returns an ``(out_h, out_w)`` array.
    """
    def overlap(size: int, out: int) -> np.ndarray:
        starts = np.arange(out) * stride
        lo = np.maximum(starts, pad)
        hi = np.minimum(starts + kernel, pad + size)
        return np.maximum(hi - lo, 0)

    return overlap(h, out_h)[:, None] * overlap(w, out_w)[None, :]


def _pool_windows(
    x: np.ndarray, kernel: int, stride: int, pad: int, pad_value: float
) -> np.ndarray:
    """Zero-copy ``(N, C, out_h, out_w, kernel, kernel)`` view of pooling windows."""
    img = pad_nchw(x, pad, value=pad_value)
    return sliding_window_view(img, (kernel, kernel), axis=(2, 3))[:, :, ::stride, ::stride]


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, pad: int = 0, return_argmax: bool = True
) -> Tuple[np.ndarray, "np.ndarray | None"]:
    """Max pooling forward pass.

    Padding is filled with ``-inf`` rather than zero so a padded position can
    never be selected: with an all-negative window, the max is the true
    (negative) maximum, not a phantom zero from the border.

    Returns ``(output, argmax)`` where ``argmax`` records, per output
    position, which element of the receptive field was selected (needed to
    route gradients in the backward pass).  Inference callers pass
    ``return_argmax=False`` (and get ``argmax=None``): the max then reduces
    directly over the sliding-window view without materializing the column
    matrix, which is the single largest cost of the extraction hot path.
    """
    if x.ndim != 4:
        raise ShapeError(f"maxpool2d expects NCHW input, got shape {x.shape}")
    _check_pool_pad(kernel, pad)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)

    windows = _pool_windows(x, kernel, stride, pad, -np.inf)
    if not return_argmax:
        return windows.max(axis=(4, 5)), None
    col = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c, kernel * kernel)
    argmax = col.argmax(axis=2)
    out = np.take_along_axis(col, argmax[:, :, None], axis=2)[:, :, 0]
    out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int = 0,
) -> np.ndarray:
    """Max pooling backward pass: route each gradient to its argmax position.

    Because the forward pass pads with ``-inf``, ``argmax`` always points at a
    real input element, so no gradient is ever routed into (and then silently
    cropped out of) the padded border.
    """
    _check_pool_pad(kernel, pad)
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)

    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c)
    grad_col = np.zeros((n * out_h * out_w, c, kernel * kernel), dtype=grad_out.dtype)
    rows = np.arange(grad_col.shape[0])[:, None]
    cols = np.arange(c)[None, :]
    grad_col[rows, cols, argmax] = grad_flat
    grad_col = grad_col.reshape(n * out_h * out_w, c * kernel * kernel)
    return col2im(grad_col, x_shape, kernel, kernel, stride, pad)


def avgpool2d_forward(
    x: np.ndarray,
    kernel: int,
    stride: int,
    pad: int = 0,
    count_include_pad: bool = True,
) -> np.ndarray:
    """Average pooling forward pass.

    Parameters
    ----------
    count_include_pad:
        When ``True`` (the historical and Table-I behaviour) every window
        divides by ``kernel * kernel``, counting padded zeros toward the mean.
        When ``False`` each window divides by the number of *real* elements it
        covers, so border averages are unbiased.
    """
    if x.ndim != 4:
        raise ShapeError(f"avgpool2d expects NCHW input, got shape {x.shape}")
    _check_pool_pad(kernel, pad)
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    windows = _pool_windows(x, kernel, stride, pad, 0.0)
    if count_include_pad or pad == 0:
        return windows.mean(axis=(4, 5))
    counts = _window_real_counts(h, w, kernel, stride, pad, out_h, out_w)
    return windows.sum(axis=(4, 5)) / counts.astype(x.dtype)[None, None, :, :]


def avgpool2d_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int = 0,
    count_include_pad: bool = True,
) -> np.ndarray:
    """Average pooling backward pass: spread each gradient evenly over its window.

    Mirrors the forward divisor exactly: ``kernel * kernel`` when padding is
    counted, the per-window real-element count otherwise.  Shares going to
    padded positions are cropped by :func:`col2im`, which is consistent with
    the forward pass in both modes (padded entries are constants).
    """
    _check_pool_pad(kernel, pad)
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c)
    if count_include_pad or pad == 0:
        scaled = grad_flat / (kernel * kernel)
    else:
        counts = _window_real_counts(h, w, kernel, stride, pad, out_h, out_w).reshape(-1)
        scaled = grad_flat / np.tile(counts, n).astype(grad_flat.dtype)[:, None]
    grad_col = np.broadcast_to(
        scaled[:, :, None], (n * out_h * out_w, c, kernel * kernel)
    ).reshape(n * out_h * out_w, c * kernel * kernel)
    return col2im(grad_col, x_shape, kernel, kernel, stride, pad)


# ---------------------------------------------------------------------------
# Reference implementations (per-kernel-offset loops)
# ---------------------------------------------------------------------------
# The original implementations are kept verbatim as the slow-but-obviously-
# correct baseline: the parity test suite pins the loop-free fast path above
# to these, and the extraction benchmark measures the speedup against them.

def im2col_reference(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Loop-based :func:`im2col` (one slice-copy per kernel offset)."""
    if x.ndim != 4:
        raise ShapeError(f"im2col expects NCHW input, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    img = pad_nchw(x, pad, value=pad_value)
    col = np.zeros((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            col[:, :, ky, kx, :, :] = img[:, :, ky:y_max:stride, kx:x_max:stride]

    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im_reference(
    col: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Index-bucketed :func:`col2im`: an independent cross-check implementation.

    Every column entry's flat destination index in the padded image is
    computed by broadcasting and the overlapping scatter-add is a single
    :func:`numpy.bincount` — direct index bookkeeping that shares no strided
    slice arithmetic with the production :func:`col2im`, which is what makes
    it a useful parity baseline.  Not used at runtime: the index array it
    materializes makes it ~2x slower than the strided-add loop at training
    scale.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad

    # Rows of `col` are (n, out_h, out_w); columns are (c, kernel_h, kernel_w).
    weights = (
        col.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
        .transpose(0, 3, 1, 2, 4, 5)
        .reshape(n * c, -1)
    )
    # Flat spatial index in the padded image for every (oy, ox, ky, kx).
    ys = (np.arange(out_h) * stride)[:, None] + np.arange(kernel_h)[None, :]
    xs = (np.arange(out_w) * stride)[:, None] + np.arange(kernel_w)[None, :]
    spatial = (ys[:, None, :, None] * wp + xs[None, :, None, :]).reshape(-1)
    index = (np.arange(n * c)[:, None] * (hp * wp) + spatial[None, :]).ravel()

    img = np.bincount(index, weights=weights.ravel(), minlength=n * c * hp * wp)
    img = img.reshape(n, c, hp, wp).astype(col.dtype, copy=False)
    if pad == 0:
        return img
    return img[:, :, pad:-pad, pad:-pad]
