"""Sequential layer container.

The container is the backbone of every model in :mod:`repro.models` and the
place where DeepMorph's instrumentation hooks in: a forward pass can record
the output of every (top-level) stage, which is exactly the "intermediate
output of every layer" the paper's data-flow footprints are built from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ...exceptions import ConfigurationError
from ..module import Layer

__all__ = ["Sequential"]


class Sequential(Layer):
    """Run child layers in order, feeding each one's output into the next."""

    def __init__(self, layers: Optional[Iterable[Layer]] = None, name: Optional[str] = None):
        super().__init__(name=name)
        if layers is not None:
            for layer in layers:
                self.append(layer)

    # -- construction -------------------------------------------------------

    def append(self, layer: Layer) -> "Sequential":
        """Append a layer (its name must be unique within the container)."""
        if not isinstance(layer, Layer):
            raise ConfigurationError(f"Sequential can only contain Layer instances, got {type(layer)!r}")
        existing = {child.name for child in self._children}
        if layer.name in existing:
            # Auto-disambiguate: stable, readable, keeps model-building code terse.
            layer.name = f"{layer.name}_{len(self._children)}"
        self.add_child(layer)
        return self

    def extend(self, layers: Sequence[Layer]) -> "Sequential":
        """Append multiple layers."""
        for layer in layers:
            self.append(layer)
        return self

    def __len__(self) -> int:
        return len(self._children)

    def __getitem__(self, index: int) -> Layer:
        return self._children[index]

    def __iter__(self):
        return iter(self._children)

    def layer_names(self) -> List[str]:
        """Names of the direct children, in execution order."""
        return [child.name for child in self._children]

    def index_of(self, layer_name: str) -> int:
        """Position of the direct child called ``layer_name``."""
        for i, child in enumerate(self._children):
            if child.name == layer_name:
                return i
        raise KeyError(f"no layer named {layer_name!r} in {self.name!r}")

    # -- computation ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for child in self._children:
            out = child.forward(out)
        return out

    def forward_with_activations(self, x: np.ndarray) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Forward pass that also returns each direct child's output.

        Returns
        -------
        ``(output, activations)`` where ``activations`` maps the child layer
        name to its output array, in execution order (dicts preserve insertion
        order).  This is the primitive DeepMorph's footprint extraction uses.
        """
        activations: Dict[str, np.ndarray] = {}
        out = x
        for child in self._children:
            out = child.forward(out)
            activations[child.name] = out
        return out, activations

    def forward_until(self, x: np.ndarray, layer_name: str) -> np.ndarray:
        """Run the forward pass up to and including ``layer_name``."""
        out = x
        for child in self._children:
            out = child.forward(out)
            if child.name == layer_name:
                return out
        raise KeyError(f"no layer named {layer_name!r} in {self.name!r}")

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for child in reversed(self._children):
            grad = child.backward(grad)
        return grad

    def output_shape(self, input_shape):
        shape = tuple(input_shape)
        for child in self._children:
            shape = child.output_shape(shape)
        return shape

    def __repr__(self) -> str:
        inner = ", ".join(type(child).__name__ for child in self._children)
        return f"Sequential(name={self.name!r}, layers=[{inner}])"
