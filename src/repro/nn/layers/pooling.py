"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...exceptions import ConfigurationError, ShapeError
from .. import functional as F
from ..module import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Layer):
    """Max pooling over square windows of an NCHW tensor."""

    def __init__(
        self,
        kernel_size: int = 2,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if padding < 0:
            raise ConfigurationError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input_shape = x.shape  # type: ignore[assignment]
        out, argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride, self.padding)
        self._argmax = argmax
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None or self._argmax is None:
            raise RuntimeError("backward called before forward on MaxPool2D")
        return F.maxpool2d_backward(
            np.asarray(grad_out, dtype=np.float64),
            self._argmax,
            self._input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def output_shape(self, input_shape):
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, out_h, out_w)


class AvgPool2D(Layer):
    """Average pooling over square windows of an NCHW tensor."""

    def __init__(
        self,
        kernel_size: int = 2,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if padding < 0:
            raise ConfigurationError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input_shape = x.shape  # type: ignore[assignment]
        return F.avgpool2d_forward(x, self.kernel_size, self.stride, self.padding)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on AvgPool2D")
        return F.avgpool2d_backward(
            np.asarray(grad_out, dtype=np.float64),
            self._input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def output_shape(self, input_shape):
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, out_h, out_w)


class GlobalAvgPool2D(Layer):
    """Average every feature map down to a single value: NCHW → NC.

    Used as the pre-classifier layer of ResNet- and DenseNet-style models.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ShapeError(f"GlobalAvgPool2D expects NCHW input, got shape {x.shape}")
        self._input_shape = x.shape  # type: ignore[assignment]
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on GlobalAvgPool2D")
        n, c, h, w = self._input_shape
        grad = np.asarray(grad_out, dtype=np.float64)[:, :, None, None]
        return np.broadcast_to(grad / (h * w), self._input_shape).copy()

    def output_shape(self, input_shape):
        c, _, _ = input_shape
        return (c,)
