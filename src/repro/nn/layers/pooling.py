"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...exceptions import ConfigurationError, ShapeError
from .. import functional as F
from ..dtype import as_compute
from ..module import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Layer):
    """Max pooling over square windows of an NCHW tensor."""

    def __init__(
        self,
        kernel_size: int = 2,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if padding < 0:
            raise ConfigurationError(f"padding must be non-negative, got {padding}")
        if padding >= self.kernel_size:
            raise ConfigurationError(
                f"padding must be smaller than kernel_size, got padding={padding} "
                f"for kernel_size={self.kernel_size}"
            )
        self.padding = int(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._input_shape = x.shape  # type: ignore[assignment]
        # The argmax is only needed to route gradients; inference-mode
        # forwards skip it (and the column-matrix materialization it forces).
        out, argmax = F.maxpool2d_forward(
            x, self.kernel_size, self.stride, self.padding,
            return_argmax=self.training,
        )
        self._argmax = argmax
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on MaxPool2D")
        if self._argmax is None:
            raise RuntimeError(
                "MaxPool2D.backward needs the argmax recorded by a training-mode "
                "forward; the last forward ran in eval mode (which skips it). "
                "Call train() before the forward pass that gradients flow through."
            )
        return F.maxpool2d_backward(
            np.asarray(grad_out, dtype=np.float64),
            self._argmax,
            self._input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def output_shape(self, input_shape):
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, out_h, out_w)


class AvgPool2D(Layer):
    """Average pooling over square windows of an NCHW tensor.

    Parameters
    ----------
    count_include_pad:
        When ``True`` (the historical default, matching the Table-I runs)
        padded zeros count toward every window's divisor; when ``False`` each
        window divides by the number of real elements it covers.
    """

    def __init__(
        self,
        kernel_size: int = 2,
        stride: Optional[int] = None,
        padding: int = 0,
        count_include_pad: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)
        if self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if padding < 0:
            raise ConfigurationError(f"padding must be non-negative, got {padding}")
        if padding >= self.kernel_size:
            raise ConfigurationError(
                f"padding must be smaller than kernel_size, got padding={padding} "
                f"for kernel_size={self.kernel_size}"
            )
        self.padding = int(padding)
        self.count_include_pad = bool(count_include_pad)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._input_shape = x.shape  # type: ignore[assignment]
        return F.avgpool2d_forward(
            x, self.kernel_size, self.stride, self.padding,
            count_include_pad=self.count_include_pad,
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on AvgPool2D")
        return F.avgpool2d_backward(
            np.asarray(grad_out, dtype=np.float64),
            self._input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            count_include_pad=self.count_include_pad,
        )

    def output_shape(self, input_shape):
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (c, out_h, out_w)


class GlobalAvgPool2D(Layer):
    """Average every feature map down to a single value: NCHW → NC.

    Used as the pre-classifier layer of ResNet- and DenseNet-style models.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != 4:
            raise ShapeError(f"GlobalAvgPool2D expects NCHW input, got shape {x.shape}")
        self._input_shape = x.shape  # type: ignore[assignment]
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on GlobalAvgPool2D")
        n, c, h, w = self._input_shape
        grad = np.asarray(grad_out, dtype=np.float64)[:, :, None, None]
        return np.broadcast_to(grad / (h * w), self._input_shape).copy()

    def output_shape(self, input_shape):
        c, _, _ = input_shape
        return (c,)
