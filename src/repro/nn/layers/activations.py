"""Parameter-free activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..module import Layer

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Layer):
    """Rectified linear unit activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = self.cache_for_backward(x)
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward on ReLU")
        return F.relu_grad(self._input, grad_out)


class LeakyReLU(Layer):
    """Leaky rectified linear unit activation."""

    def __init__(self, negative_slope: float = 0.01, name: Optional[str] = None):
        super().__init__(name=name)
        self.negative_slope = float(negative_slope)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = self.cache_for_backward(x)
        return F.leaky_relu(x, self.negative_slope)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward on LeakyReLU")
        return F.leaky_relu_grad(self._input, grad_out, self.negative_slope)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.sigmoid(x)
        self._output = self.cache_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward on Sigmoid")
        return F.sigmoid_grad(self._output, grad_out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.tanh(x)
        self._output = self.cache_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward on Tanh")
        return F.tanh_grad(self._output, grad_out)


class Softmax(Layer):
    """Softmax over the last axis.

    Typically the final layer of a classifier.  The backward pass implements
    the full softmax Jacobian product, so the layer composes correctly with
    any loss; models trained with
    :class:`~repro.nn.losses.SoftmaxCrossEntropy` usually omit it and let the
    loss fuse softmax with the cross-entropy gradient for numerical stability.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.softmax(x, axis=-1)
        self._output = self.cache_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward on Softmax")
        y = self._output
        dot = np.sum(grad_out * y, axis=-1, keepdims=True)
        return y * (grad_out - dot)
