"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...exceptions import ConfigurationError
from ...rng import RngLike, ensure_rng
from .. import functional as F
from ..dtype import as_compute
from ..initializers import get_initializer
from ..module import Layer, Parameter

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """2-D convolution over NCHW inputs, implemented with im2col.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the input and output feature maps.
    kernel_size:
        Side length of the square kernel.
    stride:
        Spatial stride.
    padding:
        Symmetric zero padding; ``"same"`` selects the padding that preserves
        the spatial size for stride 1.
    use_bias:
        Whether a per-channel bias is added.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: "int | str" = 0,
        use_bias: bool = True,
        weight_init: "str | Initializer" = "he_normal",
        bias_init: "str | Initializer" = "zeros",
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if in_channels <= 0 or out_channels <= 0:
            raise ConfigurationError(
                f"Conv2D requires positive channel counts, got in={in_channels}, out={out_channels}"
            )
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        if stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")

        if isinstance(padding, str):
            if padding != "same":
                raise ConfigurationError(f"string padding must be 'same', got {padding!r}")
            if kernel_size % 2 == 0:
                # (kernel_size - 1) // 2 silently shrinks the map for even
                # kernels: symmetric integer padding cannot preserve the
                # spatial size, which would need asymmetric left/right pads.
                raise ConfigurationError(
                    f"padding='same' requires an odd kernel_size, got {kernel_size}; "
                    f"pass an explicit integer padding instead"
                )
            padding = (kernel_size - 1) // 2
        if padding < 0:
            raise ConfigurationError(f"padding must be non-negative, got {padding}")

        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)

        generator = ensure_rng(rng)
        w_init = get_initializer(weight_init)
        b_init = get_initializer(bias_init)

        self.weight = self.add_parameter(
            "weight",
            Parameter(
                w_init((out_channels, in_channels, kernel_size, kernel_size), generator),
                name=f"{self.name}.weight",
            ),
        )
        self.bias: Optional[Parameter] = None
        if use_bias:
            self.bias = self.add_parameter(
                "bias",
                Parameter(b_init((out_channels,), generator), name=f"{self.name}.bias"),
            )

        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._col: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._input_shape = x.shape  # type: ignore[assignment]
        out, col = F.conv2d_forward(
            x,
            self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride,
            self.padding,
        )
        # The column matrix is the largest extraction buffer; never retain it
        # across inference-mode forwards.
        self._col = self.cache_for_backward(col)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None or self._col is None:
            raise RuntimeError("backward called before forward on Conv2D")
        grad_in, grad_w, grad_b = F.conv2d_backward(
            np.asarray(grad_out, dtype=np.float64),
            self._input_shape,
            self._col,
            self.weight.data,
            self.stride,
            self.padding,
        )
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_in

    def output_shape(self, input_shape):
        c, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"Conv2D(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, pad={self.padding}, "
            f"name={self.name!r})"
        )
