"""Inverted dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...exceptions import ConfigurationError
from ...rng import RngLike, ensure_rng
from ..dtype import as_compute
from ..module import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: active only in training mode.

    Each activation is zeroed with probability ``rate`` and the survivors are
    scaled by ``1 / (1 - rate)`` so the expected activation is unchanged;
    inference mode is the identity.
    """

    def __init__(self, rate: float = 0.5, rng: RngLike = None, name: Optional[str] = None):
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = ensure_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep_prob = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep_prob) / keep_prob
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out = np.asarray(grad_out, dtype=np.float64)
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def output_shape(self, input_shape):
        return tuple(input_shape)
