"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dtype import as_compute
from ..module import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    """Flatten every non-batch dimension: ``(N, ...) → (N, prod(...))``."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward on Flatten")
        return np.asarray(grad_out, dtype=np.float64).reshape(self._input_shape)

    def output_shape(self, input_shape):
        size = 1
        for dim in input_shape:
            size *= int(dim)
        return (size,)
