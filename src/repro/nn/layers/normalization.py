"""Batch-normalization layers for dense and convolutional activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...exceptions import ConfigurationError, ShapeError
from ..dtype import as_compute, match_dtype
from ..module import Layer, Parameter

__all__ = ["BatchNorm1D", "BatchNorm2D"]


class _BatchNormBase(Layer):
    """Shared machinery for 1-D and 2-D batch normalization.

    Subclasses define which axes are reduced over; the base class owns the
    scale/shift parameters, running statistics, and the backward pass.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum <= 1.0:
            raise ConfigurationError(f"momentum must lie in [0, 1], got {momentum}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")

        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)

        self.gamma = self.add_parameter(
            "gamma", Parameter(np.ones(num_features), name=f"{self.name}.gamma")
        )
        self.beta = self.add_parameter(
            "beta", Parameter(np.zeros(num_features), name=f"{self.name}.beta")
        )

        # Running statistics are buffers, not parameters: they are updated by
        # the forward pass in training mode and consumed in eval mode.
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

        self._cache: Optional[tuple] = None

    # Subclass hooks ---------------------------------------------------------

    def _check_input(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def _reshape_stats(self, stat: np.ndarray) -> np.ndarray:
        """Reshape a per-feature statistic so it broadcasts against the input."""
        raise NotImplementedError

    def _reduce_axes(self) -> tuple:
        raise NotImplementedError

    # Forward / backward -------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        self._check_input(x)
        axes = self._reduce_axes()

        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = match_dtype(self.running_mean, x)
            var = match_dtype(self.running_var, x)

        mean_b = self._reshape_stats(mean)
        var_b = self._reshape_stats(var)
        inv_std = 1.0 / np.sqrt(var_b + self.eps)
        if inv_std.dtype != x.dtype:
            inv_std = inv_std.astype(x.dtype)
        x_hat = (x - mean_b) * inv_std

        out = (
            self._reshape_stats(match_dtype(self.gamma.data, x)) * x_hat
            + self._reshape_stats(match_dtype(self.beta.data, x))
        )
        if self.training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called before a training-mode forward on batch norm"
            )
        x_hat, inv_std = self._cache
        grad_out = np.asarray(grad_out, dtype=np.float64)
        axes = self._reduce_axes()

        # Number of elements that contributed to each feature's statistics.
        m = grad_out.size / self.num_features

        grad_gamma = (grad_out * x_hat).sum(axis=axes)
        grad_beta = grad_out.sum(axis=axes)
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)

        gamma_b = self._reshape_stats(self.gamma.data)
        grad_xhat = grad_out * gamma_b
        grad_input = (
            inv_std
            / m
            * (
                m * grad_xhat
                - self._reshape_stats(grad_xhat.sum(axis=axes))
                - x_hat * self._reshape_stats((grad_xhat * x_hat).sum(axis=axes))
            )
        )
        return grad_input

    def output_shape(self, input_shape):
        return tuple(input_shape)


class BatchNorm1D(_BatchNormBase):
    """Batch normalization over ``(batch, features)`` activations."""

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 2:
            raise ShapeError(f"BatchNorm1D expects 2-D input, got shape {x.shape}")
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1D built for {self.num_features} features, got {x.shape[1]}"
            )

    def _reshape_stats(self, stat: np.ndarray) -> np.ndarray:
        return stat.reshape(1, -1)

    def _reduce_axes(self) -> tuple:
        return (0,)


class BatchNorm2D(_BatchNormBase):
    """Batch normalization over ``(batch, channels, height, width)`` activations."""

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 4:
            raise ShapeError(f"BatchNorm2D expects NCHW input, got shape {x.shape}")
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2D built for {self.num_features} channels, got {x.shape[1]}"
            )

    def _reshape_stats(self, stat: np.ndarray) -> np.ndarray:
        return stat.reshape(1, -1, 1, 1)

    def _reduce_axes(self) -> tuple:
        return (0, 2, 3)
