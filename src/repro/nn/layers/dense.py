"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...exceptions import ConfigurationError, ShapeError
from ...rng import RngLike, ensure_rng
from ..dtype import as_compute, match_dtype
from ..initializers import Zeros, get_initializer
from ..module import Layer, Parameter

__all__ = ["Dense"]


class Dense(Layer):
    """Affine transform ``y = x @ W + b`` over the last axis.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    use_bias:
        Whether a bias vector is added.
    weight_init, bias_init:
        Initializer instances or registry names.
    rng:
        Seed or generator used for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        weight_init: "str | Initializer" = "he_normal",
        bias_init: "str | Initializer" = "zeros",
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Dense requires positive sizes, got in={in_features}, out={out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)

        generator = ensure_rng(rng)
        w_init = get_initializer(weight_init)
        b_init = get_initializer(bias_init) if use_bias else Zeros()

        self.weight = self.add_parameter(
            "weight",
            Parameter(w_init((in_features, out_features), generator), name=f"{self.name}.weight"),
        )
        self.bias: Optional[Parameter] = None
        if use_bias:
            self.bias = self.add_parameter(
                "bias",
                Parameter(b_init((out_features,), generator), name=f"{self.name}.bias"),
            )

        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        if x.ndim != 2:
            raise ShapeError(
                f"Dense expects 2-D input (batch, features), got shape {x.shape}; "
                "insert a Flatten layer before dense layers"
            )
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense {self.name!r} expects {self.in_features} input features, got {x.shape[1]}"
            )
        self._input = self.cache_for_backward(x)
        out = x @ match_dtype(self.weight.data, x)
        if self.bias is not None:
            out = out + match_dtype(self.bias.data, x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward on Dense")
        grad_out = np.asarray(grad_out, dtype=np.float64)
        self.weight.accumulate_grad(self._input.T @ grad_out)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        return grad_out @ self.weight.data.T

    def output_shape(self, input_shape):
        return (self.out_features,)

    def __repr__(self) -> str:
        return (
            f"Dense(in={self.in_features}, out={self.out_features}, "
            f"bias={self.use_bias}, name={self.name!r})"
        )
