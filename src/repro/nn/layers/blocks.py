"""Composite blocks used by the ResNet- and DenseNet-family models.

Blocks are composite :class:`~repro.nn.module.Layer` objects: they own child
layers and orchestrate branching data flow (skip connections, feature
concatenation) in their forward/backward passes.  A model built from blocks
still exposes a flat, ordered list of stages to DeepMorph's instrumentation —
each block counts as one "hidden layer" in the paper's sense.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...exceptions import ConfigurationError
from ...rng import RngLike, ensure_rng, spawn
from .. import functional as F
from ..dtype import as_compute
from ..module import Layer
from .activations import ReLU
from .conv import Conv2D
from .container import Sequential
from .normalization import BatchNorm2D
from .pooling import AvgPool2D

__all__ = ["ResidualBlock", "DenseBlock", "TransitionLayer"]


class ResidualBlock(Layer):
    """Basic residual block: ``relu(conv-bn-relu-conv-bn(x) + shortcut(x))``.

    When the block changes the channel count or the stride, the shortcut is a
    1×1 convolution followed by batch norm (the "projection shortcut" of the
    original ResNet paper); otherwise it is the identity.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        use_batchnorm: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if in_channels <= 0 or out_channels <= 0:
            raise ConfigurationError(
                f"ResidualBlock requires positive channel counts, got "
                f"in={in_channels}, out={out_channels}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.stride = int(stride)
        self.use_batchnorm = bool(use_batchnorm)

        rngs = spawn(ensure_rng(rng), 3)

        main_layers: List[Layer] = [
            Conv2D(in_channels, out_channels, 3, stride=stride, padding=1,
                   use_bias=not use_batchnorm, rng=rngs[0], name="conv1"),
        ]
        if use_batchnorm:
            main_layers.append(BatchNorm2D(out_channels, name="bn1"))
        main_layers.append(ReLU(name="relu1"))
        main_layers.append(
            Conv2D(out_channels, out_channels, 3, stride=1, padding=1,
                   use_bias=not use_batchnorm, rng=rngs[1], name="conv2")
        )
        if use_batchnorm:
            main_layers.append(BatchNorm2D(out_channels, name="bn2"))
        self.main = self.add_child(Sequential(main_layers, name="main"))

        self.shortcut: Optional[Sequential] = None
        if stride != 1 or in_channels != out_channels:
            shortcut_layers: List[Layer] = [
                Conv2D(in_channels, out_channels, 1, stride=stride, padding=0,
                       use_bias=not use_batchnorm, rng=rngs[2], name="conv_proj"),
            ]
            if use_batchnorm:
                shortcut_layers.append(BatchNorm2D(out_channels, name="bn_proj"))
            self.shortcut = self.add_child(Sequential(shortcut_layers, name="shortcut"))

        self._pre_activation: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_compute(x)
        main_out = self.main.forward(x)
        residual = self.shortcut.forward(x) if self.shortcut is not None else x
        pre_act = main_out + residual
        self._pre_activation = self.cache_for_backward(pre_act)
        return F.relu(pre_act)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._pre_activation is None:
            raise RuntimeError("backward called before forward on ResidualBlock")
        grad_pre = F.relu_grad(self._pre_activation, np.asarray(grad_out, dtype=np.float64))
        grad_main = self.main.backward(grad_pre)
        if self.shortcut is not None:
            grad_shortcut = self.shortcut.backward(grad_pre)
        else:
            grad_shortcut = grad_pre
        return grad_main + grad_shortcut

    def output_shape(self, input_shape):
        return self.main.output_shape(tuple(input_shape))

    def __repr__(self) -> str:
        return (
            f"ResidualBlock(in={self.in_channels}, out={self.out_channels}, "
            f"stride={self.stride}, name={self.name!r})"
        )


class _DenseUnit(Layer):
    """One BN-ReLU-Conv unit inside a :class:`DenseBlock`.

    Produces ``growth_rate`` new feature maps which the block concatenates
    onto its running feature stack.
    """

    def __init__(
        self,
        in_channels: int,
        growth_rate: int,
        use_batchnorm: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        layers: List[Layer] = []
        if use_batchnorm:
            layers.append(BatchNorm2D(in_channels, name="bn"))
        layers.append(ReLU(name="relu"))
        layers.append(
            Conv2D(in_channels, growth_rate, 3, stride=1, padding=1,
                   use_bias=not use_batchnorm, rng=rng, name="conv")
        )
        self.body = self.add_child(Sequential(layers, name="body"))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.body.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_out)


class DenseBlock(Layer):
    """DenseNet block: every unit sees the concatenation of all previous outputs.

    With ``num_units`` units and growth rate ``k``, an input with ``C``
    channels produces an output with ``C + num_units * k`` channels.
    """

    def __init__(
        self,
        in_channels: int,
        growth_rate: int,
        num_units: int,
        use_batchnorm: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if num_units <= 0:
            raise ConfigurationError(f"num_units must be positive, got {num_units}")
        if growth_rate <= 0:
            raise ConfigurationError(f"growth_rate must be positive, got {growth_rate}")
        self.in_channels = int(in_channels)
        self.growth_rate = int(growth_rate)
        self.num_units = int(num_units)
        self.out_channels = in_channels + num_units * growth_rate

        rngs = spawn(ensure_rng(rng), num_units)
        self.units: List[_DenseUnit] = []
        channels = in_channels
        for i in range(num_units):
            unit = _DenseUnit(channels, growth_rate, use_batchnorm=use_batchnorm,
                              rng=rngs[i], name=f"unit{i}")
            self.units.append(unit)
            self.add_child(unit)
            channels += growth_rate

        self._unit_input_channels: List[int] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        features = as_compute(x)
        self._unit_input_channels = []
        for unit in self.units:
            self._unit_input_channels.append(features.shape[1])
            new_features = unit.forward(features)
            features = np.concatenate([features, new_features], axis=1)
        return features

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._unit_input_channels:
            raise RuntimeError("backward called before forward on DenseBlock")
        grad_features = np.asarray(grad_out, dtype=np.float64)
        # Walk the units in reverse, peeling off the gradient of each unit's
        # contribution and adding its input gradient back onto the stack.
        for unit, in_ch in zip(reversed(self.units), reversed(self._unit_input_channels)):
            grad_existing = grad_features[:, :in_ch]
            grad_new = grad_features[:, in_ch:]
            grad_unit_input = unit.backward(grad_new)
            grad_features = grad_existing + grad_unit_input
        return grad_features

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (self.out_channels, h, w)

    def __repr__(self) -> str:
        return (
            f"DenseBlock(in={self.in_channels}, growth={self.growth_rate}, "
            f"units={self.num_units}, out={self.out_channels}, name={self.name!r})"
        )


class TransitionLayer(Layer):
    """DenseNet transition: BN-ReLU-1×1 conv (channel compression) + 2×2 average pool."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        use_batchnorm: bool = True,
        rng: RngLike = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if in_channels <= 0 or out_channels <= 0:
            raise ConfigurationError(
                f"TransitionLayer requires positive channel counts, got "
                f"in={in_channels}, out={out_channels}"
            )
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)

        layers: List[Layer] = []
        if use_batchnorm:
            layers.append(BatchNorm2D(in_channels, name="bn"))
        layers.append(ReLU(name="relu"))
        layers.append(
            Conv2D(in_channels, out_channels, 1, stride=1, padding=0,
                   use_bias=not use_batchnorm, rng=rng, name="conv")
        )
        layers.append(AvgPool2D(kernel_size=2, stride=2, name="pool"))
        self.body = self.add_child(Sequential(layers, name="body"))

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.body.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.body.backward(grad_out)

    def output_shape(self, input_shape):
        return self.body.output_shape(tuple(input_shape))

    def __repr__(self) -> str:
        return (
            f"TransitionLayer(in={self.in_channels}, out={self.out_channels}, "
            f"name={self.name!r})"
        )
