"""Layer catalogue of the numpy deep-learning substrate."""

from .activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .blocks import DenseBlock, ResidualBlock, TransitionLayer
from .container import Sequential
from .conv import Conv2D
from .dense import Dense
from .dropout import Dropout
from .normalization import BatchNorm1D, BatchNorm2D
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .reshape import Flatten

__all__ = [
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "Sequential",
    "ResidualBlock",
    "DenseBlock",
    "TransitionLayer",
]
