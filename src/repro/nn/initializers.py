"""Weight initialization schemes.

Initializers are small callables that take a shape and an RNG and return a
filled array.  Layers accept either an initializer instance or its registry
name (``"he_normal"``, ``"glorot_uniform"``, ...), mirroring the ergonomics of
mainstream frameworks so the model-zoo code stays terse.
"""

from __future__ import annotations

from typing import Dict, Sequence, Type

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng

__all__ = [
    "Initializer",
    "Zeros",
    "Ones",
    "Constant",
    "RandomNormal",
    "RandomUniform",
    "GlorotUniform",
    "GlorotNormal",
    "HeNormal",
    "HeUniform",
    "get_initializer",
]


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute fan-in/fan-out for dense ``(in, out)`` and conv ``(out, in, kh, kw)`` shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


class Initializer:
    """Base class for weight initializers."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Zeros(Initializer):
    """Fill with zeros (the conventional bias initializer)."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        return np.zeros(shape, dtype=np.float64)


class Ones(Initializer):
    """Fill with ones (the conventional batch-norm scale initializer)."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        return np.ones(shape, dtype=np.float64)


class Constant(Initializer):
    """Fill with a fixed value."""

    def __init__(self, value: float):
        self.value = float(value)

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        return np.full(shape, self.value, dtype=np.float64)


class RandomNormal(Initializer):
    """Gaussian initializer with fixed mean and standard deviation."""

    def __init__(self, mean: float = 0.0, std: float = 0.05):
        if std < 0:
            raise ConfigurationError(f"std must be non-negative, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        return ensure_rng(rng).normal(self.mean, self.std, size=shape)


class RandomUniform(Initializer):
    """Uniform initializer on ``[low, high)``."""

    def __init__(self, low: float = -0.05, high: float = 0.05):
        if high < low:
            raise ConfigurationError(f"high must be >= low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        return ensure_rng(rng).uniform(self.low, self.high, size=shape)


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform initializer, suited to tanh/sigmoid networks."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        fan_in, fan_out = _fan_in_out(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return ensure_rng(rng).uniform(-limit, limit, size=shape)


class GlorotNormal(Initializer):
    """Glorot/Xavier normal initializer."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        fan_in, fan_out = _fan_in_out(shape)
        std = np.sqrt(2.0 / (fan_in + fan_out))
        return ensure_rng(rng).normal(0.0, std, size=shape)


class HeNormal(Initializer):
    """He normal initializer, suited to ReLU networks (the library default)."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        fan_in, _ = _fan_in_out(shape)
        std = np.sqrt(2.0 / max(fan_in, 1))
        return ensure_rng(rng).normal(0.0, std, size=shape)


class HeUniform(Initializer):
    """He uniform initializer."""

    def __call__(self, shape: Sequence[int], rng: RngLike = None) -> np.ndarray:
        fan_in, _ = _fan_in_out(shape)
        limit = np.sqrt(6.0 / max(fan_in, 1))
        return ensure_rng(rng).uniform(-limit, limit, size=shape)


_REGISTRY: Dict[str, Type[Initializer]] = {
    "zeros": Zeros,
    "ones": Ones,
    "random_normal": RandomNormal,
    "random_uniform": RandomUniform,
    "glorot_uniform": GlorotUniform,
    "glorot_normal": GlorotNormal,
    "he_normal": HeNormal,
    "he_uniform": HeUniform,
}


def get_initializer(spec: "str | Initializer") -> Initializer:
    """Resolve an initializer from an instance or a registry name."""
    if isinstance(spec, Initializer):
        return spec
    if isinstance(spec, str):
        key = spec.lower()
        if key not in _REGISTRY:
            raise ConfigurationError(
                f"unknown initializer {spec!r}; available: {sorted(_REGISTRY)}"
            )
        return _REGISTRY[key]()
    raise ConfigurationError(f"initializer must be a name or Initializer, got {type(spec)!r}")
