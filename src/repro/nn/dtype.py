"""Compute-dtype policy for the numerical substrate.

The substrate serves two masters with different numerical needs:

* **Training and gradient checking** want float64: central finite differences
  at ``eps = 1e-5`` lose all signal in float32, and the test suite's gradient
  checks are the substrate's correctness anchor.
* **Frozen-backbone extraction** (``collect_activations`` →
  ``layer_distributions`` → the serving layer's batched extraction) is pure
  inference over immutable parameters.  float32 halves memory traffic through
  the im2col/matmul hot path at an accuracy cost far below the probe
  distributions' meaningful resolution.

This module makes that split explicit instead of implicit.  The *compute
dtype* is a thread-local setting (each serving/engine thread gets its own)
whose default is float64 — training, gradient checks, and direct layer calls
are bit-for-bit unchanged.  Note that the extraction *entry points*
(``SoftmaxInstrumentedModel`` / ``DeepMorph`` / newly saved artifacts) opt
into float32 themselves via ``inference_dtype="float32"``; it is their
default, not this module's:

>>> from repro.nn import dtype as dt
>>> with dt.autocast("float32"):
...     y = model.forward(x)          # runs in float32
>>> z = model.forward(x)              # back to float64

Layers call :func:`as_compute` on their forward inputs and
:func:`match_dtype` on their parameters, so the active policy flows through a
whole model without any layer knowing about it.  Backward passes and parameter
storage stay float64 unconditionally — the policy only ever widens or narrows
the *forward* arithmetic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "resolve_dtype",
    "compute_dtype",
    "set_compute_dtype",
    "autocast",
    "as_compute",
    "match_dtype",
    "policy_float",
]

DTypeLike = Union[str, type, np.dtype, None]

DEFAULT_DTYPE = np.dtype(np.float64)
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_state = threading.local()


def resolve_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalize a dtype spec (``"float32"``, ``np.float64``, ...) to a supported dtype.

    ``None`` resolves to :data:`DEFAULT_DTYPE`.  Anything that is not float32
    or float64 raises :class:`~repro.exceptions.ConfigurationError` — the
    substrate deliberately supports exactly these two precisions.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ConfigurationError(f"unrecognized dtype {dtype!r}") from exc
    if resolved not in SUPPORTED_DTYPES:
        raise ConfigurationError(
            f"compute dtype must be float32 or float64, got {resolved.name!r}"
        )
    return resolved


def compute_dtype() -> np.dtype:
    """The dtype forward passes run in on the calling thread."""
    return getattr(_state, "dtype", DEFAULT_DTYPE)


def set_compute_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the calling thread's compute dtype (``None`` restores the default)."""
    resolved = resolve_dtype(dtype)
    _state.dtype = resolved
    return resolved


@contextmanager
def autocast(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Run the enclosed forward passes in ``dtype`` on the calling thread."""
    resolved = resolve_dtype(dtype)
    previous = compute_dtype()
    _state.dtype = resolved
    try:
        yield resolved
    finally:
        _state.dtype = previous


def as_compute(x) -> np.ndarray:
    """Coerce an array-like to the active compute dtype (no copy when it matches)."""
    arr = np.asarray(x)
    target = compute_dtype()
    if arr.dtype == target:
        return arr
    return arr.astype(target)


def policy_float(x) -> np.ndarray:
    """Coerce an array-like to a supported floating dtype without forcing a cast.

    Arrays already in float32 or float64 pass through untouched — a float32
    serving pipeline must not pay a float64 round-trip at every boundary that
    merely needs "some float" input; everything else (ints, lists, ...) is
    converted to the calling thread's active :func:`compute_dtype`.
    """
    arr = np.asarray(x)
    if arr.dtype in SUPPORTED_DTYPES:
        return arr
    return arr.astype(compute_dtype())


def match_dtype(param: np.ndarray, like: np.ndarray) -> np.ndarray:
    """View a (float64) parameter in the dtype of an activation, copying only on mismatch.

    Used by layers to pull weights into the active precision without touching
    the stored parameter: optimizers and serialization always see float64.
    """
    if param.dtype == like.dtype:
        return param
    return param.astype(like.dtype)
