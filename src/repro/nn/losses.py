"""Loss functions.

A loss object exposes ``forward(logits_or_probs, targets) -> float`` and
``backward() -> np.ndarray`` (the gradient with respect to the predictions
passed to the most recent ``forward``).  Targets are integer class labels for
classification losses and float arrays for regression losses.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from . import functional as F

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "NegativeLogLikelihood", "get_loss"]


class Loss:
    """Base class of loss functions."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy over integer class labels.

    Expects raw logits of shape ``(batch, num_classes)``.  The fusion keeps the
    backward pass numerically stable (``softmax(logits) - onehot(targets)``).

    Parameters
    ----------
    label_smoothing:
        Optional label smoothing factor in ``[0, 1)``; 0 disables smoothing.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ConfigurationError(
                f"label_smoothing must lie in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = float(label_smoothing)
        self._probs: Optional[np.ndarray] = None
        self._target_dist: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"targets must be 1-D with the same batch size as logits, got "
                f"targets {targets.shape} vs logits {logits.shape}"
            )
        num_classes = logits.shape[1]
        target_dist = F.one_hot(targets.astype(int), num_classes)
        if self.label_smoothing > 0.0:
            target_dist = (
                (1.0 - self.label_smoothing) * target_dist
                + self.label_smoothing / num_classes
            )

        log_probs = F.log_softmax(logits, axis=1)
        self._probs = np.exp(log_probs)
        self._target_dist = target_dist
        return float(-(target_dist * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._target_dist is None:
            raise RuntimeError("backward called before forward on SoftmaxCrossEntropy")
        batch = self._probs.shape[0]
        return (self._probs - self._target_dist) / batch


class NegativeLogLikelihood(Loss):
    """Cross-entropy over *probabilities* (e.g. the output of a Softmax layer)."""

    def __init__(self, eps: float = 1e-12):
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._probs: Optional[np.ndarray] = None
        self._onehot: Optional[np.ndarray] = None

    def forward(self, probs: np.ndarray, targets: np.ndarray) -> float:
        probs = np.asarray(probs, dtype=np.float64)
        targets = np.asarray(targets)
        if probs.ndim != 2:
            raise ShapeError(f"probs must be 2-D (batch, classes), got shape {probs.shape}")
        onehot = F.one_hot(targets.astype(int), probs.shape[1])
        self._probs = probs
        self._onehot = onehot
        picked = np.clip((probs * onehot).sum(axis=1), self.eps, None)
        return float(-np.log(picked).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._onehot is None:
            raise RuntimeError("backward called before forward on NegativeLogLikelihood")
        batch = self._probs.shape[0]
        picked = np.clip(self._probs, self.eps, None)
        return -(self._onehot / picked) / batch


class MeanSquaredError(Loss):
    """Mean squared error over arbitrary-shape float targets."""

    def __init__(self):
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match targets {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff ** 2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward on MeanSquaredError")
        return 2.0 * self._diff / self._diff.size


_REGISTRY: Dict[str, Type[Loss]] = {
    "softmax_cross_entropy": SoftmaxCrossEntropy,
    "cross_entropy": SoftmaxCrossEntropy,
    "nll": NegativeLogLikelihood,
    "mse": MeanSquaredError,
}


def get_loss(spec: "str | Loss") -> Loss:
    """Resolve a loss from an instance or a registry name."""
    if isinstance(spec, Loss):
        return spec
    if isinstance(spec, str):
        key = spec.lower()
        if key not in _REGISTRY:
            raise ConfigurationError(f"unknown loss {spec!r}; available: {sorted(_REGISTRY)}")
        return _REGISTRY[key]()
    raise ConfigurationError(f"loss must be a name or Loss instance, got {type(spec)!r}")
