"""Parameter and layer abstractions for the numpy deep-learning substrate.

The substrate uses explicit layer-wise backpropagation rather than a taped
autograd engine: every :class:`Layer` implements ``forward`` and ``backward``
and owns its :class:`Parameter` objects.  Composite layers (sequential
containers, residual blocks, dense blocks) orchestrate their children's
forward/backward calls, which keeps the data-flow of a model completely
explicit — exactly the property DeepMorph's footprint extraction relies on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = ["Parameter", "Layer", "ParamDict"]


class Parameter:
    """A trainable array together with its accumulated gradient.

    Attributes
    ----------
    data:
        The parameter values, updated in place by optimizers.
    grad:
        The gradient accumulated by the most recent backward pass, or ``None``
        if no backward pass has run since the last :meth:`zero_grad`.
    name:
        A human-readable name used in summaries and serialization.
    trainable:
        When ``False``, optimizers skip the parameter (used to freeze the
        backbone while training auxiliary softmax probes).
    """

    def __init__(self, data: np.ndarray, name: str = "param", trainable: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulated gradient, validating its shape."""
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name!r} shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape}, trainable={self.trainable})"


ParamDict = Dict[str, Parameter]


class Layer:
    """Base class of every layer in the substrate.

    Subclasses implement :meth:`forward` and :meth:`backward`.  A layer may be
    a *leaf* (owns parameters directly) or a *composite* (owns child layers);
    :meth:`parameters` and :meth:`named_layers` traverse both.

    The ``training`` flag distinguishes train-time behaviour (dropout active,
    batch-norm uses batch statistics) from inference behaviour.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__.lower()
        self.training = True
        self._params: ParamDict = {}
        self._children: "List[Layer]" = []

    # -- construction -------------------------------------------------------

    def add_parameter(self, key: str, param: Parameter) -> Parameter:
        """Register a parameter under ``key`` and return it."""
        if key in self._params:
            raise ConfigurationError(f"parameter {key!r} already registered on {self.name!r}")
        self._params[key] = param
        return param

    def add_child(self, layer: "Layer") -> "Layer":
        """Register a child layer (for composite layers) and return it."""
        self._children.append(layer)
        return layer

    # -- computation ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given the loss gradient w.r.t. the output, accumulate parameter
        gradients and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def cache_for_backward(self, value):
        """Return ``value`` in training mode, ``None`` in eval mode.

        Layers route every forward-pass tensor they keep for backward through
        this helper, so inference-mode forwards (the serving extraction path)
        never pin activation-sized buffers between requests.  Backward after
        an eval-mode forward then fails its existing ``None`` guard.
        """
        return value if self.training else None

    # -- traversal ------------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        """All parameters of this layer and its descendants, depth-first."""
        params = list(self._params.values())
        for child in self._children:
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        base = f"{prefix}{self.name}"
        for key, param in self._params.items():
            yield f"{base}.{key}", param
        for child in self._children:
            yield from child.named_parameters(prefix=f"{base}.")

    def children(self) -> List["Layer"]:
        """Direct child layers."""
        return list(self._children)

    def named_layers(self, prefix: str = "") -> Iterator[Tuple[str, "Layer"]]:
        """Yield ``(qualified_name, layer)`` for this layer and all descendants."""
        base = f"{prefix}{self.name}"
        yield base, self
        for child in self._children:
            yield from child.named_layers(prefix=f"{base}.")

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        return sum(
            p.size for p in self.parameters() if (p.trainable or not trainable_only)
        )

    # -- mode / gradient management -------------------------------------------

    def train(self, mode: bool = True) -> "Layer":
        """Set training mode on this layer and all descendants."""
        self.training = mode
        for child in self._children:
            child.train(mode)
        return self

    def eval(self) -> "Layer":
        """Set inference mode on this layer and all descendants."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Layer":
        """Mark every parameter as non-trainable (optimizers will skip them)."""
        for param in self.parameters():
            param.trainable = False
        return self

    def unfreeze(self) -> "Layer":
        """Mark every parameter as trainable again."""
        for param in self.parameters():
            param.trainable = True
        return self

    # -- introspection ---------------------------------------------------------

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape (excluding the batch dimension) produced for ``input_shape``.

        The default implementation runs a tiny forward pass in eval mode; leaf
        layers with cheap shape arithmetic may override it.
        """
        was_training = self.training
        self.eval()
        try:
            probe = np.zeros((1,) + tuple(input_shape), dtype=np.float64)
            out = self.forward(probe)
        finally:
            self.train(was_training)
        return tuple(out.shape[1:])

    def summary(self, input_shape: Optional[Tuple[int, ...]] = None) -> str:
        """Human-readable description of the layer tree."""
        lines = [f"{type(self).__name__} ({self.name})"]
        for qual_name, layer in self.named_layers():
            if layer is self:
                continue
            own = sum(p.size for p in layer._params.values())
            lines.append(f"  {qual_name:<40s} {type(layer).__name__:<20s} params={own}")
        lines.append(f"total parameters: {self.num_parameters()}")
        if input_shape is not None:
            lines.append(f"output shape for {input_shape}: {self.output_shape(input_shape)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, params={self.num_parameters()})"
