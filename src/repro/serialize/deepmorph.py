"""Persistence of a *fitted* DeepMorph instance.

A fitted DeepMorph is the expensive artifact of the pipeline: the frozen
target model, one trained softmax probe per instrumented layer, and the
per-class execution patterns.  Refitting it costs many instrumented forward
and probe-training passes, so the serving layer (:mod:`repro.serve`) persists
the whole fitted state once and reloads it in milliseconds.

Everything is stored in a single ``.npz`` file: a JSON ``__config__`` entry
holds every scalar (hyper-parameters, probe accuracies, pattern statistics,
the classifier weights) and namespaced arrays hold the model parameters
(``model/<name>``), probe parameters (``probe/<layer>/weight|bias``), and
pattern arrays (``pattern/<class>/...``).  No pickle is involved — the file
stays inspectable and loadable with ``allow_pickle=False``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..core.classifier import DefectClassifierConfig
from ..core.diagnosis import DeepMorph
from ..core.instrument import SoftmaxInstrumentedModel
from ..core.patterns import ClassExecutionPattern, PatternLibrary
from ..defects.spec import DefectType
from ..exceptions import NotFittedError, SerializationError
from ..models.registry import build_from_config
from ..nn.layers import Dense
from .persistence import _model_parameter_arrays

__all__ = ["save_deepmorph", "load_deepmorph"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_deepmorph(morph: DeepMorph, path: PathLike) -> Path:
    """Save a fitted :class:`DeepMorph` (model, probes, patterns) to ``path``."""
    if not morph.is_fitted:
        raise NotFittedError("only a fitted DeepMorph can be saved; call fit() first")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    instrumented = morph.instrumented
    library = morph.patterns
    arrays: Dict[str, np.ndarray] = {}
    for name, param in _model_parameter_arrays(morph.model).items():
        arrays[f"model/{name}"] = param

    probes_config: Dict[str, Dict] = {}
    for layer_name in instrumented.layer_names:
        probe = instrumented.probes[layer_name]
        if not probe.is_fitted:
            raise SerializationError(f"probe for layer {layer_name!r} is not fitted")
        arrays[f"probe/{layer_name}/weight"] = probe._dense.weight.data
        if probe._dense.bias is not None:
            arrays[f"probe/{layer_name}/bias"] = probe._dense.bias.data
        probes_config[layer_name] = {
            "training_accuracy": probe.training_accuracy,
            "validation_accuracy": probe.validation_accuracy,
        }

    patterns_config: Dict[str, Dict] = {}
    for class_id, pattern in library.patterns.items():
        key = str(int(class_id))
        arrays[f"pattern/{key}/mean_trajectory"] = pattern.mean_trajectory
        arrays[f"pattern/{key}/mean_confidence"] = pattern.mean_confidence
        if pattern.member_trajectories is not None:
            arrays[f"pattern/{key}/members"] = pattern.member_trajectories
        patterns_config[key] = {
            "dispersion": pattern.dispersion,
            "mean_final_confidence": pattern.mean_final_confidence,
            "mean_entropy": pattern.mean_entropy,
            "support": pattern.support,
            "member_nn_scale": pattern.member_nn_scale,
        }

    classifier = morph.case_classifier.config
    config = {
        "format_version": _FORMAT_VERSION,
        "model": morph.model.config(),
        "deepmorph": {
            "probe_epochs": morph.probe_epochs,
            "probe_learning_rate": morph.probe_learning_rate,
            "probe_batch_size": morph.probe_batch_size,
            "correct_only_patterns": morph.correct_only_patterns,
            "late_layer_emphasis": morph.late_layer_emphasis,
            "max_spatial": morph.max_spatial,
        },
        "instrumented": {
            "layer_names": list(instrumented.layer_names),
            "probe_validation_fraction": instrumented.probe_validation_fraction,
            "inference_dtype": instrumented.inference_dtype.name,
            "probes": probes_config,
        },
        "patterns": {
            "correct_only": library.correct_only,
            "late_layer_emphasis": library.late_layer_emphasis,
            "nn_layer_emphasis": library.nn_layer_emphasis,
            "batch_size": library.batch_size,
            "global_mean_entropy": library.global_mean_entropy,
            "global_mean_dispersion": library.global_mean_dispersion,
            "training_inconsistency": library.training_inconsistency(),
            "classes": patterns_config,
        },
        "classifier": {
            "weights": {d.value: list(w) for d, w in classifier.weights.items()},
            "soft_assignment": classifier.soft_assignment,
            "temperature": classifier.temperature,
        },
    }
    np.savez_compressed(path, __config__=np.array(json.dumps(config)), **arrays)
    return path


def _restore_model(config: Dict, arrays: Dict[str, np.ndarray]):
    model = build_from_config(config["model"])
    saved = {
        key[len("model/"):]: value for key, value in arrays.items()
        if key.startswith("model/")
    }
    for name, param in model.named_parameters():
        if name not in saved:
            raise SerializationError(f"saved DeepMorph is missing model parameter {name!r}")
        data = saved.pop(name)
        if data.shape != param.data.shape:
            raise SerializationError(
                f"model parameter {name!r} has shape {data.shape} in the file but the "
                f"rebuilt model expects {param.data.shape}"
            )
        param.data = data.astype(np.float64)
    if saved:
        raise SerializationError(
            f"saved DeepMorph contains unknown model parameters: {sorted(saved)}"
        )
    model.eval()
    return model


def _restore_instrumented(
    model, config: Dict, hyper: Dict, arrays: Dict[str, np.ndarray]
) -> SoftmaxInstrumentedModel:
    instrumented = SoftmaxInstrumentedModel(
        model,
        layer_names=config["layer_names"],
        probe_epochs=hyper["probe_epochs"],
        probe_batch_size=hyper["probe_batch_size"],
        probe_learning_rate=hyper["probe_learning_rate"],
        max_spatial=hyper["max_spatial"],
        probe_validation_fraction=config["probe_validation_fraction"],
        # Artifacts written before the dtype policy existed were built and
        # validated under float64 extraction; keep serving them exactly as
        # they behaved then.  float32 requires the artifact to say so.
        inference_dtype=config.get("inference_dtype", "float64"),
    )
    for layer_name in instrumented.layer_names:
        weight_key = f"probe/{layer_name}/weight"
        if weight_key not in arrays:
            raise SerializationError(f"saved DeepMorph is missing probe weights for {layer_name!r}")
        weight = arrays[weight_key].astype(np.float64)
        bias = arrays.get(f"probe/{layer_name}/bias")
        probe = instrumented.probes[layer_name]
        dense = Dense(
            weight.shape[0],
            weight.shape[1],
            use_bias=bias is not None,
            name=f"probe_{layer_name}",
        )
        dense.weight.data = weight
        if bias is not None:
            dense.bias.data = bias.astype(np.float64)
        dense.eval()  # inference-only: never retain prediction batches
        probe._dense = dense
        stats = config["probes"].get(layer_name, {})
        probe.training_accuracy = stats.get("training_accuracy")
        probe.validation_accuracy = stats.get("validation_accuracy")
    instrumented._fitted = True
    return instrumented


def _restore_patterns(
    instrumented: SoftmaxInstrumentedModel, config: Dict, arrays: Dict[str, np.ndarray]
) -> PatternLibrary:
    library = PatternLibrary(
        instrumented,
        correct_only=config["correct_only"],
        late_layer_emphasis=config["late_layer_emphasis"],
        nn_layer_emphasis=config["nn_layer_emphasis"],
        batch_size=config["batch_size"],
    )
    for key, stats in config["classes"].items():
        class_id = int(key)
        traj_key = f"pattern/{key}/mean_trajectory"
        if traj_key not in arrays:
            raise SerializationError(f"saved DeepMorph is missing the pattern for class {class_id}")
        members = arrays.get(f"pattern/{key}/members")
        library.patterns[class_id] = ClassExecutionPattern(
            class_id=class_id,
            mean_trajectory=arrays[traj_key].astype(np.float64),
            mean_confidence=arrays[f"pattern/{key}/mean_confidence"].astype(np.float64),
            dispersion=float(stats["dispersion"]),
            mean_final_confidence=float(stats["mean_final_confidence"]),
            mean_entropy=float(stats["mean_entropy"]),
            support=int(stats["support"]),
            member_trajectories=members.astype(np.float64) if members is not None else None,
            member_nn_scale=float(stats["member_nn_scale"]),
        )
    if not library.patterns:
        raise SerializationError("saved DeepMorph contains no execution patterns")
    library.global_mean_entropy = config["global_mean_entropy"]
    library.global_mean_dispersion = config["global_mean_dispersion"]
    library._training_inconsistency = float(config["training_inconsistency"])
    library._fitted = True
    return library


def load_deepmorph(path: PathLike) -> DeepMorph:
    """Rebuild a fitted :class:`DeepMorph` saved with :func:`save_deepmorph`.

    The loaded instance diagnoses new inputs exactly like the original (the
    probes and patterns are restored bit-for-bit); only the training dataset
    reference is dropped, since diagnosis does not need it.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"DeepMorph file {path} does not exist")
    with np.load(path, allow_pickle=False) as payload:
        if "__config__" not in payload:
            raise SerializationError(f"{path} is not a serialized DeepMorph (missing config)")
        config = json.loads(str(payload["__config__"]))
        arrays = {key: payload[key] for key in payload.files if key != "__config__"}

    version = config.get("format_version")
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"{path} uses DeepMorph format version {version!r}; this build reads {_FORMAT_VERSION}"
        )
    hyper = config["deepmorph"]
    classifier_cfg = config["classifier"]

    model = _restore_model(config, arrays)
    instrumented = _restore_instrumented(model, config["instrumented"], hyper, arrays)
    library = _restore_patterns(instrumented, config["patterns"], arrays)

    morph = DeepMorph(
        probe_epochs=hyper["probe_epochs"],
        probe_learning_rate=hyper["probe_learning_rate"],
        probe_batch_size=hyper["probe_batch_size"],
        classifier_config=DefectClassifierConfig(
            weights={
                DefectType.from_string(name): tuple(values)
                for name, values in classifier_cfg["weights"].items()
            },
            soft_assignment=classifier_cfg["soft_assignment"],
            temperature=classifier_cfg["temperature"],
        ),
        correct_only_patterns=hyper["correct_only_patterns"],
        late_layer_emphasis=hyper["late_layer_emphasis"],
        max_spatial=hyper["max_spatial"],
        # Keep the facade's policy in lockstep with the restored instrumented
        # model, so a later refit extracts at the precision the artifact chose.
        inference_dtype=instrumented.inference_dtype.name,
    )
    morph.model = model
    morph.instrumented = instrumented
    morph.patterns = library
    return morph
