"""Persistence of models, footprints, defect reports, and fitted DeepMorph instances."""

from .deepmorph import load_deepmorph, save_deepmorph
from .persistence import (
    load_footprints,
    load_model,
    load_report,
    save_footprints,
    save_model,
    save_report,
)

__all__ = [
    "save_model",
    "load_model",
    "save_footprints",
    "load_footprints",
    "save_report",
    "load_report",
    "save_deepmorph",
    "load_deepmorph",
]
