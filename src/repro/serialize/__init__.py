"""Persistence of models, footprints, and defect reports."""

from .persistence import (
    load_footprints,
    load_model,
    load_report,
    save_footprints,
    save_model,
    save_report,
)

__all__ = [
    "save_model",
    "load_model",
    "save_footprints",
    "load_footprints",
    "save_report",
    "load_report",
]
