"""Persistence of models, footprints, pattern libraries, and reports.

Artifacts are stored as plain ``.npz`` + JSON-compatible metadata so they can
be inspected without the library.  Model serialization saves the architecture
config (enough to rebuild the layer tree through the registry) plus every
named parameter; loading rebuilds the model and copies the parameters back in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..core.classifier import DefectReport
from ..core.footprint import Footprint
from ..defects.spec import DefectType
from ..exceptions import SerializationError
from ..models.base import ClassifierModel
from ..models.registry import build_from_config

__all__ = [
    "save_model",
    "load_model",
    "save_footprints",
    "load_footprints",
    "save_report",
    "load_report",
]

PathLike = Union[str, Path]


def _model_parameter_arrays(model: ClassifierModel) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        if name in arrays:
            raise SerializationError(f"duplicate parameter name {name!r} during save")
        arrays[name] = param.data
    return arrays


def save_model(model: ClassifierModel, path: PathLike) -> Path:
    """Save a model's architecture config and parameters to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = _model_parameter_arrays(model)
    config_json = json.dumps(model.config())
    np.savez_compressed(path, __config__=np.array(config_json), **arrays)
    return path


def load_model(path: PathLike) -> ClassifierModel:
    """Rebuild a model saved with :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"model file {path} does not exist")
    with np.load(path, allow_pickle=False) as payload:
        if "__config__" not in payload:
            raise SerializationError(f"{path} is not a serialized repro model (missing config)")
        config = json.loads(str(payload["__config__"]))
        model = build_from_config(config)
        saved = {key: payload[key] for key in payload.files if key != "__config__"}

    for name, param in model.named_parameters():
        if name not in saved:
            raise SerializationError(f"saved model is missing parameter {name!r}")
        data = saved.pop(name)
        if data.shape != param.data.shape:
            raise SerializationError(
                f"parameter {name!r} has shape {data.shape} in the file but the rebuilt "
                f"model expects {param.data.shape}"
            )
        param.data = data.astype(np.float64)
    if saved:
        raise SerializationError(f"saved model contains unknown parameters: {sorted(saved)}")
    return model


def save_footprints(footprints: List[Footprint], path: PathLike) -> Path:
    """Save a list of footprints to ``path`` (``.npz``)."""
    if not footprints:
        raise SerializationError("cannot save an empty list of footprints")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    shapes = {fp.trajectory.shape for fp in footprints}
    if len(shapes) != 1:
        raise SerializationError(f"footprints have inconsistent trajectory shapes: {shapes}")
    trajectories = np.stack([fp.trajectory for fp in footprints])
    final_probs = np.stack([fp.final_probs for fp in footprints])
    predicted = np.array([fp.predicted for fp in footprints], dtype=np.int64)
    true_labels = np.array(
        [fp.true_label if fp.true_label is not None else -1 for fp in footprints],
        dtype=np.int64,
    )
    layer_names = json.dumps(list(footprints[0].layer_names or []))
    np.savez_compressed(
        path,
        trajectories=trajectories,
        final_probs=final_probs,
        predicted=predicted,
        true_labels=true_labels,
        layer_names=np.array(layer_names),
    )
    return path


def load_footprints(path: PathLike) -> List[Footprint]:
    """Load footprints saved with :func:`save_footprints`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"footprint file {path} does not exist")
    with np.load(path, allow_pickle=False) as payload:
        required = {"trajectories", "final_probs", "predicted", "true_labels"}
        missing = required - set(payload.files)
        if missing:
            raise SerializationError(f"{path} is missing arrays: {sorted(missing)}")
        trajectories = payload["trajectories"]
        final_probs = payload["final_probs"]
        predicted = payload["predicted"]
        true_labels = payload["true_labels"]
        layer_names = tuple(json.loads(str(payload["layer_names"]))) if "layer_names" in payload else None

    footprints: List[Footprint] = []
    for i in range(trajectories.shape[0]):
        label = int(true_labels[i])
        footprints.append(Footprint(
            trajectory=trajectories[i],
            final_probs=final_probs[i],
            predicted=int(predicted[i]),
            true_label=label if label >= 0 else None,
            layer_names=layer_names,
        ))
    return footprints


def save_report(report: DefectReport, path: PathLike) -> Path:
    """Save a defect report (ratios, counts, metadata) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
    return path


def load_report(path: PathLike) -> Dict:
    """Load a report saved with :func:`save_report` (returns the plain dict form)."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"report file {path} does not exist")
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    required = {"ratios", "counts", "num_cases"}
    missing = required - set(payload)
    if missing:
        raise SerializationError(f"{path} is not a serialized defect report (missing {sorted(missing)})")
    valid = {d.value for d in DefectType}
    unknown = set(payload["ratios"]) - valid
    if unknown:
        raise SerializationError(f"report contains unknown defect types: {sorted(unknown)}")
    return payload
