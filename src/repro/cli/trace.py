"""``repro-trace``: render JSONL trace files exported by :mod:`repro.obs`.

Given a file produced by ``repro-serve --trace-jsonl`` (or a
:class:`~repro.obs.JsonlSpanExporter`), prints

* a per-stage **aggregate table** — count, total/mean/max wall time, and CPU
  time per span name — answering "where does a request's time go" across the
  whole file, and
* per-trace **span trees** (``--tree``) — each trace's spans indented under
  their parents with durations and attributes, answering it for one request.

Typical flow when chasing a latency regression::

    repro-serve --registry ./registry --async --trace-jsonl spans.jsonl
    # ... send traffic ...
    repro-trace spans.jsonl                 # aggregate: which stage dominates
    repro-trace spans.jsonl --tree --slowest 3   # drill into the outliers
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.export import load_jsonl
from .common import run_main

__all__ = ["main", "render_aggregate", "render_trace_tree"]

SpanRecord = Dict[str, object]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render span trees and per-stage timing tables from a JSONL trace file.",
    )
    parser.add_argument("path", help="JSONL trace file (one span object per line)")
    parser.add_argument(
        "--tree", action="store_true",
        help="print per-trace span trees in addition to the aggregate table",
    )
    parser.add_argument(
        "--trace-id", default=None,
        help="print only the span tree of this trace id (implies --tree)",
    )
    parser.add_argument(
        "--slowest", type=int, default=None, metavar="N",
        help="with --tree, print only the N slowest traces (by root duration)",
    )
    parser.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="maximum traces printed with --tree (default 20)",
    )
    return parser


def _fmt_seconds(value: Optional[object]) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 1.0:
        return f"{value:8.3f}s "
    return f"{value * 1e3:8.3f}ms"


def render_aggregate(records: Sequence[SpanRecord]) -> str:
    """The per-stage table: one row per span name, sorted by total wall time."""
    stages: Dict[str, Dict[str, float]] = {}
    for record in records:
        name = record.get("name")
        duration = record.get("duration_seconds")
        if not isinstance(name, str) or not isinstance(duration, (int, float)):
            continue
        stage = stages.setdefault(
            name, {"count": 0, "total": 0.0, "max": 0.0, "cpu": 0.0, "errors": 0}
        )
        stage["count"] += 1
        stage["total"] += float(duration)
        stage["max"] = max(stage["max"], float(duration))
        cpu = record.get("cpu_seconds")
        if isinstance(cpu, (int, float)):
            stage["cpu"] += float(cpu)
        if record.get("status") == "error":
            stage["errors"] += 1

    name_width = max([len(name) for name in stages] + [5])
    lines = [
        f"{'stage':<{name_width}}  {'count':>6}  {'total':>10}  {'mean':>10}  "
        f"{'max':>10}  {'cpu':>10}  {'errors':>6}",
    ]
    for name, stage in sorted(stages.items(), key=lambda item: -item[1]["total"]):
        count = int(stage["count"])
        lines.append(
            f"{name:<{name_width}}  {count:>6}  {_fmt_seconds(stage['total'])}  "
            f"{_fmt_seconds(stage['total'] / count)}  {_fmt_seconds(stage['max'])}  "
            f"{_fmt_seconds(stage['cpu'])}  {int(stage['errors']):>6}"
        )
    return "\n".join(lines)


def _group_traces(records: Sequence[SpanRecord]) -> "Dict[str, List[SpanRecord]]":
    traces: Dict[str, List[SpanRecord]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            traces.setdefault(trace_id, []).append(record)
    return traces


def _trace_root(spans: Sequence[SpanRecord]) -> SpanRecord:
    """The root-most span: no parent, or a parent not exported in this file."""
    span_ids = {span.get("span_id") for span in spans}
    for span in spans:
        if span.get("parent_id") is None:
            return span
    for span in spans:
        if span.get("parent_id") not in span_ids:
            return span
    return spans[0]


def render_trace_tree(trace_id: str, spans: Sequence[SpanRecord]) -> str:
    """One trace's spans as an indented tree with durations and attributes."""
    children: Dict[object, List[SpanRecord]] = {}
    span_ids = {span.get("span_id") for span in spans}
    root = _trace_root(spans)
    for span in spans:
        parent = span.get("parent_id")
        if span is not root and parent in span_ids:
            children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: float(span.get("start_monotonic") or 0.0))

    request_id = (root.get("attributes") or {}).get("request_id")  # type: ignore[union-attr]
    header = f"trace {trace_id}"
    if request_id:
        header += f"  request_id={request_id}"
    lines = [header]

    def emit(span: SpanRecord, depth: int) -> None:
        attributes = span.get("attributes") or {}
        shown = {
            key: value
            for key, value in attributes.items()  # type: ignore[union-attr]
            if key != "request_id"
        }
        attr_text = (
            " " + " ".join(f"{key}={value}" for key, value in sorted(shown.items()))
            if shown
            else ""
        )
        status = span.get("status")
        marker = " !" if status == "error" else ""
        lines.append(
            f"{'  ' * depth}{span.get('name')}  "
            f"{_fmt_seconds(span.get('duration_seconds')).strip()}{marker}{attr_text}"
        )
        if status == "error" and span.get("error"):
            lines.append(f"{'  ' * (depth + 1)}error: {span.get('error')}")
        for child in children.get(span.get("span_id"), []):
            emit(child, depth + 1)

    emit(root, 1)
    # Spans whose parents are missing from the file (dropped lines) still
    # deserve printing rather than silent omission.
    reachable = {id(root)}

    def collect(span: SpanRecord) -> None:
        for child in children.get(span.get("span_id"), []):
            reachable.add(id(child))
            collect(child)

    collect(root)
    orphans = [span for span in spans if id(span) not in reachable]
    for orphan in orphans:
        lines.append(
            f"  (orphan) {orphan.get('name')}  "
            f"{_fmt_seconds(orphan.get('duration_seconds')).strip()}"
        )
    return "\n".join(lines)


def _root_duration(spans: Sequence[SpanRecord]) -> float:
    duration = _trace_root(spans).get("duration_seconds")
    return float(duration) if isinstance(duration, (int, float)) else 0.0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    records = load_jsonl(args.path)
    if not records:
        print(f"no spans found in {args.path}")
        return 1
    traces = _group_traces(records)
    print(f"{len(records)} span(s) across {len(traces)} trace(s) in {args.path}")
    print()
    print(render_aggregate(records))

    if args.trace_id is not None:
        spans = traces.get(args.trace_id)
        if spans is None:
            print(f"\nunknown trace id {args.trace_id!r}")
            return 1
        print()
        print(render_trace_tree(args.trace_id, spans))
        return 0

    if args.tree:
        ordered: List[Tuple[str, List[SpanRecord]]] = sorted(
            traces.items(), key=lambda item: -_root_duration(item[1])
        )
        limit = args.slowest if args.slowest is not None else args.limit
        shown = ordered[: max(0, int(limit))]
        for trace_id, spans in shown:
            print()
            print(render_trace_tree(trace_id, spans))
        if len(ordered) > len(shown):
            print(f"\n... {len(ordered) - len(shown)} more trace(s); raise --limit to see them")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
