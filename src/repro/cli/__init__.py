"""Command-line entry points (``repro-train``, ``repro-inject``, ``repro-diagnose``, ``repro-table1``, ``repro-serve``)."""

from . import diagnose, inject, serve, table1, train

__all__ = ["train", "inject", "diagnose", "table1", "serve"]
