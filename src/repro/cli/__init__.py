"""Command-line entry points (``repro-train``, ``repro-inject``, ``repro-diagnose``, ``repro-table1``, ``repro-serve``, ``repro-trace``)."""

from . import diagnose, inject, serve, table1, trace, train

__all__ = ["train", "inject", "diagnose", "table1", "serve", "trace"]
