"""Command-line entry points (``repro-train``, ``repro-inject``, ``repro-diagnose``, ``repro-table1``)."""

from . import diagnose, inject, table1, train

__all__ = ["train", "inject", "diagnose", "table1"]
