"""``repro-inject``: run one defect-injection cell and print the diagnosis."""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from ..defects import DefectType
from ..experiments.runner import run_cell
from .common import add_settings_arguments, run_main, settings_from_args

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-inject",
        description=(
            "Inject one defect (ITD, UTD, or SD), train the model, run DeepMorph, "
            "and print the resulting defect ratios."
        ),
    )
    add_settings_arguments(parser)
    parser.add_argument(
        "--defect",
        required=True,
        choices=[d.value for d in DefectType.injectable()],
        help="defect type to inject",
    )
    parser.add_argument("--json", action="store_true", help="print the result as JSON")
    return parser


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_from_args(args)
    cell = run_cell(args.defect, settings)

    if args.json:
        print(json.dumps(cell.as_dict(), indent=2, sort_keys=True))
        return 0

    print(f"model:            {settings.model} on synthetic {settings.dataset}")
    print(f"injected defect:  {cell.injected_defect.value.upper()} ({cell.injection_description})")
    print(f"test accuracy:    {cell.test_accuracy:.3f}")
    print(f"faulty cases:     {cell.num_faulty_cases}")
    if cell.report is not None:
        print(f"diagnosis:        {cell.report.format_row()}")
        print(f"dominant defect:  {cell.report.dominant_defect.value.upper()}")
        match = cell.diagonal_correct()
        print(f"matches injection: {'yes' if match else 'no'}")
    else:
        print("diagnosis:        model produced no faulty cases; nothing to diagnose")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
