"""``repro-train``: train a model on a synthetic dataset and save it."""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..experiments.runner import make_dataset, make_model, train_model
from ..serialize import save_model
from ..training import evaluate
from .common import add_settings_arguments, run_main, settings_from_args

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description="Train one of the paper's model families on a synthetic dataset stand-in.",
    )
    add_settings_arguments(parser)
    parser.add_argument("--output", default="model.npz", help="where to save the trained model")
    return parser


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_from_args(args)

    _, train_data, test_data = make_dataset(settings)
    model = make_model(settings)
    print(f"training {settings.model} on synthetic {settings.dataset} "
          f"({len(train_data)} train / {len(test_data)} production examples)")
    train_accuracy = train_model(model, train_data, settings)
    _, test_accuracy = evaluate(model, test_data)
    path = save_model(model, args.output)
    print(f"final train accuracy: {train_accuracy:.3f}")
    print(f"production accuracy:  {test_accuracy:.3f}")
    print(f"model saved to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
