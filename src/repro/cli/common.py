"""Shared helpers for the command-line entry points."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..experiments.config import ExperimentSettings, preset

__all__ = ["add_settings_arguments", "settings_from_args", "run_main"]


def add_settings_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the experiment-settings flags shared by every command."""
    parser.add_argument(
        "--preset",
        default="default",
        choices=["default", "quick", "smoke", "paper"],
        help="experiment preset providing the base settings",
    )
    parser.add_argument("--model", default=None, help="model architecture (lenet, alexnet, resnet, densenet)")
    parser.add_argument("--dataset", default=None, choices=["mnist", "cifar"], help="dataset stand-in")
    parser.add_argument("--seed", type=int, default=None, help="master experiment seed")
    parser.add_argument("--epochs", type=int, default=None, help="training epochs of the target model")
    parser.add_argument("--train-per-class", type=int, default=None, help="training examples per class")
    parser.add_argument("--test-per-class", type=int, default=None, help="production examples per class")


def settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from parsed CLI flags."""
    settings = preset(args.preset)
    if getattr(args, "model", None):
        settings = settings.for_model(args.model)
    overrides = {}
    if getattr(args, "dataset", None):
        overrides["dataset"] = args.dataset
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "epochs", None) is not None:
        overrides["epochs"] = args.epochs
    if getattr(args, "train_per_class", None) is not None:
        overrides["train_per_class"] = args.train_per_class
    if getattr(args, "test_per_class", None) is not None:
        overrides["test_per_class"] = args.test_per_class
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)
    return settings


def run_main(main, argv: Optional[Sequence[str]] = None) -> int:
    """Uniform exception-to-exit-code handling for console entry points."""
    try:
        return int(main(argv) or 0)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return 130
