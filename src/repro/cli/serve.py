"""``repro-serve``: run the batched, cached diagnosis service over HTTP.

Typical flow: train a model and fit DeepMorph (``repro-train`` + the library
API), register the fitted instance in an artifact registry directory, then::

    repro-serve --registry ./registry --port 8421

and POST production batches to ``/diagnose``.  ``--async`` serves through
the scale-out asyncio gateway instead (``--replicas`` service shards,
``--max-inflight`` admission control, ``GET /metrics``); the default
threading server remains the compatibility path.  ``--list`` prints the
registry's contents without starting a server, and ``--bootstrap-demo`` fits
and registers a small demo model first so the quickstart works from an empty
directory.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .. import obs
from ..api import DiagnoserConfig
from ..resilience import configure_chaos
from ..serve import (
    ArtifactRegistry,
    DiagnosisService,
    MetricsRegistry,
    ReplicaPool,
    serve_forever,
    serve_gateway_forever,
)
from .common import add_settings_arguments, run_main, settings_from_args

__all__ = ["main"]

DEMO_MODEL_NAME = "demo"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve DeepMorph diagnoses for registered models over JSON/HTTP.",
    )
    add_settings_arguments(parser)
    parser.add_argument("--registry", required=True, help="artifact registry directory")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8421, help="bind port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2, help="async job worker threads")
    parser.add_argument(
        "--max-batch-cases", type=int, default=512,
        help="cases coalesced into one extraction batch",
    )
    parser.add_argument(
        "--batch-wait", type=float, default=0.005,
        help="seconds a request waits for co-travellers before extraction",
    )
    parser.add_argument(
        "--cache-size", type=int, default=4096,
        help="footprint cache capacity in cases (0 disables caching)",
    )
    parser.add_argument(
        "--async", action="store_true", dest="async_gateway",
        help="serve through the asyncio gateway (replica shards + admission control) "
             "instead of the thread-per-connection server",
    )
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="service replicas behind the async gateway (each with its own "
             "engine thread and cache; implies --async semantics only with --async)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="pool-wide in-flight request cap before the gateway sheds with 503 "
             "(default: replicas * max-queue-per-replica)",
    )
    parser.add_argument(
        "--max-queue-per-replica", type=int, default=8,
        help="in-flight requests one replica accepts before admission skips it",
    )
    parser.add_argument(
        "--inference-dtype", choices=("float32", "float64"), default=None,
        help="override the extraction precision of every loaded model "
             "(default: each artifact's own policy, float32 unless saved otherwise)",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="enable online drift monitoring: sliding-window drift scores and "
             "alert states on GET /metrics and GET /monitor",
    )
    parser.add_argument(
        "--drift-threshold", type=float, default=2.0,
        help="warn-level normalized-divergence threshold of the drift "
             "detector (critical fires at twice this value)",
    )
    parser.add_argument(
        "--monitor-window", type=int, default=2048,
        help="served cases kept per model in the drift window",
    )
    parser.add_argument(
        "--monitor-update-cases", type=int, default=0,
        help="labeled cases buffered before an incremental partial_fit update "
             "is applied and snapshotted to the registry (0 = observe-only)",
    )
    parser.add_argument(
        "--wire-codec", choices=("json", "binary"), default="json",
        help="default response encoding when a client sends no Accept header; "
             "per-request Content-Type/Accept negotiation always works, and "
             "json stays the compatibility default",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_only",
        help="print the registry contents and exit",
    )
    parser.add_argument(
        "--bootstrap-demo", action="store_true",
        help=f"train + fit + register a {DEMO_MODEL_NAME!r} model before serving "
             f"(uses the experiment preset flags)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC.json",
        help="arm the fault injector from a chaos spec file before serving "
             "(JSON: {\"seed\": n, \"plans\": [{\"site\": ..., \"mode\": ...}]}; "
             "reconfigure at runtime via POST /debug/chaos from loopback)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable request tracing: per-stage spans feed GET /debug/traces, "
             "per-stage latency histograms in GET /metrics, and structured "
             "JSON logs on stderr",
    )
    parser.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="also append every finished span to PATH as JSON lines "
             "(render with repro-trace; implies --trace)",
    )
    parser.add_argument("--verbose", action="store_true", help="log every HTTP request")
    return parser


def _bootstrap_demo(registry: ArtifactRegistry, args: argparse.Namespace) -> None:
    from ..experiments.runner import make_dataset, make_model, train_model

    settings = settings_from_args(args)
    print(f"bootstrapping demo artifact: {settings.model} on synthetic {settings.dataset} ...")
    _, train_data, _ = make_dataset(settings)
    model = make_model(settings)
    train_model(model, train_data, settings)
    morph = DiagnoserConfig(probe_epochs=settings.probe_epochs).build_deepmorph(
        rng=settings.seed
    )
    morph.fit(model, train_data)
    record = registry.register(
        DEMO_MODEL_NAME, morph,
        metadata={"dataset": settings.dataset, "model": settings.model, "seed": settings.seed},
    )
    print(f"registered {record.key} ({record.model_kind}, {record.num_classes} classes)")


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = ArtifactRegistry(args.registry)

    if args.bootstrap_demo:
        _bootstrap_demo(registry, args)

    if args.list_only:
        records = registry.records()
        if not records:
            print(f"registry {args.registry} is empty")
            return 0
        for record in records:
            print(f"{record.key:30s} kind={record.model_kind:10s} "
                  f"classes={record.num_classes}  {record.path}")
        return 0

    if args.chaos is not None:
        import json as _json

        with open(args.chaos, "r", encoding="utf-8") as handle:
            spec = _json.load(handle)
        injector = configure_chaos(spec)
        armed = len(injector.stats()["plans"])
        print(f"chaos armed from {args.chaos}: {armed} plan(s)")

    # One consolidated config object: the flags project onto the same
    # DiagnoserConfig every repro.api backend uses, so the served pipeline
    # and an embedded LocalDiagnoser run with identical knobs.
    config = DiagnoserConfig(
        max_batch_cases=args.max_batch_cases,
        batch_wait_seconds=args.batch_wait,
        cache_size=args.cache_size,
        num_workers=args.workers,
        inference_dtype=args.inference_dtype,
        wire_codec=args.wire_codec,
        monitor=args.monitor,
        monitor_window=args.monitor_window,
        drift_threshold=args.drift_threshold,
        monitor_update_cases=args.monitor_update_cases,
    )
    service_kwargs = config.service_kwargs()

    # Observability: one shared registry so the span-derived per-stage
    # histograms land next to the front end's own instruments at /metrics.
    front_end_metrics = MetricsRegistry()
    tracing = args.trace or args.trace_jsonl is not None
    if tracing:
        obs.configure(
            enabled=True,
            jsonl_path=args.trace_jsonl,
            metrics=front_end_metrics,
            logs=True,
        )
        sink = args.trace_jsonl or "in-memory ring (GET /debug/traces)"
        print(f"tracing enabled; spans -> {sink}")

    if args.async_gateway:
        pool = ReplicaPool.from_registry(
            registry,
            num_replicas=args.replicas,
            max_queue_per_replica=args.max_queue_per_replica,
            max_inflight=args.max_inflight,
            **service_kwargs,
        )
        try:
            serve_gateway_forever(
                pool,
                host=args.host,
                port=args.port,
                verbose=args.verbose,
                metrics=front_end_metrics,
                default_codec=config.wire_codec,
            )
        finally:
            # serve_gateway_forever already drained; this is the idempotent
            # backstop for failures before the serve loop started.
            pool.shutdown()
            obs.get_tracer().flush()
        return 0

    service = DiagnosisService(registry, metrics=front_end_metrics, **service_kwargs)
    try:
        serve_forever(
            service,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            default_codec=config.wire_codec,
        )
    finally:
        service.close()
        obs.get_tracer().flush()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
