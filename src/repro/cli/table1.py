"""``repro-table1``: regenerate the paper's Table I."""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from ..experiments.table1 import format_table1, run_table1
from .common import add_settings_arguments, run_main, settings_from_args

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-table1",
        description=(
            "Reproduce Table I: for every (model, injected defect) pair, report the "
            "ratio DeepMorph assigns to ITD / UTD / SD."
        ),
    )
    add_settings_arguments(parser)
    parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="subset of models to run (default: lenet alexnet resnet densenet)",
    )
    parser.add_argument(
        "--defects",
        nargs="+",
        default=None,
        choices=["itd", "utd", "sd"],
        help="subset of defects to inject (default: all three)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the experiment grid; independent (model, defect) "
            "cells run in parallel with deterministic per-cell seeds, so any value "
            "produces identical ratios (default: 1, serial)"
        ),
    )
    parser.add_argument("--json", default=None, help="optional path to save the result as JSON")
    return parser


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_from_args(args)
    result = run_table1(
        models=args.models,
        defects=args.defects,
        settings=settings,
        progress=print,
        jobs=args.jobs,
    )
    print()
    print(format_table1(result))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
        print(f"result saved to {args.json}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
