"""``repro-monitor``: replay a serving trace through the drift monitor offline.

Feeds a JSONL trace of ``v1`` DiagnosisRequest documents (one per line — the
same schema ``POST /diagnose`` accepts, e.g. captured from production
clients) through a fitted artifact's pattern library and prints the drift
timeline a live ``repro-serve --monitor`` would have produced::

    repro-monitor --registry ./registry --model demo trace.jsonl

Each line is extracted with the artifact's own instrumented model, appended
to a sliding window, and scored with the JS-divergence drift detector after
every batch.  The exit code reflects the worst alert level seen: 0 = ok,
1 = warn, 2 = critical — so the command slots directly into shell pipelines
and CI gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from ..api.schema import DiagnosisRequest
from ..monitor import (
    LEVEL_OK,
    AlertManager,
    DriftDetector,
    DriftThresholds,
    MonitorWindow,
    level_severity,
)
from ..serve import ArtifactRegistry
from .common import run_main

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-monitor",
        description="Replay a JSONL trace of diagnosis requests through the "
                    "drift monitor offline.",
    )
    parser.add_argument("trace", help="JSONL file of v1 DiagnosisRequest documents "
                                      "('-' reads stdin)")
    parser.add_argument("--registry", required=True, help="artifact registry directory")
    parser.add_argument("--model", required=True, help="registered model name")
    parser.add_argument("--version", default=None, help="artifact version (default: latest)")
    parser.add_argument(
        "--drift-threshold", type=float, default=2.0,
        help="warn-level normalized-divergence threshold (critical = 2x)",
    )
    parser.add_argument(
        "--window", type=int, default=2048, help="sliding-window capacity in cases",
    )
    parser.add_argument(
        "--min-cases", type=int, default=8,
        help="cases required in the window before drift is scored",
    )
    parser.add_argument(
        "--batch-size", type=int, default=128, help="extraction batch size",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="emit one JSON drift report per trace line instead of the "
             "human-readable timeline",
    )
    return parser


def _iter_requests(path: str):
    """Yield ``(line_number, DiagnosisRequest)`` pairs from a JSONL trace."""
    handle = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            yield number, DiagnosisRequest.from_dict(json.loads(line))
    finally:
        if handle is not sys.stdin:
            handle.close()


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = ArtifactRegistry(args.registry)
    morph = registry.load(args.model, args.version)
    resolved = registry.resolve(args.model, args.version)

    window = MonitorWindow(max_cases=args.window, max_age_seconds=None)
    thresholds = DriftThresholds(
        warn=args.drift_threshold, critical=2.0 * args.drift_threshold
    )
    detector = DriftDetector(
        morph.patterns, thresholds=thresholds, min_cases=args.min_cases
    )
    alerts = AlertManager(cooldown_seconds=0.0)

    worst = LEVEL_OK
    replayed = 0
    for number, request in _iter_requests(args.trace):
        inputs = np.asarray(request.inputs, dtype=np.float64)
        trajectories, final_probs = morph.instrumented.layer_distributions(
            inputs, batch_size=args.batch_size
        )
        predicted = np.argmax(final_probs, axis=1)
        window.append_strict(trajectories, predicted)
        replayed += inputs.shape[0]

        report = detector.evaluate(window.snapshot())
        aggregate = report.aggregate_ewma
        if not report.insufficient and aggregate is not None:
            alerts.update(
                f"{args.model}:drift", report.level,
                f"aggregate drift {aggregate:.3f}",
            )
        if level_severity(report.level) > level_severity(worst):
            worst = report.level

        if args.json_output:
            print(json.dumps({"line": number, **report.as_dict()}))
        else:
            drifted = [
                f"class {score.class_id}: {score.ewma:.2f} ({score.level})"
                for score in report.per_class
                if score.level != LEVEL_OK
            ]
            detail = "; ".join(drifted) if drifted else "all classes ok"
            state = "warming up" if report.insufficient else report.level.upper()
            shown = "  n/a " if aggregate is None else f"{aggregate:6.3f}"
            print(f"[line {number:4d}] cases={report.window_cases:5d} "
                  f"aggregate={shown} {state:10s} {detail}")

    if not args.json_output:
        print(f"replayed {replayed} case(s) against {args.model}@{resolved}; "
              f"worst level: {worst}")
        for alert in alerts.active():
            print(f"  active alert {alert.name}: {alert.level} — {alert.message}")
    return {"ok": 0, "warn": 1, "critical": 2}.get(worst, 2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
