"""``repro-diagnose``: diagnose a previously saved model on fresh production data.

Rebased on the :mod:`repro.api` facade: the pipeline knobs come from a
:class:`~repro.api.DiagnoserConfig` and the diagnosis runs through a
:class:`~repro.api.LocalDiagnoser`, so the CLI exercises exactly the public
surface (and report schema) a library caller or a remote client sees.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..api import DiagnoserConfig, LocalDiagnoser
from ..experiments.runner import make_dataset
from ..serialize import load_model, save_report
from ..training import evaluate
from .common import add_settings_arguments, run_main, settings_from_args

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description=(
            "Load a model saved by repro-train, regenerate its training and production "
            "splits, and run the DeepMorph diagnosis on the production faulty cases."
        ),
    )
    add_settings_arguments(parser)
    parser.add_argument("--model-file", required=True, help="model saved by repro-train")
    parser.add_argument("--report", default=None, help="optional path to save the JSON report")
    return parser


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_from_args(args)

    model = load_model(args.model_file)
    _, train_data, test_data = make_dataset(settings)
    _, accuracy = evaluate(model, test_data)
    print(f"loaded {model.kind} ({model.num_parameters()} parameters), "
          f"production accuracy {accuracy:.3f}")

    config = DiagnoserConfig(probe_epochs=settings.probe_epochs)
    morph = config.build_deepmorph(rng=settings.seed).fit(model, train_data)
    with LocalDiagnoser(morph, name=model.kind, config=config) as diagnoser:
        report = diagnoser.diagnose_dataset(test_data, metadata={"model": model.kind})
    print(report.summary())
    if args.report:
        path = save_report(report, args.report)
        print(f"report saved to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    return run_main(_main, argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
