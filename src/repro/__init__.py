"""repro — a reproduction of "Detecting Deep Neural Network Defects with Data Flow Analysis".

The package is organized as:

* :mod:`repro.nn`, :mod:`repro.optim`, :mod:`repro.training` — a from-scratch
  numpy deep-learning substrate (layers, optimizers, training loop).
* :mod:`repro.data` — dataset abstractions and synthetic MNIST/CIFAR stand-ins.
* :mod:`repro.models` — the four architecture families of the paper's
  evaluation (LeNet, AlexNet, ResNet, DenseNet).
* :mod:`repro.defects` — injection of the three studied defect types
  (insufficient training data, unreliable training data, structure defects).
* :mod:`repro.core` — DeepMorph itself: softmax instrumentation, data-flow
  footprints, class execution patterns, and defect reasoning.
* :mod:`repro.analysis` — divergences and trajectory statistics.
* :mod:`repro.serialize` — persistence of models, footprints, reports, and
  fitted DeepMorph instances.
* :mod:`repro.serve` — the production serving layer: a named/versioned
  artifact registry, request batching that coalesces concurrent diagnoses
  into vectorized footprint extraction, an LRU footprint cache, an async
  job queue, and a JSON-over-HTTP front end (``repro-serve``).
* :mod:`repro.api` — the versioned public API: the ``v1``
  ``DiagnosisRequest``/``DiagnosisReport`` schema (shared with the serving
  wire protocol), the consolidated ``DiagnoserConfig``, and the ``Diagnoser``
  interface with interchangeable local / in-process / remote backends.
* :mod:`repro.experiments` — the Table I reproduction harness.
* :mod:`repro.cli` — command-line entry points.
"""

from . import analysis, api, data, defects, models, nn, optim, serve, training
from .core import (
    DeepMorph,
    DefectCaseClassifier,
    DefectClassifierConfig,
    DefectReport,
    Footprint,
    FootprintExtractor,
    FootprintSpecifics,
    PatternLibrary,
    SoftmaxInstrumentedModel,
    SoftmaxProbe,
    compute_specifics,
    compute_specifics_batch,
    find_faulty_cases,
)
from .defects import (
    DefectType,
    InsufficientTrainingData,
    StructureDefect,
    UnreliableTrainingData,
    build_defect,
)
from .exceptions import (
    ArtifactNotFoundError,
    ConfigurationError,
    DatasetError,
    DefectInjectionError,
    ExperimentError,
    NoFaultyCasesError,
    NotFittedError,
    PayloadTooLargeError,
    RemoteTransportError,
    ReproError,
    SchemaVersionError,
    SerializationError,
    ServeError,
    ServiceSaturatedError,
    ShapeError,
)
from .rng import ensure_rng, seed_everything

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "nn",
    "optim",
    "training",
    "data",
    "models",
    "defects",
    "analysis",
    "serve",
    "api",
    # DeepMorph core
    "DeepMorph",
    "find_faulty_cases",
    "SoftmaxProbe",
    "SoftmaxInstrumentedModel",
    "Footprint",
    "FootprintExtractor",
    "PatternLibrary",
    "FootprintSpecifics",
    "compute_specifics",
    "compute_specifics_batch",
    "DefectClassifierConfig",
    "DefectCaseClassifier",
    "DefectReport",
    # defects
    "DefectType",
    "InsufficientTrainingData",
    "UnreliableTrainingData",
    "StructureDefect",
    "build_defect",
    # exceptions
    "ReproError",
    "ShapeError",
    "ConfigurationError",
    "NotFittedError",
    "DatasetError",
    "DefectInjectionError",
    "SerializationError",
    "ExperimentError",
    "SchemaVersionError",
    "NoFaultyCasesError",
    "ServeError",
    "ArtifactNotFoundError",
    "PayloadTooLargeError",
    "ServiceSaturatedError",
    "RemoteTransportError",
    # rng
    "ensure_rng",
    "seed_everything",
]
