"""The ``Diagnoser`` interface and its embedded backends.

One abstract surface — ``diagnose(DiagnosisRequest) -> DiagnosisReport`` plus
array/dataset/streaming conveniences — with interchangeable implementations:

* :class:`LocalDiagnoser` — wraps one fitted :class:`~repro.core.DeepMorph`
  (optionally loaded from an artifact registry); zero serving machinery.
* :class:`ServiceDiagnoser` — routes through an in-process
  :class:`~repro.serve.DiagnosisService` or
  :class:`~repro.serve.ReplicaPool` (batching engine, footprint cache,
  replica sharding).
* :class:`~repro.api.remote.RemoteDiagnoser` — HTTP client for a
  ``repro-serve`` gateway (its own module; no server-side imports here).

All three funnel requests through the shared ``v1`` schema and the same
array validation, and extraction runs through the same coalesced code path
with the same chunk size, so for the same artifact and inputs the three
backends return **bitwise-identical** reports — callers can move between
embedded and scale-out serving without their numbers moving.
"""

from __future__ import annotations

import abc
from pathlib import Path
from types import TracebackType
from typing import Iterator, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from ..core.classifier import DefectReport
from ..core.diagnosis import DeepMorph, _dataset_batches
from ..core.footprint import Footprint, FootprintExtractor
from ..core.specifics import compute_specifics_batch
from ..data.dataset import Dataset
from ..exceptions import (
    ArtifactNotFoundError,
    ConfigurationError,
    NoFaultyCasesError,
    NotFittedError,
    SchemaVersionError,
)
from ..nn.dtype import resolve_dtype
from ..obs import bind_request_id, current_request_id, get_tracer, new_request_id, unbind_request_id
from ..serve.registry import ArtifactRegistry
from ..serve.replicas import ReplicaPool
from ..serve.service import DiagnosisService
from .config import DiagnoserConfig
from .schema import (
    SCHEMA_VERSION,
    ArrayLike,
    DiagnosisReport,
    DiagnosisRequest,
    Metadata,
    batch_slices,
)

__all__ = ["Diagnoser", "LocalDiagnoser", "ServiceDiagnoser"]

RegistryLike = Union[str, Path, ArtifactRegistry]


class Diagnoser(abc.ABC):
    """A backend that turns :class:`DiagnosisRequest` into :class:`DiagnosisReport`.

    Subclasses implement :meth:`_diagnose`; the base class owns schema-version
    enforcement, the array/dataset conveniences, and the streaming iterator,
    so every backend behaves identically at the surface.
    """

    #: Model name used when a convenience call omits ``model=``.
    default_model: Optional[str] = None

    # -- the one entry point -----------------------------------------------------

    def diagnose(self, request: DiagnosisRequest) -> DiagnosisReport:
        """Diagnose one request (the single abstract operation of the API).

        With tracing enabled (see :mod:`repro.obs`) the call runs under a
        client-side span and the request is stamped with a request id in its
        metadata, so the id travels through any backend — including the wire
        to a remote gateway — and back in the report.  With tracing disabled
        (the default) the request passes through **unmodified**, preserving
        bitwise report parity across backends.
        """
        if request.schema != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"unsupported request schema version {request.schema!r}; this library "
                f"speaks {SCHEMA_VERSION!r}"
            )
        tracer = get_tracer()
        if not tracer.enabled:
            return self._diagnose(request)
        request_id = request.request_id or current_request_id() or new_request_id()
        request = request.with_request_id(request_id)
        token = bind_request_id(request_id)
        try:
            with tracer.span(
                "diagnoser.request",
                {"backend": type(self).__name__, "model": str(request.model)},
            ):
                return self._diagnose(request)
        finally:
            unbind_request_id(token)

    @abc.abstractmethod
    def _diagnose(self, request: DiagnosisRequest) -> DiagnosisReport:
        """Backend-specific diagnosis of an already schema-checked request."""

    def diagnose_many(self, requests: Sequence[DiagnosisRequest]) -> List[DiagnosisReport]:
        """Diagnose several independent requests, reports in request order.

        The base implementation is a sequential loop; backends with a wire in
        between override it (``RemoteDiagnoser`` pipelines the batch over one
        keep-alive connection, amortizing a round-trip per request down to
        one send/receive phase).  Error semantics match the loop: the first
        failing request raises its typed exception.
        """
        return [self.diagnose(request) for request in requests]

    # -- conveniences -------------------------------------------------------------

    def _resolve_model(self, model: Optional[str]) -> str:
        name = model if model is not None else self.default_model
        if name is None:
            raise ConfigurationError(
                "no model name given and this diagnoser has no default_model"
            )
        return name

    def diagnose_arrays(
        self,
        inputs: ArrayLike,
        labels: ArrayLike,
        model: Optional[str] = None,
        version: Optional[str] = None,
        metadata: Optional[Metadata] = None,
    ) -> DiagnosisReport:
        """Diagnose a labeled production batch given as plain arrays/lists."""
        return self.diagnose(DiagnosisRequest(
            model=self._resolve_model(model),
            inputs=inputs,
            labels=labels,
            version=version,
            metadata=metadata,
        ))

    def diagnose_dataset(
        self,
        dataset: Dataset,
        model: Optional[str] = None,
        version: Optional[str] = None,
        metadata: Optional[Metadata] = None,
    ) -> DiagnosisReport:
        """Diagnose a whole production dataset (the paper's end-to-end scenario).

        The full set is submitted; the backend's misclassification filter
        selects the faulty cases, exactly as the serving layer does for HTTP
        batches.
        """
        inputs, labels = _dataset_arrays(dataset)
        return self.diagnose_arrays(
            inputs, labels, model=model, version=version, metadata=metadata
        )

    def diagnose_iter(
        self,
        inputs: Union[Dataset, ArrayLike],
        labels: Optional[ArrayLike] = None,
        batch_size: int = 256,
        model: Optional[str] = None,
        version: Optional[str] = None,
        metadata: Optional[Metadata] = None,
    ) -> Iterator[DiagnosisReport]:
        """Stream per-batch reports over a production set too large to hold.

        ``inputs`` may be a :class:`~repro.data.Dataset` (labels come from
        the dataset) or an array with a matching ``labels`` array.  Batches
        of ``batch_size`` cases are diagnosed independently and their reports
        yielded as they complete; batches in which the model misclassifies
        nothing are skipped (there is no defect evidence to report).  Memory
        stays bounded by one batch regardless of the production set's size.
        """
        for batch_inputs, batch_labels in _iter_batches(inputs, labels, batch_size):
            try:
                yield self.diagnose_arrays(
                    batch_inputs,
                    batch_labels,
                    model=model,
                    version=version,
                    metadata=metadata,
                )
            except NoFaultyCasesError:
                continue

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (idempotent; a no-op for stateless backends)."""

    def __enter__(self) -> "Diagnoser":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def _dataset_arrays(dataset: Dataset) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize a dataset's ``(inputs, labels)`` arrays."""
    arrays = getattr(dataset, "arrays", None)
    if callable(arrays):
        inputs, labels = arrays()
        return np.asarray(inputs), np.asarray(labels)
    batches = list(_dataset_batches(dataset, batch_size=max(1, len(dataset))))
    return (
        np.concatenate([b for b, _ in batches], axis=0),
        np.concatenate([lab for _, lab in batches], axis=0),
    )


def _iter_batches(
    inputs: Union[Dataset, ArrayLike],
    labels: Optional[ArrayLike],
    batch_size: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    if isinstance(inputs, Dataset):
        if labels is not None:
            raise ConfigurationError(
                "pass either a Dataset or (inputs, labels) arrays, not both"
            )
        yield from _dataset_batches(inputs, batch_size=int(batch_size))
        return
    if labels is None:
        raise ConfigurationError("labels are required when inputs is not a Dataset")
    inputs_arr = np.asarray(inputs)
    labels_arr = np.asarray(labels)
    for piece in batch_slices(int(inputs_arr.shape[0]), int(batch_size)):
        yield inputs_arr[piece], labels_arr[piece]


class LocalDiagnoser(Diagnoser):
    """Embedded backend over one fitted :class:`~repro.core.DeepMorph`.

    Runs the exact pipeline the serving layer runs — shared request
    validation, the coalesced extraction path with the configured chunk
    size, the batched specifics/scoring core, and the same metadata shape —
    so a report from this backend is bitwise-identical to one served by
    :class:`ServiceDiagnoser` or a remote gateway for the same artifact.

    Parameters
    ----------
    morph:
        A fitted DeepMorph instance.
    name, version:
        The identity reported in (and checked against) request/report
        metadata; :meth:`from_registry` fills these from the registry.
    config:
        Shared :class:`DiagnoserConfig`; only the extraction knobs apply here.
    """

    def __init__(
        self,
        morph: DeepMorph,
        name: str = "local",
        version: str = "v1",
        config: Optional[DiagnoserConfig] = None,
    ) -> None:
        if not morph.is_fitted:
            raise NotFittedError(
                "LocalDiagnoser requires a fitted DeepMorph; call fit(model, train_data) first"
            )
        self.config = config if config is not None else DiagnoserConfig()
        if self.config.inference_dtype is not None:
            # The config is the single source of pipeline knobs: an explicit
            # dtype applies however the diagnoser was constructed (wrapped
            # instance or from_registry), matching DiagnosisService.
            morph.instrumented.inference_dtype = resolve_dtype(self.config.inference_dtype)
        self.morph = morph
        self.default_model = str(name)
        self.version = str(version)
        self._extractor = FootprintExtractor(
            morph.instrumented, batch_size=self.config.extraction_batch_size
        )
        # Fixed once fitted — precomputed exactly like the service's LoadedModel.
        self._pattern_overlap = morph.patterns.pattern_overlap()
        self._feature_quality = morph.patterns.feature_quality()
        self._training_inconsistency = morph.patterns.training_inconsistency()

    @classmethod
    def from_registry(
        cls,
        registry: RegistryLike,
        name: str,
        version: Optional[str] = None,
        config: Optional[DiagnoserConfig] = None,
    ) -> "LocalDiagnoser":
        """Load a registered artifact and serve it embedded.

        ``registry`` may be a path or an :class:`~repro.serve.ArtifactRegistry`;
        ``version=None`` resolves to the latest, mirroring the serving layer.
        """
        registry = (
            registry if isinstance(registry, ArtifactRegistry) else ArtifactRegistry(registry)
        )
        resolved = registry.resolve(name, version)
        morph = registry.load(name, resolved)
        return cls(morph, name=name, version=resolved, config=config)

    def _check_identity(self, request: DiagnosisRequest) -> None:
        if request.model != self.default_model:
            raise ArtifactNotFoundError(request.model)
        if request.version is not None and request.version != self.version:
            raise ArtifactNotFoundError(f"{request.model}@{request.version}")

    def _diagnose(self, request: DiagnosisRequest) -> DiagnosisReport:
        self._check_identity(request)
        inputs, labels = request.arrays()
        # Same coalesced-extraction entry point the batching engine uses, so
        # the arrays (and everything derived from them) match the served path.
        (trajectories, final_probs), = self._extractor.extract_coalesced([inputs])
        footprints: List[Footprint] = self._extractor.from_arrays(
            trajectories, final_probs, labels
        )
        faulty = [fp for fp in footprints if fp.is_misclassified]
        if not faulty:
            raise NoFaultyCasesError(
                "none of the supplied cases is misclassified by the model; nothing to diagnose"
            )
        specifics = compute_specifics_batch(faulty, self.morph.patterns)
        context = self.morph.case_classifier.build_context(
            specifics,
            num_classes=self.morph.model.num_classes,
            pattern_overlap=self._pattern_overlap,
            feature_quality=self._feature_quality,
            training_inconsistency=self._training_inconsistency,
        )
        meta: Metadata = {
            "num_production_cases": int(inputs.shape[0]),
            "model": self.default_model,
            "version": self.version,
        }
        meta.update(request.metadata or {})
        report: DefectReport = self.morph.case_classifier.aggregate(
            specifics, context=context, metadata=meta
        )
        return DiagnosisReport.from_defect_report(report)


class ServiceDiagnoser(Diagnoser):
    """In-process backend over a :class:`DiagnosisService` or :class:`ReplicaPool`.

    Wrap an existing service/pool (left open on :meth:`close`), or build an
    owned one from a registry with :meth:`from_registry` (closed with the
    diagnoser).
    """

    def __init__(
        self,
        service: Union[DiagnosisService, ReplicaPool],
        default_model: Optional[str] = None,
        owns_service: bool = False,
    ) -> None:
        self._service = service
        self.default_model = default_model
        self._owns_service = bool(owns_service)

    @classmethod
    def from_registry(
        cls,
        registry: RegistryLike,
        config: Optional[DiagnoserConfig] = None,
        default_model: Optional[str] = None,
        replicas: int = 1,
    ) -> "ServiceDiagnoser":
        """Build an owned service (``replicas == 1``) or replica pool over a registry."""
        config = config if config is not None else DiagnoserConfig()
        if int(replicas) < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        backend: Union[DiagnosisService, ReplicaPool]
        if int(replicas) == 1:
            backend = DiagnosisService(registry, **config.service_kwargs())  # type: ignore[arg-type]
        else:
            backend = ReplicaPool.from_registry(
                registry, num_replicas=int(replicas), **config.service_kwargs()
            )
        return cls(backend, default_model=default_model, owns_service=True)

    @property
    def service(self) -> Union[DiagnosisService, ReplicaPool]:
        """The wrapped service or pool (for stats/metrics drill-down)."""
        return self._service

    def _diagnose(self, request: DiagnosisRequest) -> DiagnosisReport:
        name = self._resolve_model(request.model)
        if isinstance(self._service, ReplicaPool):
            payload = self._service.diagnose_dict(
                name,
                request.inputs,
                request.labels,
                version=request.version,
                metadata=request.metadata,
            )
            return DiagnosisReport.from_dict(payload)
        report = self._service.diagnose(
            name,
            request.inputs,
            request.labels,
            version=request.version,
            metadata=request.metadata,
        )
        return DiagnosisReport.from_defect_report(report)

    def close(self) -> None:
        if self._owns_service:
            self._service.close()
