"""``RemoteDiagnoser``: the HTTP client backend for a ``repro-serve`` gateway.

A thin, dependency-free (stdlib ``http.client`` + ``socket``) counterpart of
the serving front ends:

* **pluggable wire codec** — requests are encoded by the codec named in
  ``DiagnoserConfig.wire_codec`` (``"json"``, the compatibility default, or
  ``"binary"`` for framed raw-array transport) and the response is decoded by
  whatever ``Content-Type`` the server answers with, so a binary client still
  reads a JSON error document;
* **keep-alive connection pool** — up to ``config.connection_pool_size``
  persistent connections are kept and reused; concurrent callers beyond the
  pool size open short-lived extras instead of serializing on a lock;
* **request pipelining** — :meth:`diagnose_many` writes a whole batch of
  ``POST /diagnose`` requests down one connection before reading any
  response, collapsing N round-trip latencies into one send/receive phase on
  the thin-payload path;
* **bounded retries with full jitter** — transport failures back off by
  ``uniform(0, base * 2**attempt)`` so a burst of failing clients
  decorrelates instead of retrying in lock-step, and 503 responses honor
  the server's ``Retry-After`` hint (capped by
  ``DiagnoserConfig.retry_after_cap_seconds``) before the typed
  :class:`~repro.exceptions.ServiceSaturatedError` is surfaced;
* **a circuit breaker per endpoint** — after
  ``DiagnoserConfig.breaker_failure_threshold`` consecutive failures
  (transport errors after retries, or 5xx responses) calls fail locally
  with :class:`~repro.exceptions.CircuitOpenError` until a half-open probe
  succeeds, so this client stops feeding a struggling server;
* **deadlines and hedging** — ``DiagnoserConfig.deadline_seconds`` stamps
  the remaining budget on the wire as ``X-Deadline-Ms`` (an ambient server
  deadline propagates automatically in server-to-server calls), and
  ``DiagnoserConfig.hedge_after_seconds`` launches one backup ``/diagnose``
  attempt when the first is slow — first response wins;
* **typed errors** — every non-200 response is mapped back onto the
  :mod:`repro.exceptions` hierarchy via
  :func:`~repro.exceptions.exception_from_wire`, so remote callers catch the
  same exception classes embedded callers do;
* **cache visibility** — the gateway's ``X-Response-Cache`` header is
  surfaced as :attr:`DiagnosisReport.cache_state`.
"""

from __future__ import annotations

import contextvars
import http.client
import json
import queue
import random
import socket
import threading
import time
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from ..exceptions import (
    CodecError,
    ConfigurationError,
    DeadlineExceededError,
    RemoteTransportError,
    SchemaVersionError,
    exception_from_wire,
)
from ..obs import current_request_id, get_tracer
from ..resilience import (
    DEADLINE_HEADER,
    CircuitBreaker,
    Deadline,
    corrupt_bytes,
    current_deadline,
    get_injector,
)
from ..wire import Codec, codec_for_content_type, get_codec
from .config import DiagnoserConfig
from .diagnoser import Diagnoser
from .schema import SCHEMA_VERSION, DiagnosisReport, DiagnosisRequest, JsonDict

__all__ = ["RemoteDiagnoser"]

#: Requests written down one pipelined connection before responses are read.
#: Bounds the bytes in flight so a server draining slowly cannot deadlock the
#: client against a full socket send buffer.
_PIPELINE_DEPTH = 16


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class RemoteDiagnoser(Diagnoser):
    """Diagnose against a remote ``repro-serve`` front end (gateway or threading).

    Parameters
    ----------
    url:
        Base URL of the server, e.g. ``"http://127.0.0.1:8421"``.
    config:
        Shared :class:`DiagnoserConfig`; the remote-client knobs
        (``wire_codec``, ``connection_pool_size``, ``read_timeout``,
        ``max_retries``, ``retry_backoff_seconds``,
        ``retry_after_cap_seconds``) apply here.
    default_model:
        Model name used when a convenience call omits ``model=``.
    rng:
        Source of the retry jitter (``random.Random``); injectable so tests
        can assert backoff schedules deterministically.
    """

    def __init__(
        self,
        url: str,
        config: Optional[DiagnoserConfig] = None,
        default_model: Optional[str] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ConfigurationError(
                f"RemoteDiagnoser needs an http://host[:port] URL, got {url!r}"
            )
        if parts.path not in ("", "/") or parts.query or parts.fragment:
            # Silently dropping a path prefix would send every request to the
            # wrong endpoint behind a path-routing proxy; refuse loudly.
            raise ConfigurationError(
                f"RemoteDiagnoser takes a bare base URL (no path/query), got {url!r}"
            )
        self.config = config if config is not None else DiagnoserConfig()
        self.default_model = default_model
        self.host: str = parts.hostname
        self.port: int = parts.port if parts.port is not None else 80
        self.codec: Codec = get_codec(self.config.wire_codec)
        self._pool_lock = threading.Lock()
        self._idle: List[http.client.HTTPConnection] = []
        self._closed = False
        self._rng = rng if rng is not None else random.Random()
        self._breaker_lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection pool -----------------------------------------------------------

    def _checkout(self) -> http.client.HTTPConnection:
        """An idle pooled connection, or a fresh one when the pool is empty."""
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.config.read_timeout
        )

    def _checkin(self, connection: http.client.HTTPConnection) -> None:
        """Return a healthy connection to the pool (closed when full/shut down)."""
        with self._pool_lock:
            if not self._closed and len(self._idle) < int(self.config.connection_pool_size):
                self._idle.append(connection)
                return
        self._discard(connection)

    @staticmethod
    def _discard(connection: http.client.HTTPConnection) -> None:
        try:
            connection.close()
        except OSError:  # pragma: no cover - close() of a dead socket
            pass

    def _trace_headers(self) -> Dict[str, str]:
        """Propagation headers for the current context (empty when disabled).

        ``X-Request-ID`` carries request identity; ``X-Trace-Parent`` lets
        the server parent its root span under this client's active span, so
        one trace stitches both processes.  ``config.propagate_trace_headers``
        turns both off for servers that must not see client identifiers.
        """
        if not self.config.propagate_trace_headers:
            return {}
        headers: Dict[str, str] = {}
        request_id = current_request_id()
        if request_id is not None:
            headers["X-Request-ID"] = request_id
        context = get_tracer().current_context()
        if context is not None:
            headers["X-Trace-Parent"] = context.header_value()
        return headers

    # -- transport ----------------------------------------------------------------

    def _call_deadline(self) -> Optional[Deadline]:
        """The budget governing one logical call: ambient first, config second.

        An ambient deadline (a server making a downstream call on behalf of a
        request that already carries one) always wins — the caller's patience
        is what matters, not this client's default.
        """
        ambient = current_deadline()
        if ambient is not None:
            return ambient
        if self.config.deadline_seconds is not None:
            return Deadline.after(self.config.deadline_seconds)
        return None

    def _breaker(self, path: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(path)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    reset_seconds=self.config.breaker_reset_seconds,
                    name=f"{self.url}{path}",
                )
                self._breakers[path] = breaker
            return breaker

    def breaker_snapshot(self) -> Dict[str, Dict]:
        """Per-endpoint circuit-breaker state (observability)."""
        with self._breaker_lock:
            return {path: breaker.snapshot() for path, breaker in self._breakers.items()}

    def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        deadline: Optional[Deadline] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request over a pooled keep-alive connection; raises on transport failure."""
        injector = get_injector()
        if injector.enabled:
            mode = injector.inject("remote.send")
            if mode == "drop":
                raise ConnectionResetError("chaos: connection dropped before send")
            if mode == "corrupt" and body is not None:
                body = corrupt_bytes(body)
        connection = self._checkout()
        try:
            headers: Dict[str, str] = {}
            if body is not None:
                headers["Content-Type"] = self.codec.content_type
                headers["Accept"] = self.codec.content_type
            if deadline is not None:
                headers[DEADLINE_HEADER] = deadline.header_value()
            headers.update(self._trace_headers())
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
        except BaseException:
            self._discard(connection)
            raise
        header_map = {name.lower(): value for name, value in response.getheaders()}
        if header_map.get("connection", "").lower() == "close":
            self._discard(connection)
        else:
            self._checkin(connection)
        return response.status, header_map, payload

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Issue one HTTP request, gated by the endpoint's circuit breaker.

        The breaker counts whole logical calls: a transport failure that
        survives every retry, or a 5xx response, is one failure; anything the
        server answered below 500 is a success.  An open breaker raises
        :class:`~repro.exceptions.CircuitOpenError` without touching the
        network.
        """
        breaker = self._breaker(path)
        breaker.allow()
        try:
            status, headers, payload = self._request_with_retries(method, path, body)
        except DeadlineExceededError:
            # The caller's budget ran out — says nothing about server health.
            breaker.record_success()
            raise
        except Exception:
            breaker.record_failure()
            raise
        if status >= 500:
            breaker.record_failure()
        else:
            breaker.record_success()
        return status, headers, payload

    def _request_with_retries(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """The bounded retry loop; returns the raw response triple.

        Transport failures (connection refused/reset, protocol errors) retry
        with full-jitter exponential backoff — ``uniform(0, base * 2**n)`` —
        so concurrent failing clients spread out; 503 responses retry after
        the server's ``Retry-After`` hint.  Both budgets share
        ``config.max_retries``, and a deadline bounds every sleep.
        """
        deadline = self._call_deadline()
        attempts = int(self.config.max_retries) + 1
        for attempt in range(attempts):
            if deadline is not None and deadline.expired():
                raise DeadlineExceededError(
                    f"deadline expired before attempt {attempt + 1} of "
                    f"{method} {self.url}{path}"
                )
            try:
                status, headers, payload = self._roundtrip(method, path, body, deadline)
            except (OSError, http.client.HTTPException) as error:
                if attempt + 1 < attempts:
                    self._backoff(attempt, deadline)
                    continue
                raise RemoteTransportError(
                    f"{method} {self.url}{path} failed after {attempts} attempt(s): "
                    f"{type(error).__name__}: {error}"
                ) from error
            if status == 503 and attempt + 1 < attempts:
                retry_after = _parse_retry_after(headers.get("retry-after"))
                delay = min(
                    retry_after if retry_after is not None
                    else self.config.retry_backoff_seconds,
                    self.config.retry_after_cap_seconds,
                )
                self._sleep_bounded(delay, deadline)
                continue
            return status, headers, payload
        raise RemoteTransportError(
            f"{method} {self.url}{path} failed"
        )  # pragma: no cover - loop always returns or raises

    def _backoff(self, attempt: int, deadline: Optional[Deadline]) -> None:
        """Full-jitter exponential backoff (AWS-style): ``uniform(0, base * 2**n)``."""
        ceiling = self.config.retry_backoff_seconds * (2 ** attempt)
        self._sleep_bounded(self._rng.uniform(0.0, ceiling), deadline)

    @staticmethod
    def _sleep_bounded(delay: float, deadline: Optional[Deadline]) -> None:
        if deadline is not None:
            delay = min(delay, max(0.0, deadline.remaining()))
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _decode_document(payload: bytes) -> JsonDict:
        """Parse a JSON document response (GET endpoints, error bodies)."""
        try:
            decoded = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RemoteTransportError(f"undecodable response body: {error}") from error
        if not isinstance(decoded, dict):
            raise RemoteTransportError("response body must be a JSON object")
        return decoded

    def _decode_report(self, headers: Dict[str, str], payload: bytes) -> DiagnosisReport:
        """Decode a 200 ``/diagnose`` body by its declared ``Content-Type``.

        Absent/JSON content types take the JSON path (compatibility with
        pre-codec servers); a server answering in a codec this client does
        not know — or with bytes its declared codec cannot parse — surfaces
        as :class:`~repro.exceptions.RemoteTransportError`.
        """
        try:
            response_codec = codec_for_content_type(headers.get("content-type"))
            return response_codec.decode_report(
                payload, cache_state=headers.get("x-response-cache")
            )
        except CodecError as error:
            raise RemoteTransportError(f"undecodable response body: {error}") from error

    def _raise_for_error(self, status: int, headers: Dict[str, str], payload: bytes) -> None:
        # Error documents are always JSON, whatever codec the request used
        # (the negotiation contract of repro.serve.protocol).
        document = self._decode_document(payload)
        message = str(document.get("error", f"HTTP {status}"))
        error_type = document.get("error_type")
        raise exception_from_wire(
            status,
            message,
            error_type=error_type if isinstance(error_type, str) else None,
            retry_after=_parse_retry_after(headers.get("retry-after")),
        )

    # -- the Diagnoser surface -----------------------------------------------------

    def _diagnose(self, request: DiagnosisRequest) -> DiagnosisReport:
        body = self.codec.encode_request(request)
        with get_tracer().span(
            "remote.roundtrip",
            {"url": self.url, "body_bytes": len(body), "codec": self.codec.name},
        ) as rt_span:
            if self.config.hedge_after_seconds is not None:
                rt_span.set_attribute("hedged", True)
                status, headers, payload = self._hedged_request("/diagnose", body)
            else:
                status, headers, payload = self._request("POST", "/diagnose", body)
            rt_span.set_attribute("status", status)
        if status != 200:
            self._raise_for_error(status, headers, payload)
        return self._decode_report(headers, payload)

    def _hedged_request(
        self, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Issue a request with one hedged backup; the first response wins.

        If the primary has not answered after ``config.hedge_after_seconds``,
        a second identical attempt launches on its own connection.  Whichever
        answers first is returned; the loser runs to completion on its daemon
        thread and is discarded.  Both attempts go through :meth:`_request`,
        so each pays the breaker gate and retry budget independently.  The
        hedge only narrows tail latency of idempotent reads — it never turns
        a failure into a success the primary would not have had: errors are
        held until both attempts have reported.
        """
        results: "queue.Queue[Tuple[bool, object]]" = queue.Queue()
        ambient = contextvars.copy_context()

        def attempt() -> None:
            try:
                results.put((True, ambient.run(self._request, "POST", path, body)))
            except BaseException as error:  # noqa: BLE001 - relayed to the caller
                results.put((False, error))

        launched = 1
        threading.Thread(target=attempt, daemon=True, name="repro-remote-hedge").start()
        first_error: Optional[BaseException] = None
        received = 0
        while received < launched:
            try:
                ok, outcome = results.get(timeout=self.config.hedge_after_seconds)
            except queue.Empty:
                if launched == 1:  # primary is slow: launch the one backup
                    launched += 1
                    threading.Thread(
                        target=attempt, daemon=True, name="repro-remote-hedge"
                    ).start()
                continue
            received += 1
            if ok:
                return outcome  # type: ignore[return-value]
            if first_error is None:
                first_error = outcome  # type: ignore[assignment]
        assert first_error is not None
        raise first_error

    def diagnose_many(self, requests: Sequence[DiagnosisRequest]) -> List[DiagnosisReport]:
        """Diagnose a batch over one pipelined keep-alive connection.

        All requests (in windows of bounded depth) are written before any
        response is read, so the batch pays one network round trip per
        window instead of one per request.  Reports come back in request
        order; the first error response raises its typed exception, exactly
        like the sequential loop it replaces.
        """
        pending = list(requests)
        for request in pending:
            if request.schema != SCHEMA_VERSION:
                raise SchemaVersionError(
                    f"unsupported request schema version {request.schema!r}; this "
                    f"library speaks {SCHEMA_VERSION!r}"
                )
        if len(pending) <= 1:
            return [self.diagnose(request) for request in pending]
        bodies = [self.codec.encode_request(request) for request in pending]
        reports: List[DiagnosisReport] = []
        with get_tracer().span(
            "remote.pipeline",
            {"url": self.url, "requests": len(pending), "codec": self.codec.name},
        ):
            while len(reports) < len(pending):
                window = bodies[len(reports):len(reports) + _PIPELINE_DEPTH]
                responses = self._pipeline_window(window)
                for status, headers, payload in responses:
                    if status != 200:
                        self._raise_for_error(status, headers, payload)
                    reports.append(self._decode_report(headers, payload))
        return reports

    def _pipeline_window(
        self, bodies: Sequence[bytes]
    ) -> List[Tuple[int, Dict[str, str], bytes]]:
        """Send one window of ``POST /diagnose`` bodies, read its responses.

        Uses a dedicated raw socket: ``http.client`` cannot overlap requests
        on one connection.  The socket is never pooled — pipelining leaves no
        cleanly reusable state if anything short of full success happens.
        """
        injector = get_injector()
        if injector.enabled:
            mode = injector.inject("remote.send")
            if mode == "drop":
                raise RemoteTransportError(
                    "chaos: connection dropped before pipelined send"
                )
            if mode == "corrupt" and bodies:
                bodies = [corrupt_bytes(bodies[0]), *bodies[1:]]
        deadline = self._call_deadline()
        trace = self._trace_headers()
        chunks: List[bytes] = []
        for body in bodies:
            lines = [
                "POST /diagnose HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                f"Content-Type: {self.codec.content_type}",
                f"Accept: {self.codec.content_type}",
                f"Content-Length: {len(body)}",
            ]
            if deadline is not None:
                lines.append(f"{DEADLINE_HEADER}: {deadline.header_value()}")
            lines.extend(f"{name}: {value}" for name, value in trace.items())
            chunks.append(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
            chunks.append(body)
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.config.read_timeout
            ) as sock:
                sock.sendall(b"".join(chunks))
                reader = sock.makefile("rb")
                try:
                    responses: List[Tuple[int, Dict[str, str], bytes]] = []
                    for _ in bodies:
                        response = self._read_pipelined_response(reader)
                        responses.append(response)
                        status, headers, _payload = response
                        # Both front ends close after an error; stop reading
                        # there — the caller raises on it (or re-pipelines the
                        # unanswered tail on a fresh connection).
                        if status != 200 or headers.get("connection", "").lower() == "close":
                            break
                    return responses
                finally:
                    reader.close()
        except (OSError, ValueError) as error:
            raise RemoteTransportError(
                f"pipelined POST {self.url}/diagnose failed: "
                f"{type(error).__name__}: {error}"
            ) from error

    @staticmethod
    def _read_pipelined_response(reader: BinaryIO) -> Tuple[int, Dict[str, str], bytes]:
        """Parse one ``Content-Length``-framed HTTP/1.1 response off the stream."""
        status_line = reader.readline()
        if not status_line:
            raise RemoteTransportError("server closed the connection mid-pipeline")
        parts = status_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise RemoteTransportError(f"malformed status line {status_line!r}")
        try:
            status = int(parts[1])
        except ValueError as error:
            raise RemoteTransportError(f"malformed status line {status_line!r}") from error
        headers: Dict[str, str] = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise RemoteTransportError("server closed the connection mid-headers")
            name, separator, value = line.decode("latin-1").partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as error:
            raise RemoteTransportError(
                f"malformed Content-Length {headers.get('content-length')!r}"
            ) from error
        payload = reader.read(length) if length > 0 else b""
        if len(payload) != length:
            raise RemoteTransportError("server closed the connection mid-body")
        return status, headers, payload

    # -- server introspection -------------------------------------------------------

    def _get(self, path: str) -> JsonDict:
        status, headers, payload = self._request("GET", path)
        document = self._decode_document(payload)
        if status != 200:
            self._raise_for_error(status, headers, payload)
        return document

    def health(self) -> JsonDict:
        """The server's ``GET /health`` document."""
        return self._get("/health")

    def models(self) -> JsonDict:
        """The server's ``GET /models`` document (registered artifact records)."""
        return self._get("/models")

    def stats(self) -> JsonDict:
        """The server's ``GET /stats`` document."""
        return self._get("/stats")

    def metrics(self) -> JsonDict:
        """The server's ``GET /metrics`` document."""
        return self._get("/metrics")

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            self._discard(connection)

    def __repr__(self) -> str:
        return (
            f"RemoteDiagnoser(url={self.url!r}, codec={self.codec.name!r}, "
            f"default_model={self.default_model!r})"
        )
