"""``RemoteDiagnoser``: the HTTP client backend for a ``repro-serve`` gateway.

A thin, dependency-free (stdlib ``http.client``) counterpart of the serving
front ends:

* **keep-alive** — one persistent connection per diagnoser, re-established
  transparently when the server closes it;
* **bounded retries** — transport failures back off exponentially, and 503
  responses honor the server's ``Retry-After`` hint (capped by
  ``DiagnoserConfig.retry_after_cap_seconds``) before the typed
  :class:`~repro.exceptions.ServiceSaturatedError` is surfaced;
* **typed errors** — every non-200 response is mapped back onto the
  :mod:`repro.exceptions` hierarchy via
  :func:`~repro.exceptions.exception_from_wire`, so remote callers catch the
  same exception classes embedded callers do;
* **cache visibility** — the gateway's ``X-Response-Cache`` header is
  surfaced as :attr:`DiagnosisReport.cache_state`.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..exceptions import (
    ConfigurationError,
    RemoteTransportError,
    exception_from_wire,
)
from ..obs import current_request_id, get_tracer
from .config import DiagnoserConfig
from .diagnoser import Diagnoser
from .schema import DiagnosisReport, DiagnosisRequest, JsonDict

__all__ = ["RemoteDiagnoser"]


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class RemoteDiagnoser(Diagnoser):
    """Diagnose against a remote ``repro-serve`` front end (gateway or threading).

    Parameters
    ----------
    url:
        Base URL of the server, e.g. ``"http://127.0.0.1:8421"``.
    config:
        Shared :class:`DiagnoserConfig`; the remote-client knobs
        (``read_timeout``, ``max_retries``, ``retry_backoff_seconds``,
        ``retry_after_cap_seconds``) apply here.
    default_model:
        Model name used when a convenience call omits ``model=``.
    """

    def __init__(
        self,
        url: str,
        config: Optional[DiagnoserConfig] = None,
        default_model: Optional[str] = None,
    ) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ConfigurationError(
                f"RemoteDiagnoser needs an http://host[:port] URL, got {url!r}"
            )
        if parts.path not in ("", "/") or parts.query or parts.fragment:
            # Silently dropping a path prefix would send every request to the
            # wrong endpoint behind a path-routing proxy; refuse loudly.
            raise ConfigurationError(
                f"RemoteDiagnoser takes a bare base URL (no path/query), got {url!r}"
            )
        self.config = config if config is not None else DiagnoserConfig()
        self.default_model = default_model
        self.host: str = parts.hostname
        self.port: int = parts.port if parts.port is not None else 80
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ----------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.config.read_timeout
            )
        return self._connection

    def _reset_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - close() of a dead socket
                pass
            self._connection = None

    def _trace_headers(self) -> Dict[str, str]:
        """Propagation headers for the current context (empty when disabled).

        ``X-Request-ID`` carries request identity; ``X-Trace-Parent`` lets
        the server parent its root span under this client's active span, so
        one trace stitches both processes.  ``config.propagate_trace_headers``
        turns both off for servers that must not see client identifiers.
        """
        if not self.config.propagate_trace_headers:
            return {}
        headers: Dict[str, str] = {}
        request_id = current_request_id()
        if request_id is not None:
            headers["X-Request-ID"] = request_id
        context = get_tracer().current_context()
        if context is not None:
            headers["X-Trace-Parent"] = context.header_value()
        return headers

    def _roundtrip(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request over the keep-alive connection; raises on transport failure."""
        connection = self._connect()
        headers = {"Content-Type": "application/json"} if body is not None else {}
        headers.update(self._trace_headers())
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        payload = response.read()
        header_map = {name.lower(): value for name, value in response.getheaders()}
        if header_map.get("connection", "").lower() == "close":
            self._reset_connection()
        return response.status, header_map, payload

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, str], JsonDict]:
        """Issue one HTTP request with bounded retries.

        Transport failures (connection refused/reset, protocol errors) retry
        with exponential backoff; 503 responses retry after the server's
        ``Retry-After`` hint.  Both budgets share ``config.max_retries``.
        """
        attempts = int(self.config.max_retries) + 1
        last_error: Optional[Exception] = None
        with self._lock:
            for attempt in range(attempts):
                try:
                    status, headers, payload = self._roundtrip(method, path, body)
                except (OSError, http.client.HTTPException) as error:
                    self._reset_connection()
                    last_error = error
                    if attempt + 1 < attempts:
                        time.sleep(self.config.retry_backoff_seconds * (2 ** attempt))
                        continue
                    raise RemoteTransportError(
                        f"{method} {self.url}{path} failed after {attempts} attempt(s): "
                        f"{type(error).__name__}: {error}"
                    ) from error
                if status == 503 and attempt + 1 < attempts:
                    retry_after = _parse_retry_after(headers.get("retry-after"))
                    delay = min(
                        retry_after if retry_after is not None
                        else self.config.retry_backoff_seconds,
                        self.config.retry_after_cap_seconds,
                    )
                    time.sleep(delay)
                    continue
                return status, headers, self._decode(payload)
        raise RemoteTransportError(
            f"{method} {self.url}{path} failed: {last_error}"
        )  # pragma: no cover - loop always returns or raises

    @staticmethod
    def _decode(payload: bytes) -> JsonDict:
        try:
            decoded = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RemoteTransportError(f"undecodable response body: {error}") from error
        if not isinstance(decoded, dict):
            raise RemoteTransportError("response body must be a JSON object")
        return decoded

    @staticmethod
    def _raise_for_error(status: int, headers: Dict[str, str], payload: JsonDict) -> None:
        message = str(payload.get("error", f"HTTP {status}"))
        error_type = payload.get("error_type")
        raise exception_from_wire(
            status,
            message,
            error_type=error_type if isinstance(error_type, str) else None,
            retry_after=_parse_retry_after(headers.get("retry-after")),
        )

    # -- the Diagnoser surface -----------------------------------------------------

    def _diagnose(self, request: DiagnosisRequest) -> DiagnosisReport:
        body = json.dumps(request.to_dict()).encode("utf-8")
        with get_tracer().span(
            "remote.roundtrip", {"url": self.url, "body_bytes": len(body)}
        ) as rt_span:
            status, headers, payload = self._request("POST", "/diagnose", body)
            rt_span.set_attribute("status", status)
        if status != 200:
            self._raise_for_error(status, headers, payload)
        return DiagnosisReport.from_dict(
            payload, cache_state=headers.get("x-response-cache")
        )

    # -- server introspection -------------------------------------------------------

    def _get(self, path: str) -> JsonDict:
        status, headers, payload = self._request("GET", path)
        if status != 200:
            self._raise_for_error(status, headers, payload)
        return payload

    def health(self) -> JsonDict:
        """The server's ``GET /health`` document."""
        return self._get("/health")

    def models(self) -> JsonDict:
        """The server's ``GET /models`` document (registered artifact records)."""
        return self._get("/models")

    def stats(self) -> JsonDict:
        """The server's ``GET /stats`` document."""
        return self._get("/stats")

    def metrics(self) -> JsonDict:
        """The server's ``GET /metrics`` document."""
        return self._get("/metrics")

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._reset_connection()

    def __repr__(self) -> str:
        return f"RemoteDiagnoser(url={self.url!r}, default_model={self.default_model!r})"
