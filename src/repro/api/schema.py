"""The versioned ``v1`` diagnosis schema: one format for library and wire.

:class:`DiagnosisRequest` and :class:`DiagnosisReport` are the typed objects
every :class:`~repro.api.Diagnoser` backend consumes and produces.  Their
``to_dict``/``from_dict`` forms ARE the HTTP wire format of the serving front
ends (:mod:`repro.serve.protocol` derives its request parsing from
:meth:`DiagnosisRequest.from_dict`, and ``DefectReport.as_dict`` delegates to
:meth:`DiagnosisReport.from_defect_report`), so an embedded caller and a
remote caller exchange exactly the same documents.

Every payload carries a ``"schema"`` field (currently ``"v1"``; absent means
``v1`` for backward compatibility).  Unknown versions are rejected with
:class:`~repro.exceptions.SchemaVersionError` instead of being half-parsed,
and unknown *fields* are rejected too: schema evolution happens by bumping
the version, not by smuggling loose keys past validation, so a client typo
(``"lables"``) fails loudly instead of silently diagnosing garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..defects.spec import DefectType
from ..exceptions import ConfigurationError, SchemaVersionError, ServeError
from ..nn.dtype import policy_float

__all__ = [
    "SCHEMA_VERSION",
    "REQUEST_ID_METADATA_KEY",
    "DEFECT_KEYS",
    "CONTEXT_KEYS",
    "REQUEST_FIELDS",
    "REPORT_FIELDS",
    "DiagnosisRequest",
    "DiagnosisReport",
    "validate_arrays",
    "batch_slices",
]

#: The schema version this library speaks.
SCHEMA_VERSION = "v1"

#: Metadata key carrying the request id end to end.  ``metadata`` is the
#: schema's free-form extension point, so request identity rides in-band
#: through every backend (and into the report, whose metadata merges the
#: request's) without a v2 schema bump.
REQUEST_ID_METADATA_KEY = "request_id"

#: Canonical defect keys, in report order (ITD, UTD, SD — the paper's Table I order).
DEFECT_KEYS: Tuple[str, ...] = (
    DefectType.ITD.value,
    DefectType.UTD.value,
    DefectType.SD.value,
)

#: Canonical context keys of a ``v1`` report.
CONTEXT_KEYS: Tuple[str, ...] = (
    "error_concentration",
    "pattern_overlap",
    "feature_quality",
    "training_inconsistency",
)

#: Top-level fields of a ``v1`` request document.
REQUEST_FIELDS: Tuple[str, ...] = ("schema", "model", "inputs", "labels", "version", "metadata")

#: Top-level fields of a ``v1`` report document.
REPORT_FIELDS: Tuple[str, ...] = (
    "schema",
    "num_cases",
    "ratios",
    "counts",
    "dominant_defect",
    "metadata",
    "context",
)

ArrayLike = Union[np.ndarray, Sequence[object]]
Metadata = Dict[str, object]
JsonDict = Dict[str, object]


def _check_schema_version(payload: JsonDict, kind: str) -> None:
    declared = payload.get("schema", SCHEMA_VERSION)
    if declared != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"unsupported {kind} schema version {declared!r}; this library speaks "
            f"{SCHEMA_VERSION!r}"
        )


def validate_arrays(inputs: ArrayLike, labels: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce and validate a diagnosis batch into ``(float inputs, int64 labels)``.

    The single validation every backend shares — local, in-process service,
    and the HTTP front ends all funnel request payloads through here, so the
    accepted shapes (and the rejection messages) cannot drift apart.

    Input dtype follows the :mod:`repro.nn.dtype` policy: float32 and float64
    arrays pass through untouched (a float32 batch from a binary-codec client
    is served as float32, no silent up-then-down round-trip), anything else —
    including JSON nested lists, which numpy reads as float64 — is cast to the
    active compute dtype (float64 unless overridden).
    """
    inputs_arr = policy_float(np.asarray(inputs))
    labels_arr = np.asarray(labels)
    if inputs_arr.ndim < 2:
        raise ConfigurationError(
            f"inputs must be a batch of examples (ndim >= 2), got shape {inputs_arr.shape}"
        )
    if inputs_arr.shape[0] == 0:
        raise ConfigurationError("cannot diagnose an empty batch of production cases")
    if labels_arr.ndim != 1 or labels_arr.shape[0] != inputs_arr.shape[0]:
        raise ConfigurationError(
            f"labels must be 1-D with one entry per input, got shape {labels_arr.shape} "
            f"for {inputs_arr.shape[0]} inputs"
        )
    return inputs_arr, labels_arr.astype(np.int64)


def _as_jsonable(values: ArrayLike) -> object:
    """Arrays become nested lists; everything else passes through unchanged."""
    if isinstance(values, np.ndarray):
        return values.tolist()
    return values


@dataclass
class DiagnosisRequest:
    """One diagnosis request: a labeled production batch for a named model.

    Attributes
    ----------
    model:
        Registered artifact name the batch should be diagnosed against.
    inputs:
        Batch of model inputs — an array or nested lists, shape ``(n, ...)``.
    labels:
        Ground-truth labels, length ``n``.
    version:
        Pinned artifact version (``None`` resolves to the latest).
    metadata:
        Free-form request context merged into the report's metadata.
    schema:
        Schema version of this document; always ``"v1"`` today.
    """

    model: str
    inputs: ArrayLike
    labels: ArrayLike
    version: Optional[str] = None
    metadata: Optional[Metadata] = None
    schema: str = SCHEMA_VERSION

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The validated ``(inputs, labels)`` arrays of this request."""
        return validate_arrays(self.inputs, self.labels)

    @property
    def request_id(self) -> Optional[str]:
        """The request id riding in metadata, if any (see the module note)."""
        value = (self.metadata or {}).get(REQUEST_ID_METADATA_KEY)
        return str(value) if value is not None else None

    def with_request_id(self, request_id: str) -> "DiagnosisRequest":
        """A copy carrying ``request_id`` in its metadata (self if already set)."""
        if self.request_id is not None:
            return self
        metadata = dict(self.metadata or {})
        metadata[REQUEST_ID_METADATA_KEY] = str(request_id)
        return DiagnosisRequest(
            model=self.model,
            inputs=self.inputs,
            labels=self.labels,
            version=self.version,
            metadata=metadata,
            schema=self.schema,
        )

    def to_dict(self) -> JsonDict:
        """The request as its ``v1`` wire document (arrays become lists)."""
        payload: JsonDict = {
            "schema": self.schema,
            "model": self.model,
            "inputs": _as_jsonable(self.inputs),
            "labels": _as_jsonable(self.labels),
        }
        if self.version is not None:
            payload["version"] = self.version
        if self.metadata is not None:
            payload["metadata"] = dict(self.metadata)
        return payload

    @classmethod
    def from_dict(cls, payload: JsonDict) -> "DiagnosisRequest":
        """Parse and validate a ``v1`` request document.

        Raises :class:`~repro.exceptions.SchemaVersionError` on an unknown
        ``schema`` and :class:`~repro.exceptions.ServeError` on any other
        schema violation (missing/mistyped/unknown fields) — the same errors
        the HTTP front ends turn into 400 responses.
        """
        if not isinstance(payload, dict):
            raise ServeError("JSON body must be an object")
        _check_schema_version(payload, "request")
        unknown = sorted(set(payload) - set(REQUEST_FIELDS))
        if unknown:
            raise ServeError(f"unknown request field(s): {', '.join(unknown)}")
        for required in ("model", "inputs", "labels"):
            if required not in payload:
                raise ServeError(f"missing required field {required!r}")
        model = payload["model"]
        if not isinstance(model, str):
            raise ServeError("'model' must be a string")
        version = payload.get("version")
        if version is not None and not isinstance(version, str):
            raise ServeError("'version' must be a string when given")
        metadata = payload.get("metadata")
        if metadata is not None and not isinstance(metadata, dict):
            raise ServeError("'metadata' must be an object when given")
        return cls(
            model=model,
            inputs=payload["inputs"],
            labels=payload["labels"],
            version=version,
            metadata=metadata,
            schema=str(payload.get("schema", SCHEMA_VERSION)),
        )

    # -- wire forms (delegated to the codec layer) ---------------------------------

    def encode(self, codec: Union[str, "object", None] = None) -> bytes:
        """This request as wire bytes under ``codec`` (name/instance; ``None`` → JSON)."""
        from .. import wire

        return wire.get_codec(codec).encode_request(self)  # type: ignore[arg-type]

    @classmethod
    def decode(cls, data: bytes, codec: Union[str, "object", None] = None) -> "DiagnosisRequest":
        """Parse wire bytes produced by :meth:`encode` under the same codec."""
        from .. import wire

        return wire.get_codec(codec).decode_request(data)  # type: ignore[arg-type]


@dataclass
class DiagnosisReport:
    """The result of one diagnosis, in the canonical ``v1`` shape.

    The typed counterpart of the wire document every backend returns:
    defect keys are plain strings (``"itd"``/``"utd"``/``"sd"``) so the
    object round-trips through JSON unchanged.  Use :meth:`to_defect_report`
    when the richer :class:`~repro.core.DefectReport` (typed enums, per-case
    verdicts) is needed.

    Attributes
    ----------
    num_cases:
        Number of faulty cases the diagnosis aggregated.
    ratios:
        Fraction of defect evidence per defect key (sums to 1).
    counts:
        Hard per-case verdict counts per defect key.
    metadata:
        Free-form context (model, version, num_production_cases, ...).
    context:
        Model-level diagnosis signals (see :data:`CONTEXT_KEYS`), if known.
    schema:
        Schema version of this document; always ``"v1"`` today.
    cache_state:
        Transport annotation (``"hit"``/``"miss"``/``"off"``) from the
        gateway's ``X-Response-Cache`` header; never serialized.
    """

    num_cases: int
    ratios: Dict[str, float]
    counts: Dict[str, int]
    metadata: Metadata = field(default_factory=dict)
    context: Optional[Dict[str, float]] = None
    schema: str = SCHEMA_VERSION
    cache_state: Optional[str] = None

    # -- views -------------------------------------------------------------------

    @property
    def dominant_defect(self) -> str:
        """The defect key with the highest ratio (the paper's reported diagnosis)."""
        return max(self.ratios, key=lambda key: self.ratios[key])

    @property
    def request_id(self) -> Optional[str]:
        """The originating request's id, when it rode the request metadata."""
        value = self.metadata.get(REQUEST_ID_METADATA_KEY)
        return str(value) if value is not None else None

    def ratio(self, defect: Union[str, DefectType]) -> float:
        """The ratio of one defect type (by key or :class:`DefectType`)."""
        key = defect.value if isinstance(defect, DefectType) else str(defect)
        return float(self.ratios.get(key, 0.0))

    def format_row(self) -> str:
        """The report as a Table-I-style row: ``ITD  UTD  SD`` ratios."""
        return "  ".join(
            f"{key.upper()}={self.ratios.get(key, 0.0):.3f}" for key in DEFECT_KEYS
        )

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Diagnosed {self.num_cases} faulty case(s)",
            f"  ratios: {self.format_row()}",
            f"  dominant defect: {self.dominant_defect.upper()}",
        ]
        if self.metadata:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items()))
            lines.append(f"  context: {pairs}")
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> JsonDict:
        """The report as its ``v1`` wire document."""
        payload: JsonDict = {
            "schema": self.schema,
            "num_cases": int(self.num_cases),
            "ratios": {key: float(value) for key, value in self.ratios.items()},
            "counts": {key: int(value) for key, value in self.counts.items()},
            "dominant_defect": self.dominant_defect,
            "metadata": dict(self.metadata),
        }
        if self.context is not None:
            payload["context"] = {key: float(value) for key, value in self.context.items()}
        return payload

    def as_dict(self) -> JsonDict:
        """Alias of :meth:`to_dict` (matches ``DefectReport.as_dict``)."""
        return self.to_dict()

    @classmethod
    def from_dict(cls, payload: JsonDict, cache_state: Optional[str] = None) -> "DiagnosisReport":
        """Parse and validate a ``v1`` report document."""
        if not isinstance(payload, dict):
            raise ServeError("report document must be an object")
        _check_schema_version(payload, "report")
        unknown = sorted(set(payload) - set(REPORT_FIELDS))
        if unknown:
            raise ServeError(f"unknown report field(s): {', '.join(unknown)}")
        for required in ("num_cases", "ratios", "counts"):
            if required not in payload:
                raise ServeError(f"missing required report field {required!r}")
        ratios = payload["ratios"]
        counts = payload["counts"]
        if not isinstance(ratios, dict) or not isinstance(counts, dict):
            raise ServeError("'ratios' and 'counts' must be objects")
        if not ratios:
            # dominant_defect (and thus to_dict) reduces over the ratios; an
            # empty mapping must fail here, typed, not later in max().
            raise ServeError("'ratios' must be a non-empty object")
        for mapping in (ratios, counts):
            bad = sorted(set(mapping) - set(DEFECT_KEYS))
            if bad:
                raise ServeError(f"unknown defect key(s): {', '.join(bad)}")
        context = payload.get("context")
        if context is not None:
            if not isinstance(context, dict):
                raise ServeError("'context' must be an object when given")
            bad = sorted(set(context) - set(CONTEXT_KEYS))
            if bad:
                raise ServeError(f"unknown context key(s): {', '.join(bad)}")
        metadata = payload.get("metadata") or {}
        if not isinstance(metadata, dict):
            raise ServeError("'metadata' must be an object when given")
        return cls(
            num_cases=int(payload["num_cases"]),  # type: ignore[call-overload]
            ratios={key: float(value) for key, value in ratios.items()},
            counts={key: int(value) for key, value in counts.items()},
            metadata=dict(metadata),
            context=(
                {key: float(value) for key, value in context.items()}
                if context is not None
                else None
            ),
            schema=str(payload.get("schema", SCHEMA_VERSION)),
            cache_state=cache_state,
        )

    # -- wire forms (delegated to the codec layer) ---------------------------------

    def encode(self, codec: Union[str, "object", None] = None) -> bytes:
        """This report as wire bytes under ``codec`` (name/instance; ``None`` → JSON)."""
        from .. import wire

        return wire.get_codec(codec).encode_report(self)  # type: ignore[arg-type]

    @classmethod
    def decode(
        cls,
        data: bytes,
        codec: Union[str, "object", None] = None,
        cache_state: Optional[str] = None,
    ) -> "DiagnosisReport":
        """Parse wire bytes produced by :meth:`encode` under the same codec."""
        from .. import wire

        return wire.get_codec(codec).decode_report(data, cache_state=cache_state)  # type: ignore[arg-type]

    # -- bridges to the core pipeline ----------------------------------------------

    @classmethod
    def from_defect_report(
        cls, report: object, cache_state: Optional[str] = None
    ) -> "DiagnosisReport":
        """Build the schema object from a :class:`~repro.core.DefectReport`.

        This is THE report-dict assembly of the library: ``DefectReport.as_dict``
        delegates here, so the service layer, the HTTP front ends, and the
        typed API cannot disagree on field names or defect-key spelling.
        """
        context: Optional[Dict[str, float]] = None
        report_context = getattr(report, "context", None)
        if report_context is not None:
            context = {key: float(getattr(report_context, key)) for key in CONTEXT_KEYS}
        ratios: Dict[DefectType, float] = getattr(report, "ratios")
        counts: Dict[DefectType, int] = getattr(report, "counts")
        return cls(
            num_cases=int(getattr(report, "num_cases")),
            ratios={defect.value: float(value) for defect, value in ratios.items()},
            counts={defect.value: int(value) for defect, value in counts.items()},
            metadata=dict(getattr(report, "metadata", {}) or {}),
            context=context,
            cache_state=cache_state,
        )

    def to_defect_report(self) -> object:
        """Rebuild a :class:`~repro.core.DefectReport` view (without per-case verdicts)."""
        from ..core.classifier import DefectReport, DiagnosisContext

        context = None
        if self.context is not None:
            context = DiagnosisContext(**{key: self.context[key] for key in self.context})
        return DefectReport(
            ratios={DefectType(key): float(value) for key, value in self.ratios.items()},
            counts={DefectType(key): int(value) for key, value in self.counts.items()},
            num_cases=int(self.num_cases),
            verdicts=[],
            context=context,
            metadata=dict(self.metadata),
        )


def batch_slices(total: int, batch_size: int) -> Iterable[slice]:
    """Slices covering ``range(total)`` in chunks of ``batch_size`` (streaming helper)."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    return (slice(start, min(start + batch_size, total)) for start in range(0, total, batch_size))
