"""``DiagnoserConfig``: one configuration object for every diagnosis backend.

Before this module the same knobs were spelled four different ways — as
``DeepMorph.__init__`` kwargs, as ``DiagnosisService.__init__`` kwargs, as
``repro-serve`` command-line flags, and as ad-hoc arguments inside
``experiments.runner``.  :class:`DiagnoserConfig` consolidates them: one
validated, immutable dataclass that each layer projects its own kwargs from
(:meth:`deepmorph_kwargs`, :meth:`service_kwargs`), so adding a knob is one
field here instead of four copies drifting apart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core.classifier import DefectClassifierConfig
from ..core.diagnosis import DeepMorph
from ..exceptions import ConfigurationError
from ..rng import RngLike


@dataclass(frozen=True)
class DiagnoserConfig:
    """Every knob of the diagnosis pipeline and its serving layers.

    Pipeline (``DeepMorph``) knobs
    ------------------------------
    probe_epochs, probe_learning_rate, probe_batch_size:
        Training hyper-parameters of the auxiliary softmax probes.
    classifier_config:
        Weights of the per-case defect scoring rule.
    correct_only_patterns:
        Learn class execution patterns from correctly-classified training
        cases only (the default) or from all of them.
    late_layer_emphasis:
        Late-layer weighting of the pattern library.
    max_spatial:
        Spatial pooling cap applied to convolutional activations.
    inference_dtype:
        Extraction precision (``"float32"``/``"float64"``).  ``None`` defers
        to each component's own default — float32 for a fresh ``DeepMorph``,
        the artifact's saved policy for a loaded one.

    Service knobs
    -------------
    extraction_batch_size:
        Chunk size of instrumented forward passes (shared by every backend so
        local and served extraction stay bitwise-identical).
    max_batch_cases, batch_wait_seconds:
        Request-coalescing knobs of the batching engine.
    cache_size:
        Footprint-cache capacity in cases (0 disables caching).
    num_workers:
        Worker threads for asynchronous jobs.
    max_loaded_models:
        Resident fitted-model LRU capacity.
    request_timeout:
        Seconds a synchronous diagnosis waits on the engine.
    monitor:
        Enable the online monitor (:mod:`repro.monitor`): drift windows fed
        from the batching engine, drift gauges on ``/metrics``, and the
        ``GET /monitor`` endpoint.
    monitor_window:
        Sliding-window capacity (served cases) per model for drift scoring.
    monitor_max_age_seconds:
        Time-based window expiry; ``None`` keeps cases until displaced.
    drift_threshold:
        Warn-level normalized-divergence threshold of the drift detector
        (critical fires at twice this value).
    monitor_update_cases:
        Labeled cases buffered before an incremental ``partial_fit`` update
        is applied and snapshotted to the registry; 0 disables online
        updates (monitoring stays observe-only).

    Remote-client knobs
    -------------------
    read_timeout:
        Socket timeout of :class:`~repro.api.RemoteDiagnoser` (covers connect
        and response read; stdlib ``http.client`` has a single timeout).
    max_retries:
        Bounded retry budget for transport failures and 503 responses.
    retry_backoff_seconds:
        Base of the full-jitter exponential backoff between transport
        retries: attempt ``n`` sleeps ``uniform(0, base * 2**n)``, so a
        burst of failing clients decorrelates instead of retrying in
        lock-step.
    retry_after_cap_seconds:
        Upper bound honored for a server-sent ``Retry-After`` hint.
    deadline_seconds:
        Total budget stamped on remote requests as ``X-Deadline-Ms``; the
        server refuses work the budget can no longer pay for (HTTP 504).
        ``None`` (the default) sends no deadline.
    hedge_after_seconds:
        When set, a ``/diagnose`` call that has not answered after this many
        seconds launches one backup attempt; the first response wins and the
        loser is abandoned.  Tail-latency insurance for idempotent reads;
        ``None`` disables hedging.
    breaker_failure_threshold, breaker_reset_seconds:
        Client-side circuit breaker of :class:`~repro.api.RemoteDiagnoser`:
        after ``breaker_failure_threshold`` consecutive failures calls fail
        locally with :class:`~repro.exceptions.CircuitOpenError` until a
        half-open probe succeeds after ``breaker_reset_seconds``.
    propagate_trace_headers:
        Send ``X-Request-ID`` / ``X-Trace-Parent`` on remote requests when
        tracing is enabled, so client- and server-side spans stitch into one
        trace.  Disable for servers that must not receive client identifiers.
    wire_codec:
        Wire encoding of :class:`~repro.api.RemoteDiagnoser` requests (and
        the server default of ``repro-serve``): ``"json"`` (the default and
        compatibility path) or ``"binary"`` (framed raw-array transport; see
        :mod:`repro.wire`).
    connection_pool_size:
        Keep-alive connections a :class:`~repro.api.RemoteDiagnoser` retains
        for reuse; concurrent callers beyond the pool size open short-lived
        extra connections.
    """

    # -- pipeline --------------------------------------------------------------
    probe_epochs: int = 12
    probe_learning_rate: float = 0.01
    probe_batch_size: int = 64
    classifier_config: Optional[DefectClassifierConfig] = None
    correct_only_patterns: bool = True
    late_layer_emphasis: float = 0.5
    max_spatial: int = 4
    inference_dtype: Optional[str] = None
    # -- service ---------------------------------------------------------------
    extraction_batch_size: int = 128
    max_batch_cases: int = 512
    batch_wait_seconds: float = 0.005
    cache_size: int = 4096
    num_workers: int = 2
    max_loaded_models: int = 8
    request_timeout: float = 120.0
    monitor: bool = False
    monitor_window: int = 2048
    monitor_max_age_seconds: Optional[float] = 600.0
    drift_threshold: float = 2.0
    monitor_update_cases: int = 0
    # -- remote client ----------------------------------------------------------
    read_timeout: float = 120.0
    max_retries: int = 2
    retry_backoff_seconds: float = 0.25
    retry_after_cap_seconds: float = 5.0
    propagate_trace_headers: bool = True
    wire_codec: str = "json"
    connection_pool_size: int = 2
    deadline_seconds: Optional[float] = None
    hedge_after_seconds: Optional[float] = None
    breaker_failure_threshold: int = 5
    breaker_reset_seconds: float = 5.0

    def __post_init__(self) -> None:
        positive_ints = {
            "probe_epochs": self.probe_epochs,
            "probe_batch_size": self.probe_batch_size,
            "extraction_batch_size": self.extraction_batch_size,
            "max_batch_cases": self.max_batch_cases,
            "num_workers": self.num_workers,
            "max_loaded_models": self.max_loaded_models,
            "connection_pool_size": self.connection_pool_size,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "monitor_window": self.monitor_window,
        }
        for name, value in positive_ints.items():
            if int(value) < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        positive_floats = {
            "probe_learning_rate": self.probe_learning_rate,
            "request_timeout": self.request_timeout,
            "read_timeout": self.read_timeout,
        }
        for name, value in positive_floats.items():
            if float(value) <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")
        non_negative = {
            "batch_wait_seconds": self.batch_wait_seconds,
            "cache_size": self.cache_size,
            "max_retries": self.max_retries,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "retry_after_cap_seconds": self.retry_after_cap_seconds,
            "breaker_reset_seconds": self.breaker_reset_seconds,
            "monitor_update_cases": self.monitor_update_cases,
        }
        for name, value in non_negative.items():
            if float(value) < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        for name, value in (
            ("deadline_seconds", self.deadline_seconds),
            ("hedge_after_seconds", self.hedge_after_seconds),
            ("monitor_max_age_seconds", self.monitor_max_age_seconds),
        ):
            if value is not None and float(value) <= 0:
                raise ConfigurationError(f"{name} must be > 0 or None, got {value}")
        if float(self.drift_threshold) <= 0:
            raise ConfigurationError(
                f"drift_threshold must be > 0, got {self.drift_threshold}"
            )
        if self.inference_dtype is not None and self.inference_dtype not in (
            "float32",
            "float64",
        ):
            raise ConfigurationError(
                f"inference_dtype must be 'float32', 'float64' or None, "
                f"got {self.inference_dtype!r}"
            )
        # Resolved (not just name-checked) against the codec registry, so the
        # error message always lists what is actually registered.  Imported
        # lazily: repro.wire depends on repro.api.schema.
        from ..wire import get_codec

        get_codec(self.wire_codec)

    # -- projections ------------------------------------------------------------

    def deepmorph_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for :class:`~repro.core.DeepMorph`.

        ``inference_dtype=None`` is omitted so the facade keeps its own
        default (float32) rather than receiving an explicit override.
        """
        kwargs: Dict[str, object] = {
            "probe_epochs": self.probe_epochs,
            "probe_learning_rate": self.probe_learning_rate,
            "probe_batch_size": self.probe_batch_size,
            "classifier_config": self.classifier_config,
            "correct_only_patterns": self.correct_only_patterns,
            "late_layer_emphasis": self.late_layer_emphasis,
            "max_spatial": self.max_spatial,
        }
        if self.inference_dtype is not None:
            kwargs["inference_dtype"] = self.inference_dtype
        return kwargs

    def service_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for :class:`~repro.serve.DiagnosisService`."""
        return {
            "max_batch_cases": self.max_batch_cases,
            "batch_wait_seconds": self.batch_wait_seconds,
            "cache_size": self.cache_size,
            "num_workers": self.num_workers,
            "max_loaded_models": self.max_loaded_models,
            "extraction_batch_size": self.extraction_batch_size,
            "request_timeout": self.request_timeout,
            "inference_dtype": self.inference_dtype,
            "monitor": self.monitor,
            "monitor_window": self.monitor_window,
            "monitor_max_age_seconds": self.monitor_max_age_seconds,
            "drift_threshold": self.drift_threshold,
            "monitor_update_cases": self.monitor_update_cases,
        }

    def build_deepmorph(self, rng: RngLike = None) -> DeepMorph:
        """Construct a fresh (unfitted) :class:`~repro.core.DeepMorph`."""
        return DeepMorph(rng=rng, **self.deepmorph_kwargs())  # type: ignore[arg-type]

    def with_overrides(self, **changes: object) -> "DiagnoserConfig":
        """A copy of this config with the given fields replaced (re-validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]
