"""repro.api — the versioned public diagnosis API.

The paper's Figure-1 workflow behind one stable, schema-versioned surface:

* :mod:`~repro.api.schema` — the ``v1`` :class:`DiagnosisRequest` /
  :class:`DiagnosisReport` documents; the wire format of the serving front
  ends IS this library format.
* :mod:`~repro.api.config` — :class:`DiagnoserConfig`, the one configuration
  object the pipeline, service, CLI, and remote client all project from.
* :mod:`~repro.api.diagnoser` / :mod:`~repro.api.remote` — the
  :class:`Diagnoser` interface with three interchangeable backends:

  ==================== ============================ ==========================
  backend              runs                         pick it when
  ==================== ============================ ==========================
  ``LocalDiagnoser``   in this process, no serving  scripts, notebooks, tests
  ``ServiceDiagnoser`` in-process service/replicas  one app, many callers
  ``RemoteDiagnoser``  against a repro-serve server fleet-wide scale-out
  ==================== ============================ ==========================

All three return bitwise-identical reports for the same artifact and inputs.

Quickstart::

    from repro.api import DiagnoserConfig, LocalDiagnoser

    diagnoser = LocalDiagnoser.from_registry("./registry", "prod-lenet")
    report = diagnoser.diagnose_arrays(inputs, labels)
    print(report.summary())

The backend classes are loaded lazily (they pull in the serving stack, which
itself imports this package's schema module for the shared wire format).
"""

from __future__ import annotations

from importlib import import_module
from typing import Dict, List

from .config import DiagnoserConfig
from .schema import (
    CONTEXT_KEYS,
    DEFECT_KEYS,
    REPORT_FIELDS,
    REQUEST_FIELDS,
    SCHEMA_VERSION,
    DiagnosisReport,
    DiagnosisRequest,
    validate_arrays,
)

__all__ = [
    "SCHEMA_VERSION",
    "DEFECT_KEYS",
    "CONTEXT_KEYS",
    "REQUEST_FIELDS",
    "REPORT_FIELDS",
    "DiagnosisRequest",
    "DiagnosisReport",
    "DiagnoserConfig",
    "validate_arrays",
    "Diagnoser",
    "LocalDiagnoser",
    "ServiceDiagnoser",
    "RemoteDiagnoser",
]

#: Backends resolved on first attribute access (PEP 562) to keep
#: ``repro.serve -> repro.api.schema`` imports cycle-free.
_LAZY_EXPORTS: Dict[str, str] = {
    "Diagnoser": "repro.api.diagnoser",
    "LocalDiagnoser": "repro.api.diagnoser",
    "ServiceDiagnoser": "repro.api.diagnoser",
    "RemoteDiagnoser": "repro.api.remote",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
