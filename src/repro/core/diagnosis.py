"""The DeepMorph facade: the paper's end-to-end pipeline behind one class.

Figure 1 of the paper shows the workflow: build the softmax-instrumented
model → learn per-class execution patterns from the training data → feed the
faulty cases through the instrumented model to extract footprint specifics →
reason about the defect and report the ratio of each defect type.
:class:`DeepMorph` exposes that workflow as ``fit`` + ``diagnose``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import ArrayDataset, Dataset
from ..exceptions import (
    ConfigurationError,
    DatasetError,
    NoFaultyCasesError,
    NotFittedError,
)
from ..models.base import ClassifierModel
from ..nn.dtype import compute_dtype, policy_float
from ..rng import RngLike, ensure_rng, spawn
from .classifier import (
    DefectCaseClassifier,
    DefectClassifierConfig,
    DefectReport,
)
from .footprint import Footprint, FootprintExtractor
from .instrument import SoftmaxInstrumentedModel
from .patterns import PatternLibrary
from .specifics import FootprintSpecifics, compute_specifics_batch

__all__ = ["DeepMorph", "find_faulty_cases"]


def _dataset_batches(dataset: Dataset, batch_size: int):
    """Yield ``(inputs, labels)`` array batches without materializing the full set.

    Array-backed datasets are sliced directly (zero-copy views); anything else
    is assembled batch by batch through ``__getitem__``, so memory stays flat
    even for lazily-generated production sets.
    """
    n = len(dataset)
    if isinstance(dataset, ArrayDataset):
        inputs, labels = dataset.inputs, dataset.labels
        for start in range(0, n, batch_size):
            yield inputs[start:start + batch_size], labels[start:start + batch_size]
        return
    for start in range(0, n, batch_size):
        pairs = [dataset[i] for i in range(start, min(start + batch_size, n))]
        yield (
            np.stack([policy_float(x) for x, _ in pairs]),
            np.asarray([y for _, y in pairs], dtype=np.int64),
        )


def find_faulty_cases(
    model: ClassifierModel, dataset: Dataset, batch_size: int = 256
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Identify the misclassified examples of ``dataset``.

    Returns ``(inputs, true_labels, predicted_labels)`` of the faulty cases —
    the paper's "faulty cases found in the test data".  The dataset is
    streamed in batches of ``batch_size``; only the faulty rows are ever
    copied, so memory usage is bounded by the number of faulty cases, not the
    size of the production set.
    """
    if len(dataset) == 0:
        raise DatasetError("cannot search for faulty cases in an empty dataset")
    faulty_inputs: List[np.ndarray] = []
    faulty_labels: List[np.ndarray] = []
    faulty_predictions: List[np.ndarray] = []
    for batch_inputs, batch_labels in _dataset_batches(dataset, batch_size):
        predictions = model.predict(batch_inputs, batch_size=batch_size)
        mask = predictions != batch_labels
        if mask.any():
            # Batches are already policy-dtyped floats (ArrayDataset stores
            # float64, _dataset_batches coerces the rest); mask indexing
            # copies just the faulty rows without a further cast.
            faulty_inputs.append(batch_inputs[mask])
            faulty_labels.append(batch_labels[mask])
            faulty_predictions.append(predictions[mask])
    if not faulty_inputs:
        empty = np.zeros((0,) + tuple(dataset.input_shape), dtype=compute_dtype())
        return empty, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return (
        np.concatenate(faulty_inputs, axis=0),
        np.concatenate(faulty_labels, axis=0),
        np.concatenate(faulty_predictions, axis=0),
    )


class DeepMorph:
    """Locate the dominant defect behind a model's bad performance.

    Typical usage::

        morph = DeepMorph(rng=0)
        morph.fit(model, train_data)
        report = morph.diagnose_dataset(production_data)
        print(report.summary())

    This class is the diagnosis *engine*; the stable public surface is
    :mod:`repro.api` — wrap a fitted instance in
    :class:`repro.api.LocalDiagnoser` to get the versioned
    request/report schema and interchangeable local/service/remote backends.

    Parameters
    ----------
    probe_epochs, probe_learning_rate, probe_batch_size:
        Training hyper-parameters of the auxiliary softmax probes.
    classifier_config:
        Weights of the per-case defect scoring rule (see
        :class:`~repro.core.classifier.DefectClassifierConfig`).
    correct_only_patterns:
        Whether class execution patterns are learned from correctly-classified
        training cases only (the default) or from all training cases.
    max_spatial:
        Spatial pooling cap applied to convolutional activations before the
        probes.
    inference_dtype:
        Compute precision of the frozen-backbone extraction path (see
        :class:`~repro.core.SoftmaxInstrumentedModel`).  Defaults to float32;
        pass ``"float64"`` for full-precision extraction.
    rng:
        Seed or generator controlling probe initialization and training order.
    """

    def __init__(
        self,
        probe_epochs: int = 12,
        probe_learning_rate: float = 0.01,
        probe_batch_size: int = 64,
        classifier_config: Optional[DefectClassifierConfig] = None,
        correct_only_patterns: bool = True,
        late_layer_emphasis: float = 0.5,
        max_spatial: int = 4,
        inference_dtype: "str | None" = "float32",
        rng: RngLike = None,
    ):
        self.probe_epochs = int(probe_epochs)
        self.probe_learning_rate = float(probe_learning_rate)
        self.probe_batch_size = int(probe_batch_size)
        self.correct_only_patterns = bool(correct_only_patterns)
        self.late_layer_emphasis = float(late_layer_emphasis)
        self.max_spatial = int(max_spatial)
        self.inference_dtype = inference_dtype
        self._rng = ensure_rng(rng)

        self.case_classifier = DefectCaseClassifier(classifier_config)
        self.instrumented: Optional[SoftmaxInstrumentedModel] = None
        self.patterns: Optional[PatternLibrary] = None
        self.model: Optional[ClassifierModel] = None
        self.train_data: Optional[Dataset] = None

    @property
    def is_fitted(self) -> bool:
        return self.instrumented is not None and self.patterns is not None

    # -- pipeline step 1 + 2: instrument and learn patterns -----------------------

    def fit(self, model: ClassifierModel, train_data: Dataset) -> "DeepMorph":
        """Build the softmax-instrumented model and learn the class execution patterns."""
        if len(train_data) == 0:
            raise DatasetError("cannot fit DeepMorph on an empty training set")
        if train_data.num_classes != model.num_classes:
            raise ConfigurationError(
                f"model expects {model.num_classes} classes but the training set has "
                f"{train_data.num_classes}"
            )
        probe_rng, = spawn(self._rng, 1)
        self.model = model
        self.train_data = train_data
        self.instrumented = SoftmaxInstrumentedModel(
            model,
            probe_epochs=self.probe_epochs,
            probe_batch_size=self.probe_batch_size,
            probe_learning_rate=self.probe_learning_rate,
            max_spatial=self.max_spatial,
            inference_dtype=self.inference_dtype,
            rng=probe_rng,
        ).fit(train_data)
        self.patterns = PatternLibrary(
            self.instrumented,
            correct_only=self.correct_only_patterns,
            late_layer_emphasis=self.late_layer_emphasis,
        ).fit(train_data)
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("DeepMorph is not fitted; call fit(model, train_data) first")

    # -- pipeline step 3: footprints and specifics ---------------------------------

    def extract_footprints(
        self, inputs: np.ndarray, labels: Optional[Sequence[int]] = None
    ) -> List[Footprint]:
        """Extract data-flow footprints for arbitrary inputs."""
        self._require_fitted()
        extractor = FootprintExtractor(self.instrumented)
        return extractor.extract(policy_float(inputs), labels)

    def compute_specifics(self, footprints: Sequence[Footprint]) -> List[FootprintSpecifics]:
        """Compute footprint specifics for labeled footprints (batched core)."""
        self._require_fitted()
        return compute_specifics_batch(footprints, self.patterns)

    # -- pipeline step 4: defect reasoning ------------------------------------------

    def diagnose(
        self,
        faulty_inputs: np.ndarray,
        true_labels: Sequence[int],
        metadata: Optional[Dict] = None,
    ) -> DefectReport:
        """Diagnose a set of faulty cases (inputs plus their true labels).

        The whole batch flows through the batched diagnosis core: one stacked
        footprint extraction, one broadcasted specifics computation, and one
        matrix-product scoring pass in the case classifier.
        """
        self._require_fitted()
        faulty_inputs = policy_float(faulty_inputs)
        true_labels = np.asarray(true_labels)
        if faulty_inputs.shape[0] == 0:
            raise ConfigurationError(
                "no faulty cases supplied; the model may already perform well"
            )
        if faulty_inputs.shape[0] != true_labels.shape[0]:
            raise ConfigurationError(
                f"faulty inputs and labels disagree on size: "
                f"{faulty_inputs.shape[0]} vs {true_labels.shape[0]}"
            )
        footprints = self.extract_footprints(faulty_inputs, true_labels)
        # Only genuinely misclassified cases are evidence of a defect.
        faulty_footprints = [fp for fp in footprints if fp.is_misclassified]
        if not faulty_footprints:
            raise NoFaultyCasesError(
                "none of the supplied cases is misclassified by the model; nothing to diagnose"
            )
        specifics = self.compute_specifics(faulty_footprints)
        context = self.case_classifier.build_context(
            specifics,
            num_classes=self.model.num_classes,
            pattern_overlap=self.patterns.pattern_overlap(),
            feature_quality=self.patterns.feature_quality(),
            training_inconsistency=self.patterns.training_inconsistency(),
        )
        return self.case_classifier.aggregate(specifics, context=context, metadata=metadata)

    def diagnose_dataset(
        self, dataset: Dataset, metadata: Optional[Dict] = None
    ) -> DefectReport:
        """Find the faulty cases of ``dataset`` and diagnose them.

        This is the paper's end-to-end scenario: the dataset plays the role of
        the production data in which the model under-performs.
        """
        self._require_fitted()
        inputs, labels, _ = find_faulty_cases(self.model, dataset)
        meta = {"num_production_cases": len(dataset)}
        meta.update(metadata or {})
        return self.diagnose(inputs, labels, metadata=meta)

    # -- diagnostics ----------------------------------------------------------------

    def probe_accuracies(self) -> Dict[str, float]:
        """Training accuracy of each auxiliary probe (layer-wise feature quality)."""
        self._require_fitted()
        return self.instrumented.probe_accuracies()

    def __repr__(self) -> str:
        status = "fitted" if self.is_fitted else "unfitted"
        model = self.model.kind if self.model is not None else None
        return f"DeepMorph(model={model!r}, {status})"
