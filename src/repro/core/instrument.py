"""Softmax instrumentation of a trained model.

DeepMorph's first step ("build the softmax-instrumented model") attaches an
auxiliary softmax layer to the output of every hidden layer of the target
model and trains those auxiliary layers on the training set while the backbone
stays frozen.  The probes translate each hidden layer's activation into a
class-probability distribution — the per-layer belief that, stacked across
layers, forms a data-flow footprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..data.loader import batch_iterator
from ..exceptions import ConfigurationError, NotFittedError, ShapeError
from ..models.base import ClassifierModel
from ..nn import functional as F
from ..nn.dtype import DTypeLike, autocast, resolve_dtype
from ..nn.layers import Dense
from ..nn.losses import SoftmaxCrossEntropy
from ..optim.optimizers import Adam
from ..rng import RngLike, ensure_rng, spawn

__all__ = [
    "SoftmaxProbe",
    "SoftmaxInstrumentedModel",
    "pool_activation",
    "pool_activation_reference",
]


def _pool_geometry(h: int, w: int, max_spatial: int):
    """Ceil-sized block shape and output grid for block-average pooling."""
    block_h = -(-h // max_spatial)
    block_w = -(-w // max_spatial)
    out_h = -(-h // block_h)
    out_w = -(-w // block_w)
    return block_h, block_w, out_h, out_w


def pool_activation(activation: np.ndarray, max_spatial: int = 4) -> np.ndarray:
    """Reduce an activation batch to a 2-D ``(batch, features)`` matrix.

    Convolutional activations are average-pooled down to at most
    ``max_spatial × max_spatial`` before flattening, which keeps probe inputs
    small without discarding the spatial layout entirely.  Dense activations
    are returned as-is.

    Loop-free: when the map divides evenly into blocks, the pooling is a
    single reshape + mean; otherwise the map is zero-padded up to a multiple
    of the block size and each block's sum is divided by the number of *real*
    elements it covers — numerically identical to averaging the ragged
    trailing blocks directly.  float32/float64 input keeps its dtype, so the
    extraction fast path stays in the active compute precision.
    """
    activation = np.asarray(activation)
    if activation.dtype not in (np.float32, np.float64):
        activation = activation.astype(np.float64)
    if activation.ndim == 2:
        return activation
    if activation.ndim != 4:
        raise ShapeError(
            f"activations must be 2-D or 4-D, got shape {activation.shape}"
        )
    n, c, h, w = activation.shape
    if h <= max_spatial and w <= max_spatial:
        return activation.reshape(n, -1)
    block_h, block_w, out_h, out_w = _pool_geometry(h, w, max_spatial)
    pad_h = out_h * block_h - h
    pad_w = out_w * block_w - w
    if pad_h == 0 and pad_w == 0:
        pooled = activation.reshape(n, c, out_h, block_h, out_w, block_w).mean(axis=(3, 5))
    else:
        padded = np.pad(activation, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)))
        sums = padded.reshape(n, c, out_h, block_h, out_w, block_w).sum(axis=(3, 5))
        rows = np.minimum((np.arange(out_h) + 1) * block_h, h) - np.arange(out_h) * block_h
        cols = np.minimum((np.arange(out_w) + 1) * block_w, w) - np.arange(out_w) * block_w
        counts = (rows[:, None] * cols[None, :]).astype(activation.dtype)
        pooled = sums / counts
    return pooled.reshape(n, -1)


def pool_activation_reference(activation: np.ndarray, max_spatial: int = 4) -> np.ndarray:
    """The original O(out_h · out_w) block-loop :func:`pool_activation`.

    Kept as the parity/benchmark baseline for the vectorized fast path.
    """
    activation = np.asarray(activation, dtype=np.float64)
    if activation.ndim == 2:
        return activation
    if activation.ndim != 4:
        raise ShapeError(
            f"activations must be 2-D or 4-D, got shape {activation.shape}"
        )
    n, c, h, w = activation.shape
    if h <= max_spatial and w <= max_spatial:
        return activation.reshape(n, -1)
    # Block-average pooling with ceil-sized blocks covers the whole map.
    block_h, block_w, out_h, out_w = _pool_geometry(h, w, max_spatial)
    pooled = np.zeros((n, c, out_h, out_w), dtype=np.float64)
    for i in range(out_h):
        for j in range(out_w):
            ys = slice(i * block_h, min((i + 1) * block_h, h))
            xs = slice(j * block_w, min((j + 1) * block_w, w))
            pooled[:, :, i, j] = activation[:, :, ys, xs].mean(axis=(2, 3))
    return pooled.reshape(n, -1)


class SoftmaxProbe:
    """An auxiliary softmax classifier attached to one hidden layer.

    The probe is a single affine layer followed by softmax, trained with Adam
    on the (pooled, flattened) activations of its layer while the backbone is
    frozen — the "auxiliary softmax layer" of the paper.
    """

    def __init__(
        self,
        layer_name: str,
        num_classes: int,
        epochs: int = 12,
        batch_size: int = 64,
        learning_rate: float = 0.01,
        weight_decay: float = 1e-4,
        max_spatial: int = 4,
        validation_fraction: float = 0.2,
        rng: RngLike = None,
    ):
        if num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= validation_fraction < 1.0:
            raise ConfigurationError(
                f"validation_fraction must lie in [0, 1), got {validation_fraction}"
            )
        self.layer_name = layer_name
        self.num_classes = int(num_classes)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.max_spatial = int(max_spatial)
        self.validation_fraction = float(validation_fraction)
        self._rng = ensure_rng(rng)
        self._dense: Optional[Dense] = None
        self.training_accuracy: Optional[float] = None
        self.validation_accuracy: Optional[float] = None

    @property
    def is_fitted(self) -> bool:
        return self._dense is not None

    @property
    def num_features(self) -> Optional[int]:
        """Dimensionality of the probe's input features (after fitting)."""
        return self._dense.in_features if self._dense is not None else None

    def features(self, activations: np.ndarray) -> np.ndarray:
        """Pool and flatten raw layer activations into probe features."""
        return pool_activation(activations, max_spatial=self.max_spatial)

    def fit(self, activations: np.ndarray, labels: np.ndarray) -> "SoftmaxProbe":
        """Train the probe on the frozen backbone's activations."""
        feats = self.features(activations)
        labels = np.asarray(labels)
        if feats.shape[0] != labels.shape[0]:
            raise ShapeError(
                f"activations and labels disagree on batch size: "
                f"{feats.shape[0]} vs {labels.shape[0]}"
            )
        if feats.shape[0] == 0:
            raise ConfigurationError(f"cannot fit probe {self.layer_name!r} on zero examples")

        # Hold out part of the data so the probe can report how well its
        # layer's features *generalize* (the key structure-defect signal), not
        # just how well a linear readout can memorize them.
        n = feats.shape[0]
        n_val = int(np.floor(n * self.validation_fraction))
        order = np.arange(n)
        self._rng.shuffle(order)
        val_idx, fit_idx = order[:n_val], order[n_val:]
        if fit_idx.size == 0:
            fit_idx, val_idx = order, np.array([], dtype=np.int64)
        fit_feats, fit_labels = feats[fit_idx], labels[fit_idx]

        self._dense = Dense(
            feats.shape[1], self.num_classes, rng=self._rng, name=f"probe_{self.layer_name}"
        )
        loss = SoftmaxCrossEntropy()
        optimizer = Adam(
            self._dense.parameters(),
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        for _ in range(self.epochs):
            for batch_feats, batch_labels in batch_iterator(
                fit_feats, fit_labels, self.batch_size, shuffle=True, rng=self._rng
            ):
                self._dense.zero_grad()
                logits = self._dense.forward(batch_feats)
                loss.forward(logits, batch_labels)
                self._dense.backward(loss.backward())
                optimizer.step()

        # The probe head only ever infers from here on; eval mode stops it
        # retaining each prediction batch (Dense caches input for backward).
        self._dense.eval()
        predictions = self._dense.forward(fit_feats).argmax(axis=1)
        self.training_accuracy = float(np.mean(predictions == fit_labels))
        if val_idx.size:
            val_predictions = self._dense.forward(feats[val_idx]).argmax(axis=1)
            self.validation_accuracy = float(np.mean(val_predictions == labels[val_idx]))
        else:
            self.validation_accuracy = self.training_accuracy
        return self

    def predict_proba(self, activations: np.ndarray) -> np.ndarray:
        """Class-probability distribution the probe assigns to each activation."""
        if self._dense is None:
            raise NotFittedError(
                f"probe for layer {self.layer_name!r} must be fitted before prediction"
            )
        feats = self.features(activations)
        if feats.shape[1] != self._dense.in_features:
            raise ShapeError(
                f"probe for layer {self.layer_name!r} was fitted on {self._dense.in_features} "
                f"features but received {feats.shape[1]}"
            )
        return F.softmax(self._dense.forward(feats), axis=1)

    def __repr__(self) -> str:
        status = "fitted" if self.is_fitted else "unfitted"
        return f"SoftmaxProbe(layer={self.layer_name!r}, classes={self.num_classes}, {status})"


class SoftmaxInstrumentedModel:
    """A frozen target model with a trained softmax probe on every hidden layer.

    This is the paper's "softmax-instrumented model": the object that turns an
    input into its layer-by-layer class-belief trajectory.

    Parameters
    ----------
    model:
        The trained target classifier.  Its parameters are never modified.
    layer_names:
        Which stages to instrument.  Defaults to every stage except the final
        logits stage (``model.hidden_layer_names()``).
    probe_epochs, probe_batch_size, probe_learning_rate:
        Training hyper-parameters shared by all probes.
    inference_dtype:
        Compute precision of the frozen-backbone *extraction* path
        (``collect_activations`` / ``layer_distributions``).  ``"float32"``
        (also the meaning of ``None``) is the default — the backbone is
        frozen, so extraction is pure inference and float32 halves the memory
        traffic through the im2col/matmul hot path.  Probe *training*
        (``fit``) always collects activations in float64, as does every
        gradient-carrying path.  Pass ``"float64"`` to force full precision
        end to end.
    """

    def __init__(
        self,
        model: ClassifierModel,
        layer_names: Optional[Sequence[str]] = None,
        probe_epochs: int = 12,
        probe_batch_size: int = 64,
        probe_learning_rate: float = 0.01,
        max_spatial: int = 4,
        probe_validation_fraction: float = 0.2,
        inference_dtype: DTypeLike = "float32",
        rng: RngLike = None,
    ):
        self.model = model
        available = model.stage_names()
        chosen = list(layer_names) if layer_names is not None else model.hidden_layer_names()
        unknown = [name for name in chosen if name not in available]
        if unknown:
            raise ConfigurationError(
                f"layer(s) {unknown} not found in model stages {available}"
            )
        if not chosen:
            raise ConfigurationError("at least one layer must be instrumented")
        self.layer_names: List[str] = chosen
        self.probe_epochs = int(probe_epochs)
        self.probe_batch_size = int(probe_batch_size)
        self.probe_learning_rate = float(probe_learning_rate)
        self.max_spatial = int(max_spatial)
        self.probe_validation_fraction = float(probe_validation_fraction)
        # None means "the documented default" (float32), not resolve_dtype's
        # float64 fallback — callers use None for "don't care".
        self.inference_dtype = resolve_dtype(
            inference_dtype if inference_dtype is not None else "float32"
        )
        self._rng = ensure_rng(rng)

        probe_rngs = spawn(self._rng, len(self.layer_names))
        self.probes: Dict[str, SoftmaxProbe] = {
            name: SoftmaxProbe(
                layer_name=name,
                num_classes=model.num_classes,
                epochs=probe_epochs,
                batch_size=probe_batch_size,
                learning_rate=probe_learning_rate,
                max_spatial=max_spatial,
                validation_fraction=probe_validation_fraction,
                rng=probe_rng,
            )
            for name, probe_rng in zip(self.layer_names, probe_rngs)
        }
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def num_layers(self) -> int:
        """Number of instrumented hidden layers."""
        return len(self.layer_names)

    @property
    def num_classes(self) -> int:
        return self.model.num_classes

    # -- activation collection ---------------------------------------------------

    def collect_activations(
        self, inputs: np.ndarray, batch_size: int = 128, dtype: DTypeLike = None
    ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Run the frozen model and gather every instrumented layer's (pooled) output.

        Returns ``(activations, logits)`` where ``activations[name]`` has shape
        ``(n, features_of_that_layer)``.  ``dtype`` selects the compute
        precision of the forward passes; ``None`` uses the model's
        ``inference_dtype`` (probe training passes float64 explicitly).
        """
        compute = self.inference_dtype if dtype is None else resolve_dtype(dtype)
        inputs = np.asarray(inputs)
        was_training = self.model.training
        self.model.eval()
        try:
            pooled: Dict[str, List[np.ndarray]] = {name: [] for name in self.layer_names}
            logits_parts: List[np.ndarray] = []
            with autocast(compute):
                for start in range(0, inputs.shape[0], batch_size):
                    batch = inputs[start:start + batch_size]
                    logits, acts = self.model.forward_collect(batch)
                    logits_parts.append(logits)
                    for name in self.layer_names:
                        pooled[name].append(
                            pool_activation(acts[name], max_spatial=self.max_spatial)
                        )
            activations = {name: np.concatenate(parts, axis=0) for name, parts in pooled.items()}
            all_logits = (
                np.concatenate(logits_parts, axis=0)
                if logits_parts
                else np.zeros((0, self.model.num_classes), dtype=compute)
            )
            return activations, all_logits
        finally:
            self.model.train(was_training)

    # -- probe training -------------------------------------------------------------

    def fit(self, train_data: Dataset, batch_size: int = 128) -> "SoftmaxInstrumentedModel":
        """Train every probe on the training set (backbone frozen)."""
        if len(train_data) == 0:
            raise ConfigurationError("cannot fit the instrumented model on an empty dataset")
        inputs, labels = train_data.arrays()
        # Probe training is a training path: collect features in full precision.
        activations, _ = self.collect_activations(
            inputs, batch_size=batch_size, dtype=np.float64
        )
        for name in self.layer_names:
            self.probes[name].fit(activations[name], labels)
        self._fitted = True
        return self

    def probe_accuracies(self) -> Dict[str, float]:
        """Training accuracy of each probe (a layer-wise feature-quality profile)."""
        if not self._fitted:
            raise NotFittedError("instrumented model is not fitted; call fit() first")
        return {
            name: float(self.probes[name].training_accuracy or 0.0) for name in self.layer_names
        }

    def probe_validation_accuracies(self) -> Dict[str, float]:
        """Held-out accuracy of each probe: how well the layer's features generalize."""
        if not self._fitted:
            raise NotFittedError("instrumented model is not fitted; call fit() first")
        return {
            name: float(self.probes[name].validation_accuracy or 0.0)
            for name in self.layer_names
        }

    def feature_quality(self) -> float:
        """How well the backbone's hidden layers separate the classes, in ``[0, 1]``.

        Computed as the best held-out probe accuracy over the instrumented
        layers, rescaled so chance level maps to 0.  A structurally sound
        backbone trained on its task scores close to 1; a backbone whose
        convolutional capacity was gutted scores visibly lower — the
        model-level fingerprint of a structure defect.
        """
        accuracies = list(self.probe_validation_accuracies().values())
        best = max(accuracies) if accuracies else 0.0
        chance = 1.0 / self.num_classes
        return float(np.clip((best - chance) / (1.0 - chance), 0.0, 1.0))

    # -- footprint extraction ----------------------------------------------------------

    def layer_distributions(
        self, inputs: np.ndarray, batch_size: int = 128
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe distributions for a batch of inputs.

        Returns
        -------
        ``(trajectories, final_probs)`` where ``trajectories`` has shape
        ``(n, num_layers, num_classes)`` (one row per instrumented layer, in
        execution order) and ``final_probs`` has shape ``(n, num_classes)``
        (the model's own softmax output).
        """
        if not self._fitted:
            raise NotFittedError("instrumented model is not fitted; call fit() first")
        inputs = np.asarray(inputs)
        activations, logits = self.collect_activations(inputs, batch_size=batch_size)
        n = inputs.shape[0]
        # Probe heads run in the same precision as the backbone extraction;
        # the returned trajectories are float64 at the API boundary either way.
        trajectories = np.zeros((n, self.num_layers, self.num_classes), dtype=np.float64)
        with autocast(self.inference_dtype):
            for layer_idx, name in enumerate(self.layer_names):
                trajectories[:, layer_idx, :] = self.probes[name].predict_proba(
                    activations[name]
                )
        final_probs = F.softmax(np.asarray(logits, dtype=np.float64), axis=1)
        return trajectories, final_probs

    def layer_distributions_grouped(
        self, input_groups: Sequence[np.ndarray], batch_size: int = 128
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Probe distributions for several independent input groups in ONE pass.

        The groups (each ``(n_i, ...)`` with identical per-example shape) are
        concatenated, run through a single :meth:`layer_distributions` call —
        amortizing eval-mode toggling and per-layer probe dispatch across all
        of them — and split back into one ``(trajectories, final_probs)`` pair
        per group.  This is the batched extraction primitive the serving layer
        (:mod:`repro.serve`) coalesces concurrent diagnosis requests onto.
        """
        if not self._fitted:
            raise NotFittedError("instrumented model is not fitted; call fit() first")
        groups = [np.asarray(g) for g in input_groups]
        if not groups:
            return []
        sizes = [g.shape[0] for g in groups]
        if sum(sizes) == 0:
            empty = np.zeros((0, self.num_layers, self.num_classes), dtype=np.float64)
            return [(empty, empty[:, 0, :]) for _ in groups]
        trajectories, final_probs = self.layer_distributions(
            np.concatenate(groups, axis=0), batch_size=batch_size
        )
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        offset = 0
        for size in sizes:
            results.append((
                trajectories[offset:offset + size],
                final_probs[offset:offset + size],
            ))
            offset += size
        return results

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return (
            f"SoftmaxInstrumentedModel(model={self.model.kind!r}, "
            f"layers={self.num_layers}, {status})"
        )
