"""Data-flow footprints.

A footprint is the record of how one input flowed through the instrumented
model: the probe distribution at every hidden layer (the *trajectory*), the
model's own final distribution, the resulting prediction, and — when known —
the true label.  Footprints are the objects DeepMorph compares against class
execution patterns to reason about defects.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.trajectory import (
    check_trajectory,
    check_trajectory_stack,
    commitment_depth,
    confidence_trajectory,
    divergence_layer,
    entropy_profile,
)
from ..exceptions import ShapeError
from ..obs import span as obs_span
from .instrument import SoftmaxInstrumentedModel

__all__ = ["Footprint", "FootprintExtractor"]


# Bulk constructors (FootprintExtractor.from_arrays) validate a whole batch
# of trajectories once and then skip the per-case __post_init__ checks; the
# flag is thread-local so concurrent serving threads cannot leak it into each
# other's directly-constructed Footprints.
_bulk_state = threading.local()


@contextmanager
def _prevalidated():
    _bulk_state.active = True
    try:
        yield
    finally:
        _bulk_state.active = False


@dataclass(frozen=True)
class Footprint:
    """Layer-by-layer execution record of one input.

    Attributes
    ----------
    trajectory:
        ``(num_layers, num_classes)`` probe distributions, in execution order.
    final_probs:
        The model's final softmax distribution, shape ``(num_classes,)``.
    predicted:
        ``argmax`` of ``final_probs``.
    true_label:
        Ground-truth label if known, else ``None``.
    layer_names:
        Names of the instrumented layers (row labels of ``trajectory``).
    """

    trajectory: np.ndarray
    final_probs: np.ndarray
    predicted: int
    true_label: Optional[int] = None
    layer_names: Optional[tuple] = None

    def __post_init__(self):
        if getattr(_bulk_state, "active", False):
            return
        check_trajectory(self.trajectory)
        final = np.asarray(self.final_probs, dtype=np.float64)
        if final.ndim != 1:
            raise ShapeError(f"final_probs must be 1-D, got shape {final.shape}")
        if final.shape[0] != self.trajectory.shape[1]:
            raise ShapeError(
                f"final_probs has {final.shape[0]} classes but trajectory has "
                f"{self.trajectory.shape[1]}"
            )
        if not 0 <= self.predicted < final.shape[0]:
            raise ShapeError(
                f"predicted class {self.predicted} out of range for {final.shape[0]} classes"
            )

    # -- basic geometry ------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return int(self.trajectory.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.trajectory.shape[1])

    @property
    def is_misclassified(self) -> Optional[bool]:
        """Whether prediction and true label disagree (``None`` if no label)."""
        if self.true_label is None:
            return None
        return int(self.true_label) != int(self.predicted)

    @property
    def final_confidence(self) -> float:
        """The model's confidence in its own prediction."""
        return float(self.final_probs[self.predicted])

    # -- derived views -----------------------------------------------------------

    def full_trajectory(self) -> np.ndarray:
        """The trajectory with the model's final distribution appended as a last row."""
        return np.vstack([self.trajectory, self.final_probs[None, :]])

    def confidence_in(self, target_class: int) -> np.ndarray:
        """Per-layer probability assigned to ``target_class``."""
        return confidence_trajectory(self.trajectory, target_class)

    def entropy_profile(self) -> np.ndarray:
        """Per-layer normalized entropy of the probe beliefs."""
        return entropy_profile(self.trajectory)

    def divergence_layer(self) -> Optional[int]:
        """First layer whose top-1 class differs from the true label (needs a label)."""
        if self.true_label is None:
            return None
        return divergence_layer(self.trajectory, int(self.true_label))

    def commitment_depth(self) -> float:
        """Fraction of trailing layers already committed to the final prediction."""
        return commitment_depth(self.trajectory, int(self.predicted))

    def __repr__(self) -> str:
        truth = f", true={self.true_label}" if self.true_label is not None else ""
        return (
            f"Footprint(layers={self.num_layers}, classes={self.num_classes}, "
            f"predicted={self.predicted}{truth}, confidence={self.final_confidence:.3f})"
        )


class FootprintExtractor:
    """Extracts :class:`Footprint` objects from a fitted instrumented model."""

    def __init__(self, instrumented: SoftmaxInstrumentedModel, batch_size: int = 128):
        self.instrumented = instrumented
        self.batch_size = int(batch_size)

    def extract(
        self, inputs: np.ndarray, labels: Optional[Sequence[int]] = None
    ) -> List[Footprint]:
        """Extract one footprint per input.

        Parameters
        ----------
        inputs:
            Batch of model inputs, shape ``(n, ...)``.
        labels:
            Optional ground-truth labels, length ``n``.
        """
        inputs = np.asarray(inputs)
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != inputs.shape[0]:
                raise ShapeError(
                    f"labels and inputs disagree on batch size: "
                    f"{labels.shape[0]} vs {inputs.shape[0]}"
                )

        trajectories, final_probs = self.instrumented.layer_distributions(
            inputs, batch_size=self.batch_size
        )
        return self.from_arrays(trajectories, final_probs, labels)

    def from_arrays(
        self,
        trajectories: np.ndarray,
        final_probs: np.ndarray,
        labels: Optional[Sequence[int]] = None,
    ) -> List[Footprint]:
        """Wrap precomputed ``(trajectories, final_probs)`` arrays into footprints.

        The inverse of :meth:`extract_arrays`: serving layers that cache or
        batch raw extraction arrays use this to rebuild :class:`Footprint`
        objects without touching the model again.  The whole batch is
        validated once up front (shapes, class-count agreement, predictions),
        so per-case construction skips the redundant ``__post_init__`` checks
        — on serving batches this is the difference between O(batch) and
        O(batch · layers) validation work.
        """
        trajectories = check_trajectory_stack(trajectories)
        final_probs = np.asarray(final_probs, dtype=np.float64)
        if final_probs.ndim != 2:
            raise ShapeError(
                f"final_probs must be 2-D (batch, classes), got shape {final_probs.shape}"
            )
        if trajectories.shape[0] != final_probs.shape[0]:
            raise ShapeError(
                f"trajectories and final_probs disagree on batch size: "
                f"{trajectories.shape[0]} vs {final_probs.shape[0]}"
            )
        if final_probs.shape[1] != trajectories.shape[2]:
            raise ShapeError(
                f"final_probs has {final_probs.shape[1]} classes but trajectories "
                f"have {trajectories.shape[2]}"
            )
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != trajectories.shape[0]:
                raise ShapeError(
                    f"labels and trajectories disagree on batch size: "
                    f"{labels.shape[0]} vs {trajectories.shape[0]}"
                )
        layer_names = tuple(self.instrumented.layer_names)
        predicted = final_probs.argmax(axis=1) if final_probs.shape[0] else np.zeros(0, int)
        footprints: List[Footprint] = []
        with _prevalidated():
            for i in range(trajectories.shape[0]):
                footprints.append(Footprint(
                    trajectory=trajectories[i],
                    final_probs=final_probs[i],
                    predicted=int(predicted[i]),
                    true_label=int(labels[i]) if labels is not None else None,
                    layer_names=layer_names,
                ))
        return footprints

    def extract_arrays(
        self, inputs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized variant returning ``(trajectories, final_probs)`` arrays."""
        return self.instrumented.layer_distributions(
            np.asarray(inputs), batch_size=self.batch_size
        )

    def extract_coalesced(
        self, input_groups: Sequence[np.ndarray]
    ) -> List[tuple[np.ndarray, np.ndarray]]:
        """Extract several independent input groups through ONE instrumented pass.

        ``input_groups`` is a sequence of arrays, each ``(n_i, ...)`` with the
        same per-example shape.  The groups are concatenated, pushed through a
        single :meth:`SoftmaxInstrumentedModel.layer_distributions` call (so
        per-call overhead — eval-mode toggling, per-layer probe dispatch — is
        amortized across all groups), and the resulting arrays are split back
        into one ``(trajectories, final_probs)`` pair per group.  This is the
        vectorized substrate of the request batching engine in
        :mod:`repro.serve`.
        """
        total = sum(int(group.shape[0]) for group in input_groups)
        with obs_span(
            "extract.coalesced", {"num_groups": len(input_groups), "num_cases": total}
        ):
            return self.instrumented.layer_distributions_grouped(
                input_groups, batch_size=self.batch_size
            )
