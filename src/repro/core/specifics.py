"""Footprint specifics.

"Footprint specifics" is the paper's name for the per-case quantities
DeepMorph derives from a faulty case's data-flow footprint by comparing it
against the class execution patterns.  They are the features the defect
classifier scores: how well the case follows the predicted class's pattern,
how atypical it is for its true class, how sharp or diffuse the layer-wise
beliefs are, and how early the execution commits or diverges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..analysis.trajectory import layer_stability
from ..exceptions import ConfigurationError
from .footprint import Footprint
from .patterns import PatternLibrary

__all__ = ["FootprintSpecifics", "compute_specifics"]


@dataclass(frozen=True)
class FootprintSpecifics:
    """Per-case features derived from a footprint and the pattern library.

    All features lie in ``[0, 1]``.

    Attributes
    ----------
    predicted, true_label:
        The case's predicted and ground-truth classes.
    final_confidence:
        The model's confidence in its (wrong) prediction.
    commitment:
        Fraction of trailing layers already committed to the prediction.
    match_predicted:
        Similarity of the footprint to the *predicted* class's execution
        pattern — high values mean the network executed the wrong class's
        pattern "cleanly".
    match_true:
        Similarity of the footprint to the *true* class's execution pattern.
    best_match:
        Similarity to the best-matching pattern of any class.
    atypicality_true:
        How far outside the true class's training pattern the footprint lies
        (0.5 ≈ typical member, → 1 far outside).
    mean_entropy:
        Mean normalized entropy of the per-layer probe beliefs — high values
        mean the hidden layers never build a confident belief (weak features).
    early_entropy:
        Mean normalized entropy over the first half of the layers.
    divergence_point:
        Normalized position of the first layer whose top-1 differs from the
        true label (0 = already wrong at the first probe, 1 = never wrong).
    stability:
        How little the belief changes between consecutive layers.
    late_entropy:
        Mean normalized entropy over the second half of the layers (sound
        backbones have sharp late-layer beliefs even when early layers are
        generic).
    feature_quality:
        Model-level feature quality: best held-out probe accuracy over the
        hidden layers, rescaled so chance level is 0.  Identical for every
        case of the same model; low values are the fingerprint of a structure
        defect.
    nn_typicality_predicted:
        Nearest-member typicality with respect to the *predicted* class: how
        close the case's footprint comes to specific training executions of
        the class the model chose.  Near 1 means the network treats the case
        exactly like certain training examples of the wrong class — the
        fingerprint of mislabeled training data.
    nn_typicality_true:
        Nearest-member typicality with respect to the *true* class.  Low
        values mean no training example of the true class executes like this
        case — the fingerprint of missing training data.
    """

    predicted: int
    true_label: int
    final_confidence: float
    commitment: float
    match_predicted: float
    match_true: float
    best_match: float
    best_match_class: int
    atypicality_true: float
    mean_entropy: float
    early_entropy: float
    divergence_point: float
    stability: float
    late_entropy: float = 0.0
    feature_quality: float = 1.0
    nn_typicality_predicted: float = 0.0
    nn_typicality_true: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        return {
            "predicted": self.predicted,
            "true_label": self.true_label,
            "final_confidence": self.final_confidence,
            "commitment": self.commitment,
            "match_predicted": self.match_predicted,
            "match_true": self.match_true,
            "best_match": self.best_match,
            "best_match_class": self.best_match_class,
            "atypicality_true": self.atypicality_true,
            "mean_entropy": self.mean_entropy,
            "early_entropy": self.early_entropy,
            "late_entropy": self.late_entropy,
            "divergence_point": self.divergence_point,
            "stability": self.stability,
            "feature_quality": self.feature_quality,
            "nn_typicality_predicted": self.nn_typicality_predicted,
            "nn_typicality_true": self.nn_typicality_true,
        }


def compute_specifics(footprint: Footprint, library: PatternLibrary) -> FootprintSpecifics:
    """Derive the footprint specifics of one (faulty) case.

    The footprint must carry a true label — specifics describe how a *known*
    misbehaviour happened, so the ground truth of the faulty case is required.
    """
    if footprint.true_label is None:
        raise ConfigurationError(
            "footprint specifics require the true label of the faulty case"
        )
    true_label = int(footprint.true_label)
    predicted = int(footprint.predicted)

    match_pred = library.similarity(footprint, predicted)
    match_true = library.similarity(footprint, true_label)
    best_class, best_sim = library.best_match(footprint)

    if library.has_pattern(true_label):
        atypicality = library.pattern(true_label).atypicality_of(footprint)
    else:
        # The class never appeared in training at all: maximally atypical.
        atypicality = 1.0

    entropies = footprint.entropy_profile()
    half = max(1, footprint.num_layers // 2)
    divergence = footprint.divergence_layer()
    divergence_point = (
        float(divergence) / footprint.num_layers if divergence is not None else 1.0
    )

    return FootprintSpecifics(
        predicted=predicted,
        true_label=true_label,
        final_confidence=float(footprint.final_confidence),
        commitment=float(footprint.commitment_depth()),
        match_predicted=float(match_pred),
        match_true=float(match_true),
        best_match=float(best_sim),
        best_match_class=int(best_class),
        atypicality_true=float(atypicality),
        mean_entropy=float(np.mean(entropies)),
        early_entropy=float(np.mean(entropies[:half])),
        late_entropy=float(np.mean(entropies[half:])) if footprint.num_layers > half else float(np.mean(entropies)),
        divergence_point=float(divergence_point),
        stability=float(layer_stability(footprint.trajectory)),
        feature_quality=float(library.feature_quality()),
        nn_typicality_predicted=float(library.nn_typicality(footprint, predicted)),
        nn_typicality_true=float(library.nn_typicality(footprint, true_label)),
    )
