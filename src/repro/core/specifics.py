"""Footprint specifics.

"Footprint specifics" is the paper's name for the per-case quantities
DeepMorph derives from a faulty case's data-flow footprint by comparing it
against the class execution patterns.  They are the features the defect
classifier scores: how well the case follows the predicted class's pattern,
how atypical it is for its true class, how sharp or diffuse the layer-wise
beliefs are, and how early the execution commits or diverges.

Two implementations coexist deliberately:

* :func:`compute_specifics` — the per-case path, one footprint at a time.
  Retained as the parity reference the batched kernels are pinned against.
* :func:`compute_specifics_batch` / :func:`compute_specifics_stack` — the
  batched core: all N case trajectories stacked into one ``(N, L, C)`` array,
  every pattern comparison done by broadcasted JS kernels, every per-layer
  statistic computed array-wide.  This is the hot path of ``DeepMorph`` and
  the serving layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.trajectory import (
    batch_commitment_depth,
    batch_divergence_layer,
    batch_entropy_profile,
    batch_layer_stability,
    check_trajectory_stack,
    layer_stability,
)
from ..exceptions import ConfigurationError, ShapeError
from .footprint import Footprint
from .patterns import PatternLibrary

__all__ = [
    "FootprintSpecifics",
    "compute_specifics",
    "compute_specifics_batch",
    "compute_specifics_stack",
]


@dataclass(frozen=True)
class FootprintSpecifics:
    """Per-case features derived from a footprint and the pattern library.

    All features lie in ``[0, 1]``.

    Attributes
    ----------
    predicted, true_label:
        The case's predicted and ground-truth classes.
    final_confidence:
        The model's confidence in its (wrong) prediction.
    commitment:
        Fraction of trailing layers already committed to the prediction.
    match_predicted:
        Similarity of the footprint to the *predicted* class's execution
        pattern — high values mean the network executed the wrong class's
        pattern "cleanly".
    match_true:
        Similarity of the footprint to the *true* class's execution pattern.
    best_match:
        Similarity to the best-matching pattern of any class.
    atypicality_true:
        How far outside the true class's training pattern the footprint lies
        (0.5 ≈ typical member, → 1 far outside).
    mean_entropy:
        Mean normalized entropy of the per-layer probe beliefs — high values
        mean the hidden layers never build a confident belief (weak features).
    early_entropy:
        Mean normalized entropy over the first half of the layers.
    divergence_point:
        Normalized position of the first layer whose top-1 differs from the
        true label (0 = already wrong at the first probe, 1 = never wrong).
    stability:
        How little the belief changes between consecutive layers.
    late_entropy:
        Mean normalized entropy over the second half of the layers (sound
        backbones have sharp late-layer beliefs even when early layers are
        generic).
    feature_quality:
        Model-level feature quality: best held-out probe accuracy over the
        hidden layers, rescaled so chance level is 0.  Identical for every
        case of the same model; low values are the fingerprint of a structure
        defect.
    nn_typicality_predicted:
        Nearest-member typicality with respect to the *predicted* class: how
        close the case's footprint comes to specific training executions of
        the class the model chose.  Near 1 means the network treats the case
        exactly like certain training examples of the wrong class — the
        fingerprint of mislabeled training data.
    nn_typicality_true:
        Nearest-member typicality with respect to the *true* class.  Low
        values mean no training example of the true class executes like this
        case — the fingerprint of missing training data.
    """

    predicted: int
    true_label: int
    final_confidence: float
    commitment: float
    match_predicted: float
    match_true: float
    best_match: float
    best_match_class: int
    atypicality_true: float
    mean_entropy: float
    early_entropy: float
    divergence_point: float
    stability: float
    late_entropy: float = 0.0
    feature_quality: float = 1.0
    nn_typicality_predicted: float = 0.0
    nn_typicality_true: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly representation."""
        return {
            "predicted": self.predicted,
            "true_label": self.true_label,
            "final_confidence": self.final_confidence,
            "commitment": self.commitment,
            "match_predicted": self.match_predicted,
            "match_true": self.match_true,
            "best_match": self.best_match,
            "best_match_class": self.best_match_class,
            "atypicality_true": self.atypicality_true,
            "mean_entropy": self.mean_entropy,
            "early_entropy": self.early_entropy,
            "late_entropy": self.late_entropy,
            "divergence_point": self.divergence_point,
            "stability": self.stability,
            "feature_quality": self.feature_quality,
            "nn_typicality_predicted": self.nn_typicality_predicted,
            "nn_typicality_true": self.nn_typicality_true,
        }


def compute_specifics(footprint: Footprint, library: PatternLibrary) -> FootprintSpecifics:
    """Derive the footprint specifics of one (faulty) case.

    The footprint must carry a true label — specifics describe how a *known*
    misbehaviour happened, so the ground truth of the faulty case is required.
    """
    if footprint.true_label is None:
        raise ConfigurationError(
            "footprint specifics require the true label of the faulty case"
        )
    true_label = int(footprint.true_label)
    predicted = int(footprint.predicted)

    match_pred = library.similarity(footprint, predicted)
    match_true = library.similarity(footprint, true_label)
    best_class, best_sim = library.best_match(footprint)

    if library.has_pattern(true_label):
        atypicality = library.pattern(true_label).atypicality_of(footprint)
    else:
        # The class never appeared in training at all: maximally atypical.
        atypicality = 1.0

    entropies = footprint.entropy_profile()
    half = max(1, footprint.num_layers // 2)
    divergence = footprint.divergence_layer()
    divergence_point = (
        float(divergence) / footprint.num_layers if divergence is not None else 1.0
    )

    return FootprintSpecifics(
        predicted=predicted,
        true_label=true_label,
        final_confidence=float(footprint.final_confidence),
        commitment=float(footprint.commitment_depth()),
        match_predicted=float(match_pred),
        match_true=float(match_true),
        best_match=float(best_sim),
        best_match_class=int(best_class),
        atypicality_true=float(atypicality),
        mean_entropy=float(np.mean(entropies)),
        early_entropy=float(np.mean(entropies[:half])),
        late_entropy=float(np.mean(entropies[half:])) if footprint.num_layers > half else float(np.mean(entropies)),
        divergence_point=float(divergence_point),
        stability=float(layer_stability(footprint.trajectory)),
        feature_quality=float(library.feature_quality()),
        nn_typicality_predicted=float(library.nn_typicality(footprint, predicted)),
        nn_typicality_true=float(library.nn_typicality(footprint, true_label)),
    )


def _gather_columns(
    matrix: np.ndarray, columns: np.ndarray, default: float
) -> np.ndarray:
    """Per-row gather of ``matrix[i, columns[i]]`` with ``default`` for ``-1`` columns."""
    safe = np.clip(columns, 0, matrix.shape[1] - 1)
    values = matrix[np.arange(matrix.shape[0]), safe]
    return np.where(columns >= 0, values, default)


def compute_specifics_stack(
    trajectories: np.ndarray,
    final_confidences: np.ndarray,
    predicted: np.ndarray,
    true_labels: np.ndarray,
    library: PatternLibrary,
) -> List[FootprintSpecifics]:
    """Derive the footprint specifics of ``N`` faulty cases in one batched pass.

    The array-native core of :func:`compute_specifics_batch`: every pattern
    comparison runs through the library's broadcasted JS kernels and every
    per-layer statistic is computed array-wide, so the per-case Python work is
    reduced to assembling the result dataclasses.  Matches the per-case
    :func:`compute_specifics` to floating-point reassociation error (pinned at
    ``1e-12`` by the parity suite).

    Parameters
    ----------
    trajectories:
        ``(N, L, C)`` stacked case trajectories.
    final_confidences:
        ``(N,)`` model confidence in each case's own prediction.
    predicted, true_labels:
        ``(N,)`` predicted and ground-truth classes.
    library:
        The fitted pattern library to judge the cases against.
    """
    stack = check_trajectory_stack(trajectories)
    n, num_layers, _ = stack.shape
    predicted = np.asarray(predicted, dtype=np.int64)
    true_labels = np.asarray(true_labels, dtype=np.int64)
    final_confidences = np.asarray(final_confidences, dtype=np.float64)
    for name, arr in (
        ("final_confidences", final_confidences),
        ("predicted", predicted),
        ("true_labels", true_labels),
    ):
        if arr.shape != (n,):
            raise ShapeError(
                f"{name} must be 1-D with one entry per case, got shape {arr.shape} "
                f"for {n} cases"
            )
    if n == 0:
        return []

    # Array-wide per-case statistics (validate the label/prediction ranges).
    divergence = batch_divergence_layer(stack, true_labels)
    commitment = batch_commitment_depth(stack, predicted)
    entropies = batch_entropy_profile(stack)
    stability = batch_layer_stability(stack)

    # One broadcasted comparison of all cases against all class patterns.
    matches = library.batch_pattern_matches(stack)
    lookup = matches.column_lookup()
    predicted_cols = lookup[predicted]
    true_cols = lookup[true_labels]
    match_predicted = _gather_columns(matches.similarities, predicted_cols, 0.0)
    match_true = _gather_columns(matches.similarities, true_cols, 0.0)
    best_cols = matches.similarities.argmax(axis=1)
    best_sims = matches.similarities[np.arange(n), best_cols]
    best_classes = matches.class_ids[best_cols]

    # Atypicality w.r.t. the true class's own spread; classes that never
    # appeared in training are maximally atypical (per-case semantics).
    true_divergences = _gather_columns(matches.divergences, true_cols, 0.0)
    true_dispersions = matches.dispersions[np.clip(true_cols, 0, None)]
    atypicality = np.where(
        true_cols >= 0,
        true_divergences / (true_divergences + true_dispersions + 1e-6),
        1.0,
    )

    mean_entropy = entropies.mean(axis=1)
    half = max(1, num_layers // 2)
    early_entropy = entropies[:, :half].mean(axis=1)
    late_entropy = entropies[:, half:].mean(axis=1) if num_layers > half else mean_entropy
    divergence_point = divergence / num_layers

    feature_quality = float(library.feature_quality())
    nn_predicted = library.batch_nn_typicality(stack, predicted)
    nn_true = library.batch_nn_typicality(stack, true_labels)

    return [
        FootprintSpecifics(
            predicted=int(predicted[i]),
            true_label=int(true_labels[i]),
            final_confidence=float(final_confidences[i]),
            commitment=float(commitment[i]),
            match_predicted=float(match_predicted[i]),
            match_true=float(match_true[i]),
            best_match=float(best_sims[i]),
            best_match_class=int(best_classes[i]),
            atypicality_true=float(atypicality[i]),
            mean_entropy=float(mean_entropy[i]),
            early_entropy=float(early_entropy[i]),
            late_entropy=float(late_entropy[i]),
            divergence_point=float(divergence_point[i]),
            stability=float(stability[i]),
            feature_quality=feature_quality,
            nn_typicality_predicted=float(nn_predicted[i]),
            nn_typicality_true=float(nn_true[i]),
        )
        for i in range(n)
    ]


def compute_specifics_batch(
    footprints: Sequence[Footprint], library: PatternLibrary
) -> List[FootprintSpecifics]:
    """Batched :func:`compute_specifics` over a whole list of labeled footprints.

    Stacks the trajectories into one ``(N, L, C)`` array and hands them to
    :func:`compute_specifics_stack`; this is what ``DeepMorph.diagnose`` and
    the serving layer call on their faulty-case batches.
    """
    footprints = list(footprints)
    if not footprints:
        return []
    if any(fp.true_label is None for fp in footprints):
        raise ConfigurationError(
            "footprint specifics require the true label of every faulty case"
        )
    stack = np.stack([np.asarray(fp.trajectory, dtype=np.float64) for fp in footprints])
    return compute_specifics_stack(
        stack,
        final_confidences=np.asarray(
            [float(fp.final_probs[int(fp.predicted)]) for fp in footprints]
        ),
        predicted=np.asarray([int(fp.predicted) for fp in footprints]),
        true_labels=np.asarray([int(fp.true_label) for fp in footprints]),
        library=library,
    )
