"""DeepMorph core: the paper's primary contribution.

Pipeline (paper Figure 1):

1. :class:`SoftmaxInstrumentedModel` — attach and train auxiliary softmax
   probes on every hidden layer of the frozen target model.
2. :class:`PatternLibrary` — learn each class's execution pattern from the
   training data.
3. :class:`FootprintExtractor` / :func:`compute_specifics` — extract data-flow
   footprints of the faulty cases and derive their footprint specifics.
4. :class:`DefectCaseClassifier` — score each case for ITD / UTD / SD and
   aggregate the ratios into a :class:`DefectReport`.

:class:`DeepMorph` wraps the whole pipeline behind ``fit`` + ``diagnose``.
"""

from .classifier import (
    CaseVerdict,
    DefectCaseClassifier,
    DefectClassifierConfig,
    DefectReport,
    DiagnosisContext,
    FEATURE_NAMES,
    build_feature_matrix,
    build_feature_vector,
    error_concentration,
)
from .diagnosis import DeepMorph, find_faulty_cases
from .footprint import Footprint, FootprintExtractor
from .instrument import (
    SoftmaxInstrumentedModel,
    SoftmaxProbe,
    pool_activation,
    pool_activation_reference,
)
from .patterns import ClassExecutionPattern, PatternLibrary, PatternMatches
from .specifics import (
    FootprintSpecifics,
    compute_specifics,
    compute_specifics_batch,
    compute_specifics_stack,
)

__all__ = [
    "DeepMorph",
    "find_faulty_cases",
    "SoftmaxProbe",
    "SoftmaxInstrumentedModel",
    "pool_activation",
    "pool_activation_reference",
    "Footprint",
    "FootprintExtractor",
    "ClassExecutionPattern",
    "PatternLibrary",
    "PatternMatches",
    "FootprintSpecifics",
    "compute_specifics",
    "compute_specifics_batch",
    "compute_specifics_stack",
    "DefectClassifierConfig",
    "DefectCaseClassifier",
    "CaseVerdict",
    "DefectReport",
    "DiagnosisContext",
    "FEATURE_NAMES",
    "build_feature_vector",
    "build_feature_matrix",
    "error_concentration",
]
