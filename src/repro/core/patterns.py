"""Class execution patterns.

The paper's second step: "the softmax-instrumented model is used to learn the
execution pattern of the training cases for each target class".  An execution
pattern summarizes how training examples of one class typically flow through
the network — the mean probe trajectory, the per-layer confidence the class
accumulates, and how dispersed individual trajectories are around that mean.
Faulty-case footprints are later judged against these patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.divergence import normalized_entropy
from ..analysis.trajectory import (
    _layer_weights,
    batch_trajectory_divergence,
    check_trajectory_stack,
    cross_trajectory_divergences,
    cross_trajectory_layer_divergences,
    pairwise_trajectory_divergences,
    trajectory_divergence,
    trajectory_divergence_to_stack,
    trajectory_similarity,
)
from ..data.dataset import Dataset
from ..exceptions import NotFittedError, ShapeError
from .footprint import Footprint, FootprintExtractor
from .instrument import SoftmaxInstrumentedModel

__all__ = ["ClassExecutionPattern", "PatternLibrary", "PatternMatches"]


@dataclass(frozen=True)
class ClassExecutionPattern:
    """Summary of how one class's training examples execute through the model.

    Attributes
    ----------
    class_id:
        The class this pattern describes.
    mean_trajectory:
        ``(num_layers, num_classes)`` mean probe distribution per layer.
    mean_confidence:
        Per-layer mean probability assigned to ``class_id``.
    dispersion:
        Mean JS-based trajectory divergence of member footprints from the mean
        trajectory — how tight the class's execution pattern is.
    mean_final_confidence:
        Mean final-softmax probability of ``class_id`` over members.
    mean_entropy:
        Mean (over members and layers) normalized probe entropy.
    support:
        Number of training footprints the pattern was estimated from.
    member_trajectories:
        The member footprints' trajectories, shape ``(support, L, C)``.  Kept
        so faulty cases can be compared against *individual* training
        executions (nearest-member analysis), not just the class mean.
    member_nn_scale:
        Median nearest-neighbour trajectory divergence *among* the members —
        the natural scale for judging whether an outside footprint is "as
        close as members are to each other".
    """

    class_id: int
    mean_trajectory: np.ndarray
    mean_confidence: np.ndarray
    dispersion: float
    mean_final_confidence: float
    mean_entropy: float
    support: int
    member_trajectories: Optional[np.ndarray] = None
    member_nn_scale: float = 0.0

    @property
    def num_layers(self) -> int:
        return int(self.mean_trajectory.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.mean_trajectory.shape[1])

    def similarity_to(self, footprint: Footprint, late_layer_emphasis: float = 0.5) -> float:
        """JS-based similarity between a footprint and this pattern, in ``[0, 1]``."""
        return trajectory_similarity(
            footprint.trajectory, self.mean_trajectory, late_layer_emphasis=late_layer_emphasis
        )

    def divergence_from(self, footprint: Footprint, late_layer_emphasis: float = 0.5) -> float:
        """JS-based divergence between a footprint and this pattern (nats)."""
        return trajectory_divergence(
            footprint.trajectory, self.mean_trajectory, late_layer_emphasis=late_layer_emphasis
        )

    def atypicality_of(self, footprint: Footprint, eps: float = 1e-6) -> float:
        """How unusual a footprint is relative to the class's own spread, in ``[0, 1]``.

        0.5 means "about as far from the mean as a typical member"; values
        near 1 mean the footprint lies far outside the training pattern.
        """
        divergence = self.divergence_from(footprint)
        return float(divergence / (divergence + self.dispersion + eps))

    def nearest_member_divergence(
        self, footprint: Footprint, k: int = 3, late_layer_emphasis: float = 1.0
    ) -> float:
        """Mean trajectory divergence to the ``k`` closest member footprints.

        Small values mean the faulty case executes almost exactly like some
        *specific* training examples of this class — the signature of
        mislabeled training data teaching the network the wrong mapping.
        Falls back to the mean-trajectory divergence when members were not
        stored.  Later layers are emphasized because early-layer probe beliefs
        are dominated by per-sample pixel noise.
        """
        if self.member_trajectories is None or self.member_trajectories.shape[0] == 0:
            return self.divergence_from(footprint, late_layer_emphasis=late_layer_emphasis)
        divergences = trajectory_divergence_to_stack(
            footprint.trajectory, self.member_trajectories,
            late_layer_emphasis=late_layer_emphasis,
        )
        k = max(1, min(int(k), divergences.shape[0]))
        return float(np.sort(divergences)[:k].mean())

    def nn_typicality_of(self, footprint: Footprint, k: int = 3, scale_floor: float = 0.01) -> float:
        """Nearest-member typicality in ``[0, 1]``.

        Compares the footprint's distance to its nearest members against the
        members' own nearest-neighbour scale: 0.5 means "as close as members
        are to each other", values near 1 mean the footprint practically
        coincides with specific training members, values near 0 mean even the
        closest members are far away.
        """
        nearest = self.nearest_member_divergence(footprint, k=k)
        scale = max(float(self.member_nn_scale), scale_floor)
        return float(scale / (scale + nearest))


@dataclass(frozen=True)
class PatternMatches:
    """Batched comparison of ``N`` trajectories against every class pattern.

    Produced by :meth:`PatternLibrary.batch_pattern_matches` in one
    broadcasted kernel; the columns are the library's classes in ascending
    ``class_id`` order (the same order the per-case queries iterate in, so
    argmax tie-breaking matches :meth:`PatternLibrary.best_match`).

    Attributes
    ----------
    class_ids:
        ``(K,)`` class ids backing the columns.
    similarities:
        ``(N, K)`` layer-weighted JS similarities to each class mean (the
        batched form of :meth:`PatternLibrary.similarity`).
    divergences:
        ``(N, K)`` layer-weighted JS divergences to each class mean at the
        atypicality emphasis (the batched form of
        :meth:`ClassExecutionPattern.divergence_from`).
    dispersions:
        ``(K,)`` per-class dispersions (for atypicality denominators).
    num_classes:
        The model's class count — sizes :meth:`column_lookup`.
    """

    class_ids: np.ndarray
    similarities: np.ndarray
    divergences: np.ndarray
    dispersions: np.ndarray
    num_classes: int

    def column_lookup(self) -> np.ndarray:
        """``(num_classes,)`` map from class id to column index (``-1`` if absent)."""
        lookup = np.full(self.num_classes, -1, dtype=np.int64)
        lookup[self.class_ids] = np.arange(self.class_ids.shape[0], dtype=np.int64)
        return lookup


@dataclass(frozen=True)
class _PatternIndex:
    """Stacked per-class arrays backing the batched queries (built lazily)."""

    class_ids: np.ndarray  # (K,) ascending
    mean_stack: np.ndarray  # (K, L, C)
    dispersions: np.ndarray  # (K,)


class _WelfordMoments:
    """Chunk-merging Welford accumulator for one member population.

    Tracks the running mean trajectory, mean final-softmax confidence in the
    class, and mean normalized probe entropy over an incrementally observed
    member set.  Each shard contributes one chunk; chunk-internal means use
    numpy's pairwise summation and the cross-chunk merge is the standard
    parallel mean update ``mean += delta * (m / n)``, which stays within a few
    ULPs of a single ``np.mean`` over the concatenated members — comfortably
    inside the 1e-12 shard-equivalence contract of
    :meth:`PatternLibrary.partial_fit`.
    """

    __slots__ = ("count", "mean_trajectory", "mean_final", "mean_entropy")

    def __init__(self) -> None:
        self.count = 0
        self.mean_trajectory: Optional[np.ndarray] = None
        self.mean_final = 0.0
        self.mean_entropy = 0.0

    def seed(
        self, count: int, mean_trajectory: np.ndarray, mean_final: float, mean_entropy: float
    ) -> None:
        """Bootstrap the moments from a previously fitted pattern's statistics."""
        self.count = int(count)
        self.mean_trajectory = np.asarray(mean_trajectory, dtype=np.float64).copy()
        self.mean_final = float(mean_final)
        self.mean_entropy = float(mean_entropy)

    def update(
        self, trajectories: np.ndarray, final_confidence: np.ndarray, entropies: np.ndarray
    ) -> None:
        """Merge one ``(m, L, C)`` chunk of members into the running moments."""
        m = int(trajectories.shape[0])
        if m == 0:
            return
        chunk_traj = trajectories.mean(axis=0, dtype=np.float64)
        chunk_final = float(final_confidence.mean(dtype=np.float64))
        chunk_entropy = float(entropies.mean(dtype=np.float64))
        if self.count == 0:
            self.count = m
            self.mean_trajectory = chunk_traj
            self.mean_final = chunk_final
            self.mean_entropy = chunk_entropy
            return
        total = self.count + m
        weight = m / total
        self.mean_trajectory = self.mean_trajectory + (chunk_traj - self.mean_trajectory) * weight
        self.mean_final += (chunk_final - self.mean_final) * weight
        self.mean_entropy += (chunk_entropy - self.mean_entropy) * weight
        self.count = total


@dataclass
class _ClassAccumulator:
    """Per-class incremental state behind :meth:`PatternLibrary.partial_fit`.

    Member trajectories are retained per shard (``fit`` keeps the selected
    member stack on every pattern anyway — nearest-member analysis needs it),
    alongside the per-member correctness mask so the correct-only selection
    can flip retroactively: a class whose first correct member only arrives
    in a later shard must drop its earlier incorrect members from the
    pattern, exactly as a full refit would.
    """

    traj_chunks: List[np.ndarray] = field(default_factory=list)
    final_conf_chunks: List[np.ndarray] = field(default_factory=list)
    correct_chunks: List[np.ndarray] = field(default_factory=list)
    all_moments: _WelfordMoments = field(default_factory=_WelfordMoments)
    correct_moments: _WelfordMoments = field(default_factory=_WelfordMoments)

    def add_chunk(
        self,
        trajectories: np.ndarray,
        final_confidence: np.ndarray,
        correct: np.ndarray,
        entropies: np.ndarray,
    ) -> None:
        self.traj_chunks.append(trajectories)
        self.final_conf_chunks.append(final_confidence)
        self.correct_chunks.append(correct)
        self.all_moments.update(trajectories, final_confidence, entropies)
        if correct.any():
            self.correct_moments.update(
                trajectories[correct], final_confidence[correct], entropies[correct]
            )

    def member_stack(self, correct_only: bool) -> np.ndarray:
        """The selected members, concatenated in arrival order.

        Arrival order within a class equals the original dataset order of a
        single concatenated ``fit`` (stable argsort grouping preserves it),
        so dispersion and nearest-neighbour statistics recomputed from this
        stack are bitwise what the full fit computes.
        """
        if correct_only:
            chunks = [
                chunk[mask]
                for chunk, mask in zip(self.traj_chunks, self.correct_chunks)
                if mask.any()
            ]
        else:
            chunks = self.traj_chunks
        if not chunks:
            return np.empty((0, 0, 0), dtype=np.float64)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks, axis=0)


@dataclass
class _IncrementalState:
    """Whole-library accumulator threading shards through ``partial_fit``."""

    classes: Dict[int, _ClassAccumulator] = field(default_factory=dict)
    # Confusion counts for the training-inconsistency statistic: per labeled
    # class, how many of its members the model mapped to each *other* class.
    confusion: Dict[int, Dict[int, int]] = field(default_factory=dict)
    label_counts: Dict[int, int] = field(default_factory=dict)
    # Inconsistency never drops below the value inherited from a previous
    # full fit (whose confusion counts were not retained by the artifact).
    inconsistency_floor: float = 0.0


class PatternLibrary:
    """Per-class execution patterns learned from the training data.

    Patterns are estimated from training examples that the model itself
    classifies correctly (the paper learns "the execution pattern of the
    training cases for each target class"; correctly-handled cases are the
    ones that characterize the class's intended execution).  Classes with no
    correctly-classified training examples fall back to using all of their
    examples; classes with no examples at all get no pattern.
    """

    def __init__(
        self,
        instrumented: SoftmaxInstrumentedModel,
        correct_only: bool = True,
        late_layer_emphasis: float = 0.5,
        nn_layer_emphasis: float = 1.0,
        batch_size: int = 128,
    ):
        self.instrumented = instrumented
        self.correct_only = bool(correct_only)
        self.late_layer_emphasis = float(late_layer_emphasis)
        self.nn_layer_emphasis = float(nn_layer_emphasis)
        self.batch_size = int(batch_size)
        self.patterns: Dict[int, ClassExecutionPattern] = {}
        self.global_mean_entropy: Optional[float] = None
        self.global_mean_dispersion: Optional[float] = None
        self._fitted = False
        self._batch_cache: Optional[tuple] = None
        self._increment: Optional[_IncrementalState] = None

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def num_classes(self) -> int:
        return self.instrumented.num_classes

    # -- fitting ----------------------------------------------------------------

    def fit(self, train_data: Dataset) -> "PatternLibrary":
        """Learn one execution pattern per class from the training data."""
        if len(train_data) == 0:
            raise ShapeError("cannot fit a pattern library on an empty dataset")
        inputs, labels = train_data.arrays()
        extractor = FootprintExtractor(self.instrumented, batch_size=self.batch_size)
        trajectories, final_probs = extractor.extract_arrays(inputs)
        predictions = final_probs.argmax(axis=1)
        self._training_inconsistency = self._compute_training_inconsistency(labels, predictions)
        # Refitting replaces the library wholesale — classes absent from the
        # new data must not survive from a previous fit, and neither must any
        # incremental partial_fit state.
        self.patterns = {}
        self._increment = None

        # One label -> member-indices grouping, computed once (stable argsort +
        # unique boundaries) and shared by the member and correct-only
        # selections — instead of re-scanning the label array per class.
        labels = np.asarray(labels)
        order = np.argsort(labels, kind="stable")
        class_values, group_starts = np.unique(labels[order], return_index=True)
        group_ends = np.append(group_starts[1:], order.size)
        correct = predictions == labels

        entropies: List[float] = []
        dispersions: List[float] = []
        for class_value, start, end in zip(class_values, group_starts, group_ends):
            class_id = int(class_value)
            if not 0 <= class_id < self.num_classes:
                continue
            member_idx = order[start:end]
            if self.correct_only:
                correct_idx = member_idx[correct[member_idx]]
                if correct_idx.size:
                    member_idx = correct_idx
            member_traj = trajectories[member_idx]
            member_final = final_probs[member_idx]

            mean_trajectory = member_traj.mean(axis=0)
            mean_confidence = member_traj[:, :, class_id].mean(axis=0)
            divergences = trajectory_divergence_to_stack(
                mean_trajectory, member_traj, late_layer_emphasis=self.late_layer_emphasis
            )
            dispersion = float(divergences.mean()) if divergences.size else 0.0
            mean_entropy = float(normalized_entropy(member_traj, axis=2).mean())

            if member_traj.shape[0] > 1:
                pairwise = pairwise_trajectory_divergences(
                    member_traj, late_layer_emphasis=self.nn_layer_emphasis
                )
                np.fill_diagonal(pairwise, np.inf)
                member_nn_scale = float(np.median(pairwise.min(axis=1)))
            else:
                member_nn_scale = dispersion

            self.patterns[class_id] = ClassExecutionPattern(
                class_id=class_id,
                mean_trajectory=mean_trajectory,
                mean_confidence=mean_confidence,
                dispersion=dispersion,
                mean_final_confidence=float(member_final[:, class_id].mean()),
                mean_entropy=mean_entropy,
                support=int(member_idx.size),
                # Fancy indexing already copied the member rows out of the
                # extraction arrays, so the stack can be stored as-is.
                member_trajectories=member_traj,
                member_nn_scale=member_nn_scale,
            )
            entropies.append(mean_entropy)
            dispersions.append(dispersion)

        if not self.patterns:
            raise ShapeError("pattern library fitting produced no patterns (empty classes only)")
        self.global_mean_entropy = float(np.mean(entropies))
        self.global_mean_dispersion = float(np.mean(dispersions))
        self._batch_cache = None
        self._fitted = True
        return self

    # -- incremental fitting -----------------------------------------------------

    def partial_fit(self, shard: Dataset) -> "PatternLibrary":
        """Fold one shard of labeled data into the library incrementally.

        Repeated calls over shards of a dataset produce the same library as
        one :meth:`fit` over the concatenated data, to within 1e-12 on every
        statistic (means are merged Welford-style; dispersion and
        nearest-neighbour scales are recomputed from the retained member
        stacks, so those are bitwise identical).  The only caveat is the
        forward pass itself: under a float32 inference dtype, extraction is
        deterministic per *batch composition*, so sharding the extraction can
        move probe distributions at float32 resolution (~1e-8).  Callers that
        need the strict 1e-12 contract across shard splits either run a
        float64 inference dtype or extract once and feed
        :meth:`partial_fit_arrays`.

        An empty shard is a no-op.  Calling ``partial_fit`` on a library that
        was fitted by :meth:`fit` (or loaded from an artifact) bootstraps the
        accumulators from the retained member stacks; members that the
        correct-only selection had discarded are gone, so strict shard
        equivalence holds for libraries built entirely through
        ``partial_fit``.
        """
        if len(shard) == 0:
            return self
        inputs, labels = shard.arrays()
        extractor = FootprintExtractor(self.instrumented, batch_size=self.batch_size)
        trajectories, final_probs = extractor.extract_arrays(inputs)
        return self.partial_fit_arrays(trajectories, final_probs, labels)

    def partial_fit_arrays(
        self, trajectories: np.ndarray, final_probs: np.ndarray, labels: np.ndarray
    ) -> "PatternLibrary":
        """:meth:`partial_fit` for already-extracted ``(N, L, C)`` arrays.

        The serving layer extracts footprints while answering requests;
        feeding those arrays here avoids a second forward pass per shard.
        """
        trajectories = check_trajectory_stack(trajectories)
        final_probs = np.asarray(final_probs, dtype=np.float64)
        labels = np.asarray(labels).reshape(-1)
        if trajectories.shape[0] != final_probs.shape[0] or labels.size != trajectories.shape[0]:
            raise ShapeError(
                f"shard arrays disagree: {trajectories.shape[0]} trajectories, "
                f"{final_probs.shape[0]} final_probs, {labels.size} labels"
            )
        if labels.size == 0:
            return self
        state = self._incremental_state()
        predictions = final_probs.argmax(axis=1)
        correct_mask = predictions == labels
        entropies = normalized_entropy(trajectories, axis=2)

        # Confusion bookkeeping for training_inconsistency (all labels count,
        # even out-of-range ones — matching fit's np.unique over raw labels).
        for label_value, predicted_value in zip(labels.tolist(), predictions.tolist()):
            state.label_counts[label_value] = state.label_counts.get(label_value, 0) + 1
            if predicted_value != label_value:
                row = state.confusion.setdefault(label_value, {})
                row[predicted_value] = row.get(predicted_value, 0) + 1

        order = np.argsort(labels, kind="stable")
        class_values, group_starts = np.unique(labels[order], return_index=True)
        group_ends = np.append(group_starts[1:], order.size)
        for class_value, start, end in zip(class_values, group_starts, group_ends):
            class_id = int(class_value)
            if not 0 <= class_id < self.num_classes:
                continue
            member_idx = order[start:end]
            accumulator = state.classes.setdefault(class_id, _ClassAccumulator())
            accumulator.add_chunk(
                trajectories[member_idx],
                final_probs[member_idx, class_id],
                correct_mask[member_idx],
                entropies[member_idx],
            )
        self._finalize_incremental(state)
        return self

    def _incremental_state(self) -> _IncrementalState:
        """The live accumulator, bootstrapped from existing patterns if needed."""
        if self._increment is not None:
            return self._increment
        state = _IncrementalState()
        if self._fitted:
            # Continue from a fit()-built or deserialized library: the
            # retained member stacks become the first "shard".  fit stored
            # only the selected members (correct ones, when any existed), so
            # they are treated as correct here; the confusion counts behind
            # training_inconsistency were not retained, so the fitted value
            # becomes a floor the incremental statistic cannot drop below.
            state.inconsistency_floor = float(getattr(self, "_training_inconsistency", 0.0))
            for class_id, pattern in self.patterns.items():
                members = pattern.member_trajectories
                if members is None or members.shape[0] == 0:
                    members = pattern.mean_trajectory[None, :, :]
                members = np.asarray(members, dtype=np.float64)
                accumulator = _ClassAccumulator()
                accumulator.traj_chunks.append(members)
                accumulator.final_conf_chunks.append(
                    np.full(members.shape[0], pattern.mean_final_confidence, dtype=np.float64)
                )
                accumulator.correct_chunks.append(np.ones(members.shape[0], dtype=bool))
                for moments in (accumulator.all_moments, accumulator.correct_moments):
                    moments.seed(
                        pattern.support,
                        pattern.mean_trajectory,
                        pattern.mean_final_confidence,
                        pattern.mean_entropy,
                    )
                state.classes[class_id] = accumulator
                state.label_counts[class_id] = (
                    state.label_counts.get(class_id, 0) + pattern.support
                )
        self._increment = state
        return state

    def _finalize_incremental(self, state: _IncrementalState) -> None:
        """Rebuild every pattern from the accumulated state (fit-equivalent math)."""
        patterns: Dict[int, ClassExecutionPattern] = {}
        entropies: List[float] = []
        dispersions: List[float] = []
        for class_id in sorted(state.classes):
            accumulator = state.classes[class_id]
            use_correct = self.correct_only and accumulator.correct_moments.count > 0
            moments = accumulator.correct_moments if use_correct else accumulator.all_moments
            if moments.count == 0 or moments.mean_trajectory is None:
                continue
            member_traj = accumulator.member_stack(use_correct)
            mean_trajectory = moments.mean_trajectory.copy()
            divergences = trajectory_divergence_to_stack(
                mean_trajectory, member_traj, late_layer_emphasis=self.late_layer_emphasis
            )
            dispersion = float(divergences.mean()) if divergences.size else 0.0
            if member_traj.shape[0] > 1:
                pairwise = pairwise_trajectory_divergences(
                    member_traj, late_layer_emphasis=self.nn_layer_emphasis
                )
                np.fill_diagonal(pairwise, np.inf)
                member_nn_scale = float(np.median(pairwise.min(axis=1)))
            else:
                member_nn_scale = dispersion
            patterns[class_id] = ClassExecutionPattern(
                class_id=class_id,
                mean_trajectory=mean_trajectory,
                mean_confidence=mean_trajectory[:, class_id].copy(),
                dispersion=dispersion,
                mean_final_confidence=float(moments.mean_final),
                mean_entropy=float(moments.mean_entropy),
                support=int(moments.count),
                member_trajectories=member_traj,
                member_nn_scale=member_nn_scale,
            )
            entropies.append(float(moments.mean_entropy))
            dispersions.append(dispersion)
        if not patterns:
            # Nothing in range yet (e.g. only out-of-range labels so far):
            # keep the accumulated state but leave the library unfitted.
            return
        self.patterns = patterns
        self.global_mean_entropy = float(np.mean(entropies))
        self.global_mean_dispersion = float(np.mean(dispersions))
        self._training_inconsistency = max(
            state.inconsistency_floor, self._incremental_inconsistency(state)
        )
        self._batch_cache = None
        self._fitted = True

    @staticmethod
    def _incremental_inconsistency(state: _IncrementalState) -> float:
        """``_compute_training_inconsistency`` over the accumulated confusion counts."""
        total = sum(state.label_counts.values())
        if total == 0 or not state.label_counts:
            return 0.0
        expected_class_size = total / len(state.label_counts)
        worst = 0.0
        for row in state.confusion.values():
            if row:
                worst = max(worst, max(row.values()) / expected_class_size)
        return float(min(worst, 1.0))

    # -- queries ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("pattern library is not fitted; call fit() first")

    def feature_quality(self) -> float:
        """Model-level feature quality (delegates to the instrumented model)."""
        return self.instrumented.feature_quality()

    @staticmethod
    def _compute_training_inconsistency(labels: np.ndarray, predictions: np.ndarray) -> float:
        """Largest systematic label/prediction disagreement inside the training set.

        For every labeled class ``c``, the number of its training examples the
        trained model itself maps to one *single* other class ``d`` is counted
        and normalized by the expected per-class size of the training set; the
        maximum over ``(c, d)`` pairs is returned (capped at 1).  A healthy
        training set yields a small value (the model fits its own training
        data); a training set with systematically mislabeled examples yields a
        large value, because either the model refuses to learn the wrong
        labels or flips the genuine ones.
        """
        labels = np.asarray(labels)
        predictions = np.asarray(predictions)
        classes = np.unique(labels)
        if labels.size == 0 or classes.size == 0:
            return 0.0
        # Normalize by the *expected* class size so a class that is merely
        # under-represented (the ITD defect) cannot masquerade as label noise.
        expected_class_size = labels.size / classes.size
        worst = 0.0
        for c in classes:
            mask = labels == c
            wrong = predictions[mask]
            wrong = wrong[wrong != c]
            if wrong.size == 0:
                continue
            counts = np.bincount(wrong)
            worst = max(worst, float(counts.max()) / expected_class_size)
        return float(min(worst, 1.0))

    def training_inconsistency(self) -> float:
        """Largest per-class systematic disagreement between training labels and the
        model's own predictions on the training set (see ``_compute_training_inconsistency``)."""
        self._require_fitted()
        return float(getattr(self, "_training_inconsistency", 0.0))

    def has_pattern(self, class_id: int) -> bool:
        return class_id in self.patterns

    def pattern(self, class_id: int) -> ClassExecutionPattern:
        """The execution pattern of ``class_id`` (raises if the class had no data)."""
        self._require_fitted()
        if class_id not in self.patterns:
            raise KeyError(f"no execution pattern for class {class_id} (no training examples)")
        return self.patterns[class_id]

    def classes(self) -> List[int]:
        """Classes that have a learned pattern."""
        self._require_fitted()
        return sorted(self.patterns)

    def similarity(self, footprint: Footprint, class_id: int) -> float:
        """Similarity of ``footprint`` to the pattern of ``class_id`` (0 if unknown class)."""
        self._require_fitted()
        if class_id not in self.patterns:
            return 0.0
        return self.patterns[class_id].similarity_to(
            footprint, late_layer_emphasis=self.late_layer_emphasis
        )

    def nn_typicality(self, footprint: Footprint, class_id: int, k: int = 3) -> float:
        """Nearest-member typicality of ``footprint`` w.r.t. ``class_id`` (0 if unknown)."""
        self._require_fitted()
        if class_id not in self.patterns:
            return 0.0
        return self.patterns[class_id].nn_typicality_of(footprint, k=k)

    # -- batched queries ----------------------------------------------------------

    def _batch_index(self) -> _PatternIndex:
        """Stacked per-class arrays, rebuilt lazily when the pattern set changes.

        Lazy (rather than built in ``fit``) because deserialization and tests
        assemble ``patterns`` directly.  The cache is keyed on the *identities*
        of the pattern objects (not just the class ids), so replacing a class's
        pattern in place — recalibration, hand-assembled libraries — rebuilds
        the stacks instead of serving stale means and dispersions.
        """
        self._require_fitted()
        ids = tuple(sorted(self.patterns))
        if self._batch_cache is not None:
            cached_ids, cached_patterns, index = self._batch_cache
            if cached_ids == ids and all(
                self.patterns[class_id] is pattern
                for class_id, pattern in zip(cached_ids, cached_patterns)
            ):
                return index
        index = _PatternIndex(
            class_ids=np.asarray(ids, dtype=np.int64),
            mean_stack=np.stack(
                [np.asarray(self.patterns[i].mean_trajectory, dtype=np.float64) for i in ids]
            ),
            dispersions=np.asarray(
                [self.patterns[i].dispersion for i in ids], dtype=np.float64
            ),
        )
        self._batch_cache = (ids, tuple(self.patterns[i] for i in ids), index)
        return index

    def batch_pattern_matches(self, stack: np.ndarray) -> PatternMatches:
        """Compare a whole ``(N, L, C)`` stack against every class pattern at once.

        One broadcasted JS kernel yields the per-layer divergences of every
        (case, class) pair; the similarity matrix applies the library's layer
        emphasis and the divergence matrix applies the atypicality emphasis
        used by :meth:`ClassExecutionPattern.divergence_from` — the batched
        equivalents of N·K per-case queries.
        """
        index = self._batch_index()
        stack = check_trajectory_stack(stack)
        if stack.shape[1:] != index.mean_stack.shape[1:]:
            raise ShapeError(
                f"trajectories must have shape (N, {index.mean_stack.shape[1]}, "
                f"{index.mean_stack.shape[2]}), got {stack.shape}"
            )
        layer_divs = cross_trajectory_layer_divergences(stack, index.mean_stack)
        layer_sims = 1.0 - layer_divs / np.log(2.0)
        num_layers = stack.shape[1]
        return PatternMatches(
            class_ids=index.class_ids,
            similarities=np.average(
                layer_sims, axis=2, weights=_layer_weights(num_layers, self.late_layer_emphasis)
            ),
            # ClassExecutionPattern.divergence_from (the per-case atypicality
            # path) uses its own default emphasis of 0.5, independent of the
            # library's similarity emphasis — mirrored here for parity.
            divergences=np.average(
                layer_divs, axis=2, weights=_layer_weights(num_layers, 0.5)
            ),
            dispersions=index.dispersions,
            num_classes=self.num_classes,
        )

    def batch_nn_typicality(
        self, stack: np.ndarray, class_ids: np.ndarray, k: int = 3, scale_floor: float = 0.01
    ) -> np.ndarray:
        """Nearest-member typicality of every stack member w.r.t. its own target class.

        The batched form of :meth:`nn_typicality`: cases are grouped by target
        class and each group is compared against that class's member stack in
        one cross-divergence kernel (classes without a pattern score 0, empty
        member sets fall back to the mean-trajectory divergence — exactly the
        per-case semantics).
        """
        self._require_fitted()
        stack = check_trajectory_stack(stack)
        class_ids = np.asarray(class_ids, dtype=np.int64)
        if class_ids.shape != (stack.shape[0],):
            raise ShapeError(
                f"class_ids must be 1-D with one entry per case, got shape "
                f"{class_ids.shape} for {stack.shape[0]} cases"
            )
        out = np.zeros(stack.shape[0], dtype=np.float64)
        for class_value in np.unique(class_ids):
            class_id = int(class_value)
            pattern = self.patterns.get(class_id)
            if pattern is None:
                continue  # unknown class: typicality stays 0
            rows = np.nonzero(class_ids == class_value)[0]
            members = pattern.member_trajectories
            # nearest_member_divergence defaults to late_layer_emphasis=1.0
            # (early-layer beliefs are pixel-noise dominated).
            if members is None or members.shape[0] == 0:
                nearest = batch_trajectory_divergence(
                    stack[rows], pattern.mean_trajectory, late_layer_emphasis=1.0
                )
            else:
                divergences = cross_trajectory_divergences(
                    stack[rows], members, late_layer_emphasis=1.0
                )
                kk = max(1, min(int(k), divergences.shape[1]))
                nearest = np.sort(divergences, axis=1)[:, :kk].mean(axis=1)
            scale = max(float(pattern.member_nn_scale), scale_floor)
            out[rows] = scale / (scale + nearest)
        return out

    def pattern_overlap(self) -> float:
        """Mean pairwise similarity between different classes' mean trajectories.

        Well-separated classes (a sound backbone) score low; a backbone whose
        hidden layers cannot tell the classes apart scores high.  Computed
        loop-free as one cross kernel over the stacked class means.
        """
        self._require_fitted()
        index = self._batch_index()
        k = index.class_ids.shape[0]
        if k < 2:
            return 0.0
        divergences = cross_trajectory_divergences(
            index.mean_stack, index.mean_stack, late_layer_emphasis=self.late_layer_emphasis
        )
        similarities = 1.0 - divergences / np.log(2.0)
        upper = np.triu_indices(k, 1)
        return float(np.mean(similarities[upper]))

    def best_match(self, footprint: Footprint) -> tuple[int, float]:
        """The class whose pattern the footprint matches best, and that similarity."""
        self._require_fitted()
        best_class, best_sim = -1, -np.inf
        for class_id, pattern in self.patterns.items():
            sim = pattern.similarity_to(footprint, late_layer_emphasis=self.late_layer_emphasis)
            if sim > best_sim:
                best_class, best_sim = class_id, sim
        return best_class, float(best_sim)

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return f"PatternLibrary(classes={len(self.patterns)}, {status})"
